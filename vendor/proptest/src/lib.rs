//! Offline stand-in for `proptest`: deterministic randomized testing
//! with the same call-site API for the subset this workspace uses —
//! the [`proptest!`] macro, range/tuple/`vec`/[`strategy::Just`]/
//! [`arbitrary::any`] strategies, `prop_map` / `prop_flat_map`
//! combinators, and `prop_assert*`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed sequence, and there is **no shrinking** — a
//! failing case reports its case index so it can be re-run, not a
//! minimized input.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// Strategy modules namespaced as `prop::...` (e.g. `prop::collection`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::{vec, SizeRange};
    }
    pub use crate::strategy::{Just, Strategy};
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` function running `body` over `cases`
/// deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @config ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @config ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                // Bundle all argument strategies into one tuple strategy
                // (trailing comma forces a tuple even for a single arg).
                let __strategy = ($($strat,)+);
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::deterministic_rng(__case as u64);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest: `{}` failed at case {}/{} (deterministic seed; \
                             no shrinking in the offline stand-in)",
                            stringify!($name), __case, __config.cases,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` with proptest's call-site spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest's call-site spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest's call-site spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(x in 1usize..=8, (a, b) in (0u8..4, 10i64..20)) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn vec_and_flat_map(v in prop::collection::vec(0u32..100, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn mapped(x in (1u64..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(x % 3, 0);
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn flat_mapped(v in (1usize..4).prop_flat_map(|n| {
            prop::collection::vec(Just(n), n)
        })) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == v.len()));
        }
    }

    #[test]
    fn any_is_deterministic_per_case() {
        let mut a = crate::test_runner::deterministic_rng(3);
        let mut b = crate::test_runner::deterministic_rng(3);
        let s = any::<u64>();
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
