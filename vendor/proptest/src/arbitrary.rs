//! `any::<T>()` — type-driven default strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only (the real crate generates NaN/inf too, but
        // every property in this workspace expects finite inputs).
        (rng.gen::<f64>() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.gen::<f32>() - 0.5) * 2.0e6
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
