//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of an associated type, composable with
/// `prop_map` and `prop_flat_map`. Unlike the real crate there is no
/// `ValueTree`/shrinking layer — `generate` produces a value directly.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retains only values satisfying `pred` (rejection sampling with a
    /// bounded number of retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}
