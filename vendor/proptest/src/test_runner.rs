//! Test configuration and the deterministic case generator.

use rand::{rngs::StdRng, SeedableRng};

/// Mirrors `proptest::test_runner::Config` (subset).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Config {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Per-case random source. Deliberately deterministic: case `i` of a
/// property sees the same inputs on every run.
pub type TestRng = StdRng;

/// Generator for the given case index (used by the
/// [`proptest!`](crate::proptest) macro expansion).
pub fn deterministic_rng(case: u64) -> TestRng {
    // Golden-ratio stride decorrelates consecutive case seeds.
    StdRng::seed_from_u64(0x5bd1_e995_u64.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}
