//! Offline stand-in for `parking_lot`: thin non-poisoning wrappers over
//! `std::sync`. `lock()` recovers from poisoning instead of returning a
//! `Result`, matching parking_lot's API shape (no `unwrap()` at call
//! sites). Fairness/eventual-fairness semantics are not reproduced.

#![forbid(unsafe_code)]

use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex (parking_lot API over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(inner) => inner,
            Err(_) => panic!("poisoned mutex with exclusive access"),
        }
    }
}

/// Non-poisoning reader–writer lock (parking_lot API over
/// `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
