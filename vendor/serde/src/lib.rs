//! Offline stand-in for `serde`: marker traits with blanket impls plus
//! no-op derives. The workspace only ever *annotates* types with
//! `#[derive(Serialize, Deserialize)]` (no serializer is ever invoked —
//! there is no `serde_json` offline), so markers are sufficient and keep
//! every annotation source-compatible with the real crate.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
