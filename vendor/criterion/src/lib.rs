//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset used by `crates/bench`: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] and
//! [`Bencher::iter_batched`]. Measurement is a simple wall-clock loop —
//! warm-up, then timed batches — reporting mean and best-observed
//! iteration time. No statistics, plots, or saved baselines.
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! binaries) every benchmark body runs exactly once, as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark, overridable via the
/// `CRITERION_MEASURE_MS` environment variable.
fn measurement_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

fn smoke_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag argument is a name filter (as in real criterion).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Self {
            filter,
            smoke: smoke_test_mode(),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<S: AsRef<str>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.as_ref(), f);
        self
    }

    /// Opens a named group; benchmarks inside are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            smoke: self.smoke,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) if !self.smoke => println!(
                "{id:<40} {:>12}/iter (best {:>12}, {} iters)",
                format_ns(r.mean_ns),
                format_ns(r.best_ns),
                r.iters
            ),
            _ => println!("{id:<40} ok (smoke test)"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `group/name`.
    pub fn bench_function<S: AsRef<str>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&full, f);
        self
    }

    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Closes the group (no-op).
    pub fn finish(self) {}
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

struct Report {
    mean_ns: f64,
    best_ns: f64,
    iters: u64,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    smoke: bool,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Warm-up and per-iteration cost estimate.
        let warmup = Instant::now();
        let mut warm_iters = 0u64;
        while warmup.elapsed() < measurement_budget() / 10 || warm_iters < 3 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = measurement_budget().as_secs_f64();
        let batch = ((budget / 10.0 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        let mut best_ns = f64::INFINITY;
        let started = Instant::now();
        while started.elapsed().as_secs_f64() < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64;
            best_ns = best_ns.min(ns / batch as f64);
            total_ns += ns;
            total_iters += batch;
        }
        self.report = Some(Report {
            mean_ns: total_ns / total_iters as f64,
            best_ns,
            iters: total_iters,
        });
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let budget = measurement_budget().as_secs_f64();
        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        let mut best_ns = f64::INFINITY;
        let started = Instant::now();
        while started.elapsed().as_secs_f64() < budget || total_iters < 3 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let ns = t.elapsed().as_nanos() as f64;
            best_ns = best_ns.min(ns);
            total_ns += ns;
            total_iters += 1;
            if total_iters >= 1_000_000 {
                break;
            }
        }
        self.report = Some(Report {
            mean_ns: total_ns / total_iters as f64,
            best_ns,
            iters: total_iters,
        });
    }

    /// `iter_batched` variant taking inputs by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
