//! Sequence helpers (`rand::seq`): choose and shuffle.

use crate::RngCore;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut rng).is_none());
    }
}
