//! Distributions: `Standard` (full-range / unit-interval uniform) and
//! range-based uniform sampling.

use crate::{Rng, RngCore};

/// Types that can produce samples of `T` given a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution: uniform over the whole type for integers
/// and `bool`, uniform on `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range-based uniform sampling (`rand::distributions::uniform`).
pub mod uniform {
    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty gen_range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty gen_range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty gen_range");
                    let unit: f64 = Standard.sample(rng);
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty gen_range");
                    let unit: f64 = Standard.sample(rng);
                    lo + (unit as $t) * (hi - lo)
                }
            }
        )*};
    }
    range_float!(f32, f64);
}

/// Uniform distribution object over `[low, high)`, mirroring
/// `rand::distributions::Uniform`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Self { low, high }
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit: f64 = Standard.sample(rng);
        self.low + unit * (self.high - self.low)
    }
}

impl Distribution<usize> for Uniform<usize> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let span = (self.high - self.low) as u64;
        assert!(span > 0, "empty Uniform");
        self.low + (rng.next_u64() % span) as usize
    }
}
