//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API this workspace uses:
//! [`rngs::StdRng`] (xoshiro256++), [`SeedableRng`] (including
//! `seed_from_u64` via SplitMix64), and the [`Rng`] extension trait with
//! `gen`, `gen_range`, `gen_bool` and `sample`. Uniform sampling only; no
//! OS entropy (`from_entropy` is deterministic).

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// A source of raw random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction the real crate uses) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }

    /// Offline stand-in: there is no OS entropy source, so this is a
    /// fixed-seed generator. Do not rely on it for uniqueness.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e37_79b9_7f4a_7c15)
    }
}

pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// User-facing extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the `Standard` distribution (uniform over the
    /// type's natural range; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Samples from an explicit distribution object.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience free function mirroring `rand::random` (deterministic in
/// this offline stand-in).
pub fn random<T>() -> T
where
    Standard: Distribution<T>,
{
    let mut rng = <rngs::StdRng as SeedableRng>::from_entropy();
    Standard.sample(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
