//! Offline no-op stand-in for `serde_derive`: the derives expand to
//! nothing, and the marker traits in the companion `serde` shim are
//! blanket-implemented, so `#[derive(Serialize, Deserialize)]` remains
//! source-compatible without any code generation.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
