//! Dynamic scenario (the Fig. 5 experiment): sessions arrive and depart
//! while Alg. 1 keeps re-optimizing the assignment.
//!
//! Starts the prototype workload with 6 of its 10 sessions, lets 4 more
//! arrive at t = 40 s and 3 depart at t = 80 s, and prints the traffic
//! and delay time series so the adaptation is visible.
//!
//! Run with: `cargo run --release --example dynamic_sessions`

use cloud_vc::prelude::*;
use cloud_vc::sim::ArrivalPolicy;
use std::sync::Arc;

fn main() {
    let instance = prototype_instance(&PrototypeConfig::default());
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
    let assignment = nearest_assignment(&problem);

    // Sessions 0–5 active from the start; 6–9 arrive at t = 40 s;
    // sessions 0–2 depart at t = 80 s.
    let mut active = vec![false; problem.instance().num_sessions()];
    active[..6].fill(true);
    let state = SystemState::with_active(problem.clone(), assignment, active);

    let mut dynamics = Vec::new();
    for s in 6..10 {
        dynamics.push(DynamicsEvent {
            time_s: 40.0,
            session: SessionId::new(s),
            arrives: true,
        });
    }
    for s in 0..3 {
        dynamics.push(DynamicsEvent {
            time_s: 80.0,
            session: SessionId::new(s),
            arrives: false,
        });
    }

    let mut config = SimConfig::paper_default(120.0, 99);
    config.arrival_policy = ArrivalPolicy::AgRank(AgRankConfig::paper(2));
    let report = ConferenceSim::new(state, config)
        .with_dynamics(dynamics)
        .run();

    println!("time_s  traffic_mbps  mean_delay_ms");
    for (&(t, traffic), &(_, delay)) in report.traffic.points().iter().zip(report.delay.points()) {
        if (t as u64).is_multiple_of(5) {
            println!("{t:>6.0}  {traffic:>12.2}  {delay:>13.1}");
        }
    }
    println!(
        "\n{} hops, {} user migrations ({:.1} Kb redundant dual-feed traffic)",
        report.hops.len(),
        report.migrations.user_migrations,
        report.migrations.redundant_kb
    );
}
