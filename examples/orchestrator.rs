//! The online control plane end to end: a 60-virtual-second fleet of
//! 100+ concurrent sessions under churn — Poisson arrivals, exponential
//! departures, one agent failure mid-run — admitted against the sharded
//! capacity ledger and continuously re-optimized by the per-session
//! WAIT/HOP workers.
//!
//! Two runs over the *same* trace:
//!
//! * baseline — nearest-agent admission, no re-optimization (the
//!   Airlift/vSkyConf shape);
//! * orchestrated — AgRank bootstrap + background Alg. 1 workers.
//!
//! ```text
//! cargo run --release --example orchestrator
//! ```
//!
//! With `--crash-at <T> [--resume]` the example instead demonstrates
//! the `vc-persist` durability path: it runs the orchestrated fleet
//! with an always-fsync write-ahead journal, kills it dead at virtual
//! time `T` (no shutdown, no checkpoint), recovers via
//! `Fleet::recover`, proves the recovered fleet is *identical* (live
//! set, ledger holdings, counters, objective), and — with `--resume` —
//! finishes the remaining trace on the recovered fleet:
//!
//! ```text
//! cargo run --release --example orchestrator -- --crash-at 30 --resume
//! ```
//!
//! With `--serve <addr>` (e.g. `--serve 127.0.0.1:0`) the orchestrated
//! run additionally exposes the live scrape endpoint — `/metrics`
//! (Prometheus text), `/trace` (Perfetto JSON), `/postmortem` — and
//! self-probes all three routes mid-run, writing the lifecycle trace
//! to `trace_perfetto.json` (archived by CI; load it in
//! <https://ui.perfetto.dev>).

use cloud_vc::prelude::*;
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_model::AgentId;
use vc_obs::{http_get, ObsServer};
use vc_orchestrator::{fleet_metrics_text, sched_metrics_text, FleetReport, ReoptPool};

const HORIZON_S: f64 = 60.0;

fn main() {
    let mut crash_at: Option<f64> = None;
    let mut resume = false;
    let mut serve: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--crash-at" => {
                crash_at = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--crash-at needs a virtual time in seconds"),
                );
            }
            "--resume" => resume = true,
            "--serve" => {
                serve = Some(
                    args.next()
                        .expect("--serve needs a bind address, e.g. 127.0.0.1:9184"),
                );
            }
            other => panic!(
                "unknown argument '{other}' (try --crash-at <T> [--resume] or --serve <addr>)"
            ),
        }
    }
    if let Some(t) = crash_at {
        crash_demo(t, resume);
        return;
    }
    comparison_demo(serve.as_deref());
}

fn comparison_demo(serve: Option<&str>) {
    // ~135 potential sessions over the 7 EC2 agents, with real capacity
    // limits so the ledger has something to arbitrate.
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: 400,
        max_session_size: 4,
        mean_bandwidth_mbps: Some(2_500.0),
        mean_transcode_slots: Some(150.0),
        seed: 42,
        ..LargeScaleConfig::default()
    });
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
    let num_sessions = problem.instance().num_sessions();

    let trace = dynamic_trace(
        num_sessions,
        &DynamicTraceConfig {
            horizon_s: HORIZON_S,
            warm_sessions: 110,
            mean_interarrival_s: Some(2.0),
            mean_holding_s: 400.0,
            failures: vec![(30.0, AgentId::new(2))],
            restores: vec![],
            seed: 7,
        },
    );
    println!(
        "universe: {} agents, {} potential sessions; trace: {} events ({} arrivals, {} departures, {} failures)\n",
        problem.instance().num_agents(),
        num_sessions,
        trace.len(),
        trace.count(|e| matches!(e, FleetEvent::Arrive(_))),
        trace.count(|e| matches!(e, FleetEvent::Depart(_))),
        trace.count(|e| matches!(e, FleetEvent::FailAgent(_))),
    );

    let run = |label: &str, placement: PlacementPolicy, reoptimize: bool| -> FleetReport {
        let mut orchestrator = cloud_vc::orchestrator::Orchestrator::new(
            problem.clone(),
            OrchestratorConfig {
                fleet: FleetConfig {
                    placement,
                    alg1: Alg1Config {
                        mean_countdown_s: 5.0,
                        ..Alg1Config::paper(400.0)
                    },
                    ledger_shards: 4,
                    ..FleetConfig::default()
                },
                sample_period_s: 1.0,
                seed: 2015,
                reoptimize,
            },
        );
        // The scrape endpoint serves the *orchestrated* fleet (the one
        // that records), live for the duration of the run.
        let server = if reoptimize {
            serve.map(|addr| {
                let fleet = Arc::clone(orchestrator.fleet());
                let pool = Arc::clone(orchestrator.pool());
                let plane = Arc::clone(fleet.obs());
                let server = ObsServer::bind(
                    addr,
                    plane,
                    Some(Box::new(move || {
                        let mut text = fleet_metrics_text(&fleet);
                        text.push_str(&sched_metrics_text(&pool));
                        text
                    })),
                )
                .expect("bind scrape endpoint");
                println!(
                    "  serving /metrics /trace /postmortem on http://{}\n",
                    server.local_addr()
                );
                server
            })
        } else {
            None
        };
        let report = orchestrator.run_trace(&trace, HORIZON_S);
        // Self-probe while the fleet is still live: every route must
        // answer, and /metrics must carry both the plane's and the
        // fleet's series.
        if let Some(server) = &server {
            let addr = server.local_addr();
            let (status, metrics) = http_get(addr, "/metrics").expect("GET /metrics");
            assert_eq!(status, 200);
            assert!(metrics.contains("vc_obs_ops_recorded"));
            assert!(metrics.contains("vc_fleet_live_sessions"));
            assert!(metrics.contains("vc_sched_stale_entries"));
            assert!(metrics.contains("vc_sched_depth{shard=\"0\"}"));
            assert!(metrics.contains("vc_region_agents{region=\"default\"}"));
            assert!(metrics.contains("vc_region_cross_commits"));
            let (status, trace_json) = http_get(addr, "/trace").expect("GET /trace");
            assert_eq!(status, 200);
            assert!(trace_json.contains("\"traceEvents\""));
            let (status, _) = http_get(addr, "/postmortem").expect("GET /postmortem");
            assert_eq!(status, 200);
            match std::fs::write("trace_perfetto.json", &trace_json) {
                Ok(()) => println!("  scrape endpoint OK; wrote trace_perfetto.json\n"),
                Err(e) => eprintln!("  could not write trace_perfetto.json: {e}\n"),
            }
        }
        let s = &report.final_snapshot;
        println!("== {label} ==");
        println!("  live sessions            {:>10}", s.live_sessions);
        println!(
            "  admitted / rejected      {:>6} / {:<6}",
            s.admitted, s.rejected
        );
        println!(
            "  admission success rate   {:>10.3}",
            s.admission_success_rate
        );
        println!(
            "  migrations (hops run)    {:>6} ({})",
            s.migrations, report.hops_executed
        );
        println!(
            "  mean objective / session {:>10.2}",
            s.mean_session_objective
        );
        println!("  inter-agent traffic Mbps {:>10.1}", s.traffic_mbps);
        println!("  mean delay ms            {:>10.1}", s.mean_delay_ms);
        println!(
            "  agent utilization        {:>9.1}% mean, {:.1}% max",
            100.0 * s.mean_utilization,
            100.0 * s.max_utilization
        );
        println!(
            "  conservation violations  {:>10}\n",
            s.conservation_violations
        );
        if reoptimize {
            // Snapshot stream + per-site latency percentiles + alloc
            // counters, for offline analysis (archived by CI).
            match report
                .telemetry
                .write_json("telemetry_obs.json", orchestrator.fleet())
            {
                Ok(()) => println!("  wrote telemetry_obs.json\n"),
                Err(e) => eprintln!("  could not write telemetry_obs.json: {e}\n"),
            }
        }
        report
    };

    let baseline = run(
        "nearest admission, no re-optimization",
        PlacementPolicy::Nearest,
        false,
    );
    let orchestrated = run(
        "AgRank admission + background re-optimization",
        PlacementPolicy::AgRank(AgRankConfig::paper(3)),
        true,
    );

    let b = &baseline.final_snapshot;
    let o = &orchestrated.final_snapshot;
    let peak_live = orchestrated
        .telemetry
        .live_sessions_series()
        .values()
        .into_iter()
        .fold(0.0f64, f64::max) as usize;
    println!("== verdict ==");
    println!("  peak concurrent sessions  {peak_live}");
    println!(
        "  mean objective / session  {:.2} → {:.2} ({:+.1}%)",
        b.mean_session_objective,
        o.mean_session_objective,
        100.0 * (o.mean_session_objective / b.mean_session_objective - 1.0)
    );
    println!(
        "  conservation violations   {} + {}",
        baseline.telemetry.total_conservation_violations(),
        orchestrated.telemetry.total_conservation_violations()
    );

    assert!(
        peak_live >= 100,
        "expected ≥100 concurrent sessions, saw {peak_live}"
    );
    assert!(
        o.mean_session_objective < b.mean_session_objective,
        "orchestrated fleet did not beat nearest admission"
    );
    assert_eq!(baseline.telemetry.total_conservation_violations(), 0);
    assert_eq!(orchestrated.telemetry.total_conservation_violations(), 0);
    println!(
        "\nOK: ≥100 concurrent sessions, churn survived, objective improved, ledger conserved."
    );
}

/// Kill the fleet mid-run, recover it from the durable store, prove
/// the recovered control plane is identical — including the worker
/// pool's pending WAIT countdowns, which are journaled at the
/// durability boundary and restored so the first post-recovery hop
/// fires at exactly the time the uncrashed run's would — and
/// optionally finish the trace on it, bit-for-bit against an
/// uncrashed control run.
fn crash_demo(crash_at: f64, resume: bool) {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: 400,
        max_session_size: 4,
        mean_bandwidth_mbps: Some(2_500.0),
        mean_transcode_slots: Some(150.0),
        seed: 42,
        ..LargeScaleConfig::default()
    });
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
    let trace = dynamic_trace(
        problem.instance().num_sessions(),
        &DynamicTraceConfig {
            horizon_s: HORIZON_S,
            warm_sessions: 110,
            mean_interarrival_s: Some(2.0),
            mean_holding_s: 400.0,
            failures: vec![(crash_at * 0.66, AgentId::new(2))],
            restores: vec![],
            seed: 7,
        },
    );
    let fleet_config = || FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
        alg1: Alg1Config {
            mean_countdown_s: 5.0,
            ..Alg1Config::paper(400.0)
        },
        ledger_shards: 4,
        ..FleetConfig::default()
    };
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/persist-demo");
    let persist = || PersistConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        // Stays are batched 64-to-a-record; `durable_state()` below is a
        // durability boundary, so the recovery comparison stays bitwise.
        stay_batch: 64,
    };

    let apply = |fleet: &Fleet, pool: &ReoptPool, t: f64, event: FleetEvent| match event {
        FleetEvent::Arrive(s) => {
            if fleet.admit(s).is_ok() {
                pool.register(fleet, s, t);
            }
        }
        FleetEvent::Depart(s) => {
            fleet.depart(s);
            pool.deregister(s);
        }
        FleetEvent::FailAgent(a) => {
            fleet.fail_agent(a);
        }
        FleetEvent::RestoreAgent(a) => {
            fleet.restore_agent(a);
        }
    };

    println!(
        "== durability demo: journaled fleet, killed at t = {crash_at} s ==\n   store: {}",
        dir.display()
    );
    // Twin runs over the same trace: `fleet` journals and dies at the
    // cut; `control` is the uncrashed reference the recovered fleet is
    // compared against — timers, counters, placements, Φ, all bitwise.
    const POOL_SEED: u64 = 2015;
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist())
        .expect("persistent fleet");
    let pool = ReoptPool::new(POOL_SEED);
    let control = Fleet::new(problem.clone(), fleet_config());
    let control_pool = ReoptPool::new(POOL_SEED);
    for &(t, event) in &trace.events {
        if t > crash_at {
            break;
        }
        pool.tick_until(&fleet, t);
        apply(&fleet, &pool, t, event);
        control_pool.tick_until(&control, t);
        apply(&control, &control_pool, t, event);
    }
    pool.tick_until(&fleet, crash_at);
    control_pool.tick_until(&control, crash_at);
    // Durability boundary at the cut: journal the pending WAIT
    // countdowns so recovery can resume them.
    fleet.journal_timers(&pool);
    let before = fleet.durable_state();
    let objective_before = fleet.objective();
    let live_before = fleet.live_count();
    assert!(fleet.audit().is_empty(), "pre-crash fleet failed audit");
    println!(
        "   pre-crash:  {live_before} live sessions, objective {objective_before:.3}, \
         {} pending timers journaled, audit clean",
        pool.timer_state().len()
    );
    drop(fleet); // kill -9: no shutdown, no checkpoint

    let (recovered, report) =
        Fleet::recover(persist(), problem.clone(), fleet_config()).expect("recovery");
    println!(
        "   recovered:  snapshot seq {}, {} journal records replayed{}",
        report.snapshot_seq,
        report.replayed,
        if report.torn_tail {
            ", torn tail discarded"
        } else {
            ""
        },
    );
    let after = recovered.durable_state();
    let objective_after = recovered.objective();
    println!(
        "   post-crash: {} live sessions, objective {objective_after:.3}, audit {}",
        recovered.live_count(),
        if recovered.audit().is_empty() {
            "clean"
        } else {
            "DIRTY"
        },
    );
    assert_eq!(after, before, "recovered control-plane state differs");
    assert_eq!(
        objective_after.to_bits(),
        objective_before.to_bits(),
        "recovered objective differs"
    );
    assert!(recovered.audit().is_empty(), "recovered fleet failed audit");

    // Resume the WAIT timers from the journal and prove the schedule
    // matches the uncrashed run exactly: same pending countdowns, and
    // in particular the same first post-recovery hop time.
    let restored_pool = ReoptPool::new(POOL_SEED);
    restored_pool.restore_timers(&recovered, &report.timers);
    // Cover any session admitted after the last Timers record (none
    // here — the demo journals timers right at the cut — but this is
    // the production recovery pattern).
    let late = restored_pool.ensure_registered(&recovered, crash_at);
    assert!(late.is_empty(), "demo cut journaled every timer");
    assert_eq!(
        restored_pool.timer_state(),
        control_pool.timer_state(),
        "restored WAIT timers differ from the uncrashed run"
    );
    let (due_us, s) = restored_pool.next_due().expect("live fleet has timers");
    assert_eq!(
        restored_pool.next_due(),
        control_pool.next_due(),
        "first post-recovery hop differs from the uncrashed run"
    );
    println!(
        "   identical:  live set, holdings, counters, objective (bitwise); \
         next hop {s} at t = {:.3} s matches the uncrashed run\n",
        due_us as f64 / 1e6
    );

    if resume {
        for &(t, event) in &trace.events {
            if t <= crash_at {
                continue;
            }
            restored_pool.tick_until(&recovered, t);
            apply(&recovered, &restored_pool, t, event);
            control_pool.tick_until(&control, t);
            apply(&control, &control_pool, t, event);
        }
        restored_pool.tick_until(&recovered, HORIZON_S);
        control_pool.tick_until(&control, HORIZON_S);
        recovered.commit_journal().expect("final commit");
        // The whole post-crash trajectory must be bitwise identical to
        // the run that never crashed: placements, counters, Φ, and the
        // next WAIT countdowns.
        recovered.record_timers(&restored_pool);
        control.record_timers(&control_pool);
        assert_eq!(
            recovered.durable_state(),
            control.durable_state(),
            "resumed trajectory diverged from the uncrashed run"
        );
        assert_eq!(
            recovered.objective().to_bits(),
            control.objective().to_bits(),
            "resumed objective diverged from the uncrashed run"
        );
        let c = recovered.counters();
        use std::sync::atomic::Ordering;
        println!("== resumed to t = {HORIZON_S} s on the recovered fleet ==");
        println!("   live sessions            {:>8}", recovered.live_count());
        println!(
            "   admitted / departed      {:>5} / {:<5}",
            c.admitted.load(Ordering::Relaxed),
            c.departed.load(Ordering::Relaxed)
        );
        println!(
            "   migrations               {:>8}",
            c.migrations.load(Ordering::Relaxed)
        );
        println!(
            "   mean objective / session {:>8.2}",
            recovered.mean_session_objective()
        );
        assert!(recovered.audit().is_empty(), "resumed fleet failed audit");
        println!(
            "\nOK: crash at t = {crash_at} s survived; resumed trajectory bitwise-identical \
             to the uncrashed run (placements, counters, objective, WAIT timers)."
        );
    } else {
        println!("OK: crash at t = {crash_at} s survived; recovery is exact.");
    }
}
