//! The online control plane end to end: a 60-virtual-second fleet of
//! 100+ concurrent sessions under churn — Poisson arrivals, exponential
//! departures, one agent failure mid-run — admitted against the sharded
//! capacity ledger and continuously re-optimized by the per-session
//! WAIT/HOP workers.
//!
//! Two runs over the *same* trace:
//!
//! * baseline — nearest-agent admission, no re-optimization (the
//!   Airlift/vSkyConf shape);
//! * orchestrated — AgRank bootstrap + background Alg. 1 workers.
//!
//! ```text
//! cargo run --release --example orchestrator
//! ```

use cloud_vc::prelude::*;
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_model::AgentId;
use vc_orchestrator::FleetReport;

const HORIZON_S: f64 = 60.0;

fn main() {
    // ~135 potential sessions over the 7 EC2 agents, with real capacity
    // limits so the ledger has something to arbitrate.
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: 400,
        max_session_size: 4,
        mean_bandwidth_mbps: Some(2_500.0),
        mean_transcode_slots: Some(150.0),
        seed: 42,
        ..LargeScaleConfig::default()
    });
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
    let num_sessions = problem.instance().num_sessions();

    let trace = dynamic_trace(
        num_sessions,
        &DynamicTraceConfig {
            horizon_s: HORIZON_S,
            warm_sessions: 110,
            mean_interarrival_s: Some(2.0),
            mean_holding_s: 400.0,
            failures: vec![(30.0, AgentId::new(2))],
            restores: vec![],
            seed: 7,
        },
    );
    println!(
        "universe: {} agents, {} potential sessions; trace: {} events ({} arrivals, {} departures, {} failures)\n",
        problem.instance().num_agents(),
        num_sessions,
        trace.len(),
        trace.count(|e| matches!(e, FleetEvent::Arrive(_))),
        trace.count(|e| matches!(e, FleetEvent::Depart(_))),
        trace.count(|e| matches!(e, FleetEvent::FailAgent(_))),
    );

    let run = |label: &str, placement: PlacementPolicy, reoptimize: bool| -> FleetReport {
        let mut orchestrator = cloud_vc::orchestrator::Orchestrator::new(
            problem.clone(),
            OrchestratorConfig {
                fleet: FleetConfig {
                    placement,
                    alg1: Alg1Config {
                        mean_countdown_s: 5.0,
                        ..Alg1Config::paper(400.0)
                    },
                    ledger_shards: 4,
                },
                sample_period_s: 1.0,
                seed: 2015,
                reoptimize,
            },
        );
        let report = orchestrator.run_trace(&trace, HORIZON_S);
        let s = &report.final_snapshot;
        println!("== {label} ==");
        println!("  live sessions            {:>10}", s.live_sessions);
        println!(
            "  admitted / rejected      {:>6} / {:<6}",
            s.admitted, s.rejected
        );
        println!(
            "  admission success rate   {:>10.3}",
            s.admission_success_rate
        );
        println!(
            "  migrations (hops run)    {:>6} ({})",
            s.migrations, report.hops_executed
        );
        println!(
            "  mean objective / session {:>10.2}",
            s.mean_session_objective
        );
        println!("  inter-agent traffic Mbps {:>10.1}", s.traffic_mbps);
        println!("  mean delay ms            {:>10.1}", s.mean_delay_ms);
        println!(
            "  agent utilization        {:>9.1}% mean, {:.1}% max",
            100.0 * s.mean_utilization,
            100.0 * s.max_utilization
        );
        println!(
            "  conservation violations  {:>10}\n",
            s.conservation_violations
        );
        report
    };

    let baseline = run(
        "nearest admission, no re-optimization",
        PlacementPolicy::Nearest,
        false,
    );
    let orchestrated = run(
        "AgRank admission + background re-optimization",
        PlacementPolicy::AgRank(AgRankConfig::paper(3)),
        true,
    );

    let b = &baseline.final_snapshot;
    let o = &orchestrated.final_snapshot;
    let peak_live = orchestrated
        .telemetry
        .live_sessions_series()
        .values()
        .into_iter()
        .fold(0.0f64, f64::max) as usize;
    println!("== verdict ==");
    println!("  peak concurrent sessions  {peak_live}");
    println!(
        "  mean objective / session  {:.2} → {:.2} ({:+.1}%)",
        b.mean_session_objective,
        o.mean_session_objective,
        100.0 * (o.mean_session_objective / b.mean_session_objective - 1.0)
    );
    println!(
        "  conservation violations   {} + {}",
        baseline.telemetry.total_conservation_violations(),
        orchestrated.telemetry.total_conservation_violations()
    );

    assert!(
        peak_live >= 100,
        "expected ≥100 concurrent sessions, saw {peak_live}"
    );
    assert!(
        o.mean_session_objective < b.mean_session_objective,
        "orchestrated fleet did not beat nearest admission"
    );
    assert_eq!(baseline.telemetry.total_conservation_violations(), 0);
    assert_eq!(orchestrated.telemetry.total_conservation_violations(), 0);
    println!(
        "\nOK: ≥100 concurrent sessions, churn survived, objective improved, ledger conserved."
    );
}
