//! Robustness to noisy measurements (Sec. IV-A.4 / Theorem 1).
//!
//! Runs Alg. 1 on the prototype workload with increasingly noisy
//! objective measurements (the quantized error model), showing that the
//! achieved objective degrades gracefully — bounded by `Δmax` per
//! Theorem 1 — rather than collapsing.
//!
//! Run with: `cargo run --release --example robustness`

use cloud_vc::markov::perturb::NoiseSpec;
use cloud_vc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn main() {
    let instance = prototype_instance(&PrototypeConfig::default());
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));

    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "delta", "traffic Mbps", "delay ms", "objective"
    );
    for delta in [0.0, 1.0, 5.0, 20.0, 80.0] {
        let mut total_phi = 0.0;
        let mut total_traffic = 0.0;
        let mut total_delay = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let mut state = SystemState::new(problem.clone(), nearest_assignment(&problem));
            let engine = Alg1Engine::new(Alg1Config {
                beta: 400.0,
                mean_countdown_s: 10.0,
                noise: if delta > 0.0 {
                    Some(NoiseSpec::uniform(delta, 3))
                } else {
                    None
                },
            });
            let mut rng = StdRng::seed_from_u64(seed);
            engine.run(&mut state, 400.0, &mut rng);
            total_phi += state.objective();
            total_traffic += state.total_traffic_mbps();
            total_delay += state.mean_delay_ms();
        }
        println!(
            "{:>10.1} {:>14.2} {:>14.1} {:>12.1}",
            delta,
            total_traffic / runs as f64,
            total_delay / runs as f64,
            total_phi / runs as f64
        );
    }
    println!("\nTheorem 1: the optimality gap grows by at most Δmax under");
    println!("quantized measurement noise — the objective should degrade");
    println!("smoothly down the table, not collapse.");
}
