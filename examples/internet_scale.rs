//! Internet-scale scenario: 200 users in ≤5-party sessions on 7 EC2
//! agents (the Sec. V-B setup), comparing initial policies and Alg. 1.
//!
//! Run with: `cargo run --release --example internet_scale`

use cloud_vc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn main() {
    let instance = large_scale_instance(&LargeScaleConfig {
        seed: 42,
        ..LargeScaleConfig::default()
    });
    println!(
        "Scenario: {} users, {} sessions, {} agents, {} transcoding tasks",
        instance.num_users(),
        instance.num_sessions(),
        instance.num_agents(),
        instance.theta_sum()
    );
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));

    // Initial policies.
    let nrst = SystemState::new(problem.clone(), nearest_assignment(&problem));
    let ag2 = SystemState::new(
        problem.clone(),
        agrank_assignment(&problem, &AgRankConfig::paper(2)),
    );
    println!(
        "\n{:<28} {:>12} {:>12}",
        "policy", "traffic Mbps", "delay ms"
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "Nrst (nearest)",
        nrst.total_traffic_mbps(),
        nrst.mean_delay_ms()
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "AgRank (nngbr=2)",
        ag2.total_traffic_mbps(),
        ag2.mean_delay_ms()
    );

    // Alg. 1 on top of each.
    let engine = Alg1Engine::new(Alg1Config::paper(400.0));
    for (label, mut state) in [("Nrst + Alg.1", nrst), ("AgRank + Alg.1", ag2)] {
        let mut rng = StdRng::seed_from_u64(7);
        engine.run(&mut state, 600.0, &mut rng);
        println!(
            "{:<28} {:>12.1} {:>12.1}",
            label,
            state.total_traffic_mbps(),
            state.mean_delay_ms()
        );
    }
}
