//! The distributed deployment shape of Alg. 1: one independent WAIT/HOP
//! loop per session on its own thread, serialized only by the FREEZE
//! lock — the paper's Sec. IV-A design, on real threads.
//!
//! Wall time is compressed: 1 simulated second = 1 ms, so the
//! prototype's 10-second mean countdowns become 10 ms and a half-second
//! run covers ~500 simulated seconds.
//!
//! Run with: `cargo run --release --example parallel_agents`

use cloud_vc::prelude::*;
use cloud_vc::sim::{run_parallel, ParallelConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let instance = prototype_instance(&PrototypeConfig::default());
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
    let initial = SystemState::new(problem.clone(), nearest_assignment(&problem));
    println!(
        "start: {:.1} Mbps inter-agent traffic, {:.1} ms mean delay, {} sessions on threads",
        initial.total_traffic_mbps(),
        initial.mean_delay_ms(),
        problem.instance().num_sessions()
    );

    let config = ParallelConfig {
        alg1: Alg1Config::paper(400.0),
        ms_per_sim_second: 1.0,
        wall_duration: Duration::from_millis(500),
        seed: 7,
    };
    let report = run_parallel(initial, &config);

    let migrated = report
        .hops
        .iter()
        .filter(|h| matches!(h.outcome, HopOutcome::Migrated(_)))
        .count();
    println!(
        "ran {} hops ({} migrations) across threads in 500 ms wall time",
        report.hops.len(),
        migrated
    );
    println!(
        "end:   {:.1} Mbps inter-agent traffic, {:.1} ms mean delay (feasible: {})",
        report.final_state.total_traffic_mbps(),
        report.final_state.mean_delay_ms(),
        report.final_state.is_feasible()
    );
}
