//! Quickstart: the paper's Fig. 2 scenario, end to end.
//!
//! Builds the four-user / four-agent motivating example with the measured
//! latencies from the paper, compares the nearest-assignment baseline
//! against the exact optimum and against Alg. 1, and prints where each
//! user and the transcoding task land.
//!
//! Run with: `cargo run --example quickstart`

use cloud_vc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn describe(problem: &UapProblem, state: &SystemState, label: &str) {
    let inst = problem.instance();
    println!("\n=== {label} ===");
    for u in inst.user_ids() {
        let a = state.assignment().agent_of_user(u);
        println!(
            "  user {:>2} → {:<14} ({} ms last mile)",
            u.index() + 1,
            inst.agent(a).name(),
            inst.h_ms(a, u)
        );
    }
    for (t, task) in problem.tasks().iter() {
        let a = state.assignment().agent_of_task(t);
        println!(
            "  transcode {}→{} ({}) at {}",
            task.src.index() + 1,
            task.dst.index() + 1,
            inst.ladder().repr(task.target).name(),
            inst.agent(a).name()
        );
    }
    println!(
        "  inter-agent traffic {:>6.2} Mbps | mean delay {:>6.1} ms | objective {:>8.2}",
        state.total_traffic_mbps(),
        state.mean_delay_ms(),
        state.objective()
    );
}

fn main() {
    let instance = cloud_vc::net::fig2::instance();
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));

    // 1. The commonly-adopted nearest policy (Airlift / vSkyConf).
    let nrst = nearest_assignment(&problem);
    let nrst_state = SystemState::new(problem.clone(), nrst);
    describe(&problem, &nrst_state, "Nearest assignment (Nrst)");

    // 2. The exact optimum by brute force (4^(4+1) = 1024 assignments).
    let (opt_asg, opt_phi) = cloud_vc::algo::brute_force::optimal(&problem, 10_000)
        .expect("fig2 space is enumerable")
        .expect("fig2 has feasible assignments");
    let opt_state = SystemState::new(problem.clone(), opt_asg);
    describe(&problem, &opt_state, "Exact optimum (brute force)");

    // 3. Alg. 1 from the Nrst start: converges to the optimum's
    //    neighborhood without enumerating anything.
    let mut state = SystemState::new(problem.clone(), nearest_assignment(&problem));
    let engine = Alg1Engine::new(Alg1Config::paper(400.0));
    let mut rng = StdRng::seed_from_u64(2015);
    let hops = engine.run(&mut state, 1200.0, &mut rng);
    describe(&problem, &state, "After Alg. 1 (Markov approximation)");
    println!(
        "\nAlg. 1 executed {} hops over 1200 simulated seconds; optimal Φ = {:.2}, reached Φ = {:.2}",
        hops.len(),
        opt_phi,
        state.objective()
    );

    // The paper's Fig. 2 argument: with users 1–3 pinned to their nearest
    // agents, user 4 [HK] is better served by Tokyo than by its nearest
    // agent Singapore — both in delay and in traffic.
    let user4 = UserId::new(3);
    let inst = problem.instance();
    let tokyo = AgentId::new(1);
    let singapore = AgentId::new(2);
    let mut pinned = SystemState::new(problem.clone(), nearest_assignment(&problem));
    let via_sg = (pinned.total_traffic_mbps(), pinned.mean_delay_ms());
    pinned.apply_unchecked(Decision::User(user4, tokyo));
    let via_to = (pinned.total_traffic_mbps(), pinned.mean_delay_ms());
    println!(
        "\nFig. 2 check for user 4 [HK] (others pinned to nearest):\n  via {} (nearest): {:.1} Mbps, {:.1} ms mean delay\n  via {}:           {:.1} Mbps, {:.1} ms mean delay",
        inst.agent(singapore).name(),
        via_sg.0,
        via_sg.1,
        inst.agent(tokyo).name(),
        via_to.0,
        via_to.1,
    );
}
