//! # cloud-vc — Cost-Effective Low-Delay Cloud Video Conferencing
//!
//! A complete implementation of Hajiesmaili et al., *"Cost-Effective
//! Low-Delay Cloud Video Conferencing"* (IEEE ICDCS 2015): the
//! user-to-agent assignment problem (UAP), the Markov
//! approximation-based distributed assignment algorithm (Alg. 1), the
//! AgRank bootstrap (Alg. 2), the nearest-assignment baseline, and the
//! full evaluation substrate (geography-driven latency model, cost
//! model, discrete-event conferencing simulator, workload generators).
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace.
//!
//! ## Quick start
//!
//! ```
//! use cloud_vc::prelude::*;
//! use std::sync::Arc;
//!
//! // The paper's Fig. 2 scenario with measured latencies.
//! let instance = cloud_vc::net::fig2::instance();
//! let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
//!
//! // Nearest assignment (the Airlift/vSkyConf policy)…
//! let nrst = cloud_vc::algo::nearest::nearest_assignment(&problem);
//! let mut state = SystemState::new(problem.clone(), nrst);
//! let before = state.objective();
//!
//! // …improved by the Markov approximation algorithm.
//! let engine = Alg1Engine::new(Alg1Config::paper(400.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! use rand::SeedableRng;
//! engine.run(&mut state, 600.0, &mut rng);
//! assert!(state.objective() <= before);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`model`] | `vc-model` | users, sessions, representations, agents, delay matrices |
//! | [`net`] | `vc-net` | geography, latency synthesis, traces, Fig. 2 data |
//! | [`cost`] | `vc-cost` | bandwidth/transcoding/delay cost shapes, α weights |
//! | [`core`] | `vc-core` | UAP: assignment state, constraints, objective, neighborhoods |
//! | [`markov`] | `vc-markov` | Markov approximation theory: Gibbs, CTMC, Theorem 1 |
//! | [`algo`] | `vc-algo` | Alg. 1, AgRank, Nrst, admission, exact solvers |
//! | [`sim`] | `vc-sim` | discrete-event conferencing simulator, metrics, streaming |
//! | [`workloads`] | `vc-workloads` | prototype, Internet-scale & dynamic-fleet generators |
//! | [`orchestrator`] | `vc-orchestrator` | online multi-session control plane: sharded capacity ledger, admission, re-optimization workers |
//! | [`persist`] | `vc-persist` | durability: hand-rolled binary codec, CRC-framed write-ahead journal, snapshots, crash recovery |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vc_algo as algo;
pub use vc_core as core;
pub use vc_cost as cost;
pub use vc_markov as markov;
pub use vc_model as model;
pub use vc_net as net;
pub use vc_orchestrator as orchestrator;
pub use vc_persist as persist;
pub use vc_sim as sim;
pub use vc_workloads as workloads;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use vc_algo::admission::{
        admit_all, AdmissionEngine, AdmissionOutcome, AdmissionPolicy, AdmissionTier,
    };
    pub use vc_algo::agrank::{agrank_assignment, AgRankConfig};
    pub use vc_algo::churn::evacuate_agent;
    pub use vc_algo::markov::{Alg1Config, Alg1Engine, HopOutcome};
    pub use vc_algo::min_delay::min_delay_assignment;
    pub use vc_algo::nearest::nearest_assignment;
    pub use vc_core::{Assignment, Decision, SystemState, UapProblem};
    pub use vc_cost::{CostModel, ObjectiveWeights};
    pub use vc_model::{
        AgentDef, AgentId, AgentSpec, Capacity, Instance, InstanceBuilder, ReprId, ReprLadder,
        SessionDef, SessionId, UserDef, UserId,
    };
    pub use vc_orchestrator::{
        AdmissionMode, Fleet, FleetConfig, FleetSnapshot, Orchestrator, OrchestratorConfig,
        PersistConfig, PlacementPolicy, RecoveryReport, TimerEntry,
    };
    pub use vc_persist::FsyncPolicy;
    pub use vc_sim::{ConferenceSim, DynamicsEvent, SimConfig, SimReport};
    pub use vc_workloads::{
        dynamic_trace, large_scale_instance, open_world_trace, prototype_instance,
        DynamicTraceConfig, FleetEvent, FleetTrace, LargeScaleConfig, OpenWorldConfig,
        OpenWorldEvent, OpenWorldTrace, PrototypeConfig,
    };
}
