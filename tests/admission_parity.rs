//! Admission parity: the control plane and the Fig. 9 experiments run
//! **one** admission engine.
//!
//! Three claims, property-tested over random capacity-limited
//! universes:
//!
//! 1. **Offline/online parity** (the acceptance criterion): a fleet
//!    admitting sessions in id order through `Fleet::admit` (engine
//!    mode) admits exactly the set the offline `admit_all` admits —
//!    `Fleet::admit` refuses no session the paper's algorithm would
//!    place — with the conservation audit clean after every admit and
//!    every refusal.
//! 2. **Engine dominance over the legacy search**: state for state,
//!    whenever the control plane's historical ranked-fallback search
//!    finds a placement, the engine finds one too (its candidate space
//!    is a superset: enumeration exhausts every user→candidate combo
//!    the legacy walk samples).
//! 3. **Install-don't-re-search replay** (journal v4): recovery
//!    installs the journaled `Admit` placements bit-for-bit even when
//!    the recovering build is configured so a re-run of the search
//!    would choose differently (perturbed policy / legacy mode).
//!
//! Plus the countdown-journaling bugfix: a crash/recover cycle
//! mid-trace — WAIT timers journaled at the durability boundary and
//! restored via `ReoptPool::restore_timers` — yields a fleet whose
//! remaining trajectory is **bitwise identical** (placements, counters,
//! Φ, and next WAIT countdowns) to a twin run that never crashed.

use cloud_vc::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use vc_algo::admission::{AdmissionConfig, AdmissionEngine, AdmissionPolicy};
use vc_algo::agrank::Residuals;
use vc_algo::markov::Alg1Config;
use vc_core::EvalScratch;
use vc_orchestrator::{AdmissionMode, Fleet, ReoptPool};
use vc_persist::FsyncPolicy;

/// A small capacity-limited universe: 3 agents, 5 sessions of 2–3
/// users, capacities tight enough that refusals actually happen.
#[derive(Debug, Clone)]
struct RandomUniverse {
    /// Per-agent (bandwidth Mbps, transcode slots).
    agents: Vec<(f64, u32)>,
    /// Per-session user demands as (upstream idx, downstream idx).
    sessions: Vec<Vec<(u8, u8)>>,
    delay_seed: u64,
}

fn universe_strategy() -> impl Strategy<Value = RandomUniverse> {
    (
        prop::collection::vec((15.0f64..80.0, 1u32..6), 3),
        prop::collection::vec(prop::collection::vec((0u8..4, 0u8..4), 2..=3), 5),
        any::<u64>(),
    )
        .prop_map(|(agents, sessions, delay_seed)| RandomUniverse {
            agents,
            sessions,
            delay_seed,
        })
}

fn build_problem(spec: &RandomUniverse) -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let reprs: Vec<ReprId> = ladder.ids().collect();
    let mut b = InstanceBuilder::new(ladder);
    for (i, &(mbps, slots)) in spec.agents.iter().enumerate() {
        b.add_agent(
            AgentSpec::builder(format!("a{i}"))
                .capacity(Capacity::new(mbps, mbps, slots))
                .build(),
        );
    }
    for session in &spec.sessions {
        let sid = b.add_session();
        for &(up, down) in session {
            b.add_user(sid, reprs[up as usize % 4], reprs[down as usize % 4]);
        }
    }
    let seed = spec.delay_seed;
    b.symmetric_delays(
        |l, k| 20.0 + 12.0 * ((l as f64) - (k as f64)).abs(),
        move |l, u| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((l * 131 + u * 31) as u64);
            5.0 + (x % 900) as f64 / 10.0
        },
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

fn policy() -> AdmissionPolicy {
    AdmissionPolicy::AgRank(AgRankConfig::paper(2))
}

fn fleet_config(admission: AdmissionMode) -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
        admission,
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        ..FleetConfig::default()
    }
}

/// Admits every session in id order, returning the admitted set; the
/// conservation audit must be clean after every admit AND every
/// refusal.
fn drive_fleet(fleet: &Fleet) -> BTreeSet<SessionId> {
    let mut admitted = BTreeSet::new();
    let n = fleet.problem().instance().num_sessions();
    for i in 0..n {
        let s = SessionId::new(i as u32);
        if fleet.admit(s).is_ok() {
            admitted.insert(s);
        }
        assert!(
            fleet.audit().is_empty(),
            "conservation audit dirty after session {s}: {:?}",
            fleet.audit()
        );
    }
    admitted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 1 — the acceptance criterion: the engine-mode fleet and
    /// the offline `admit_all` admit **identical** session sets.
    #[test]
    fn fleet_engine_admits_exactly_the_offline_set(spec in universe_strategy()) {
        let problem = build_problem(&spec);

        let offline = admit_all(problem.clone(), &policy());
        let offline_set: BTreeSet<SessionId> = offline.state.active_sessions().collect();

        let fleet = Fleet::new(problem.clone(), fleet_config(AdmissionMode::default()));
        let fleet_set = drive_fleet(&fleet);

        prop_assert_eq!(
            &fleet_set, &offline_set,
            "fleet admitted {:?}, offline admitted {:?}",
            fleet_set, offline_set
        );
        prop_assert_eq!(fleet.live_count(), offline_set.len());
        // Tier counters account for every admission; refusal counters
        // for every rejection.
        let c = fleet.counters();
        use std::sync::atomic::Ordering::Relaxed;
        prop_assert_eq!(
            c.admitted.load(Relaxed),
            c.admitted_enumeration.load(Relaxed)
                + c.admitted_repair.load(Relaxed)
                + c.admitted_fallback.load(Relaxed)
        );
        prop_assert_eq!(
            c.rejected.load(Relaxed),
            c.refused_user_fit.load(Relaxed)
                + c.refused_task_fit.load(Relaxed)
                + c.refused_global.load(Relaxed)
        );
    }

    /// Claim 2 — engine dominance, state for state: drive a fleet with
    /// the legacy ranked-fallback search; before each admission, ask
    /// the shared engine for a placement against the *same* live
    /// residuals. Whenever legacy admits, the engine must have found a
    /// placement too (its search space contains the legacy walk).
    #[test]
    fn engine_dominates_legacy_state_for_state(spec in universe_strategy()) {
        let problem = build_problem(&spec);
        let fleet = Fleet::new(problem.clone(), fleet_config(AdmissionMode::LegacyRanked));
        let engine = AdmissionEngine::new(AdmissionConfig::default());
        let mut scratch = EvalScratch::new();
        let available = vec![true; problem.instance().num_agents()];
        let n = problem.instance().num_sessions();
        for i in 0..n {
            let s = SessionId::new(i as u32);
            let residuals =
                Residuals::from_totals(&problem, &fleet.ledger().reserved_totals());
            let engine_found = engine
                .place_session(&problem, s, &policy(), &residuals, &available, &mut scratch)
                .is_ok();
            let legacy_admitted = fleet.admit(s).is_ok();
            prop_assert!(
                engine_found || !legacy_admitted,
                "legacy admitted {s} but the engine found no placement"
            );
            prop_assert!(fleet.audit().is_empty());
        }
    }
}

fn store_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp-persist")
        .join(format!("parity-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persist_config(dir: &std::path::Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        stay_batch: 4,
    }
}

/// A fixed tight universe for the durability tests.
fn tight_universe() -> Arc<UapProblem> {
    build_problem(&RandomUniverse {
        agents: vec![(60.0, 4), (45.0, 3), (30.0, 2)],
        sessions: vec![
            vec![(3, 0), (0, 0)],
            vec![(3, 3), (3, 3), (2, 1)],
            vec![(1, 0), (2, 0)],
            vec![(3, 2), (3, 2)],
            vec![(0, 0), (1, 1), (2, 2)],
        ],
        delay_seed: 2015,
    })
}

/// Claim 3: v4 `Admit` replay installs the journaled placement even
/// when the recovering build would search differently — recovery is
/// handed a *perturbed* config (legacy mode, different n_ngbr) and
/// must still reproduce the engine fleet bit-for-bit.
#[test]
fn replay_installs_journaled_placements_without_re_searching() {
    let problem = tight_universe();
    let dir = store_dir("install-not-search");
    let fleet = Fleet::with_persistence(
        problem.clone(),
        fleet_config(AdmissionMode::default()),
        persist_config(&dir),
    )
    .expect("persistent fleet");
    let admitted = drive_fleet(&fleet);
    assert!(!admitted.is_empty(), "universe admits nothing");
    let before = fleet.durable_state();
    let objective = fleet.objective();
    drop(fleet); // crash

    // Perturbed recovery config: a re-run of the admission search under
    // this config would pick different placements (different candidate
    // count AND the legacy walk) — replay must not care.
    let perturbed = FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
        admission: AdmissionMode::LegacyRanked,
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        ..FleetConfig::default()
    };
    let (recovered, report) =
        Fleet::recover(persist_config(&dir), problem.clone(), perturbed).expect("recovery");
    assert!(report.replayed > 0);
    assert_eq!(
        recovered.durable_state(),
        before,
        "replay re-derived placements instead of installing the journaled ones"
    );
    assert_eq!(recovered.objective().to_bits(), objective.to_bits());
    assert!(recovered.audit().is_empty());

    // Sanity: the perturbed search genuinely disagrees somewhere on
    // this universe (otherwise the test proves nothing). Compare fresh
    // runs of both configs.
    let engine_fleet = Fleet::new(problem.clone(), fleet_config(AdmissionMode::default()));
    let engine_set = drive_fleet(&engine_fleet);
    let legacy_fleet = Fleet::new(
        problem.clone(),
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
            admission: AdmissionMode::LegacyRanked,
            alg1: Alg1Config::paper(400.0),
            ledger_shards: 2,
            ..FleetConfig::default()
        },
    );
    let legacy_set = drive_fleet(&legacy_fleet);
    let same_sets = engine_set == legacy_set;
    let same_placements = same_sets
        && engine_fleet.with_state(|a| {
            legacy_fleet.with_state(|b| {
                problem
                    .instance()
                    .user_ids()
                    .all(|u| a.assignment().agent_of_user(u) == b.assignment().agent_of_user(u))
            })
        });
    assert!(
        !same_placements,
        "perturbed config agrees with the engine everywhere — pick a tighter universe"
    );
}

/// A session admitted *after* the last journaled `Timers` record must
/// not be left worker-less after recovery:
/// `ReoptPool::ensure_registered` re-registers every live session the
/// restored timer set misses, so it keeps re-optimizing.
#[test]
fn late_admissions_regain_workers_after_recovery() {
    let problem = tight_universe();
    let dir = store_dir("late-admission-worker");
    let fleet = Fleet::with_persistence(
        problem.clone(),
        fleet_config(AdmissionMode::default()),
        persist_config(&dir),
    )
    .expect("persistent fleet");
    let pool = ReoptPool::new(3);
    fleet.admit(SessionId::new(0)).expect("admits");
    pool.register(&fleet, SessionId::new(0), 0.0);
    fleet.journal_timers(&pool); // durability boundary
    fleet.admit(SessionId::new(2)).expect("admits"); // after the cut
    drop(fleet); // crash: session 2 is live but has no journaled timer

    let (recovered, report) = Fleet::recover(
        persist_config(&dir),
        problem,
        fleet_config(AdmissionMode::default()),
    )
    .expect("recovery");
    assert!(recovered.is_live(SessionId::new(2)));
    let restored = ReoptPool::new(3);
    restored.restore_timers(&recovered, &report.timers);
    assert_eq!(
        report.timers.iter().map(|t| t.session).collect::<Vec<_>>(),
        vec![SessionId::new(0)],
        "only the journaled timer is restored"
    );
    let late = restored.ensure_registered(&recovered, 10.0);
    assert_eq!(
        late,
        vec![SessionId::new(2)],
        "late admission regains a worker"
    );
    // Both sessions now hop.
    let hops = restored.tick_until(&recovered, 500.0);
    assert!(
        hops > 20,
        "restored + late workers must both run, got {hops}"
    );
    assert!(recovered.audit().is_empty());
}

/// A departed session's epoch watermark must survive recovery: worker
/// randomness is seeded from `(seed, session, epoch, draw)`, so a
/// re-admission after the crash must continue the same epoch sequence
/// as the uncrashed run — inactive timer entries are journaled too.
#[test]
fn readmission_after_recovery_continues_the_epoch_sequence() {
    const POOL_SEED: u64 = 5;
    let problem = tight_universe();
    let dir = store_dir("epoch-watermark");
    let fleet = Fleet::with_persistence(
        problem.clone(),
        fleet_config(AdmissionMode::default()),
        persist_config(&dir),
    )
    .expect("persistent fleet");
    let pool = ReoptPool::new(POOL_SEED);
    let control = Fleet::new(problem.clone(), fleet_config(AdmissionMode::default()));
    let control_pool = ReoptPool::new(POOL_SEED);
    let s = SessionId::new(0);
    for (f, p) in [(&fleet, &pool), (&control, &control_pool)] {
        f.admit(s).expect("admits");
        p.register(f, s, 0.0);
        p.tick_until(f, 40.0);
        f.depart(s);
        p.deregister(s); // epoch 1 retired; next registration must be 2
    }
    fleet.journal_timers(&pool);
    fleet.commit_journal().expect("commit");
    drop(fleet); // crash with the session departed

    let (recovered, report) = Fleet::recover(
        persist_config(&dir),
        problem,
        fleet_config(AdmissionMode::default()),
    )
    .expect("recovery");
    let restored = ReoptPool::new(POOL_SEED);
    restored.restore_timers(&recovered, &report.timers);
    // Both runs now re-admit the session; the drawn countdown (and all
    // later randomness) must match — i.e. both must use epoch 2.
    for (f, p) in [(&recovered, &restored), (&control, &control_pool)] {
        f.admit(s).expect("re-admits");
        p.register(f, s, 50.0);
    }
    assert_eq!(
        restored.timer_state(),
        control_pool.timer_state(),
        "re-admission after recovery drew from a different epoch"
    );
    restored.tick_until(&recovered, 300.0);
    control_pool.tick_until(&control, 300.0);
    recovered.record_timers(&restored);
    control.record_timers(&control_pool);
    assert_eq!(recovered.durable_state(), control.durable_state());
}

/// The countdown-journaling acceptance criterion: a crash/recover
/// cycle mid-trace yields a bitwise-identical fleet — placements,
/// counters, Φ, and the next WAIT countdowns — versus an uncrashed
/// twin driven over the same trace.
#[test]
fn crash_recovery_resumes_wait_timers_bitwise() {
    const POOL_SEED: u64 = 7;
    const CUT_S: f64 = 60.0;
    const HORIZON_S: f64 = 140.0;
    let problem = tight_universe();
    let trace = dynamic_trace(
        problem.instance().num_sessions(),
        &DynamicTraceConfig {
            horizon_s: HORIZON_S,
            warm_sessions: 3,
            mean_interarrival_s: Some(15.0),
            mean_holding_s: 90.0,
            ..DynamicTraceConfig::default()
        },
    );
    let dir = store_dir("timer-resume");
    let fleet = Fleet::with_persistence(
        problem.clone(),
        fleet_config(AdmissionMode::default()),
        persist_config(&dir),
    )
    .expect("persistent fleet");
    let pool = ReoptPool::new(POOL_SEED);
    let control = Fleet::new(problem.clone(), fleet_config(AdmissionMode::default()));
    let control_pool = ReoptPool::new(POOL_SEED);

    let apply = |fleet: &Fleet, pool: &ReoptPool, t: f64, event: FleetEvent| match event {
        FleetEvent::Arrive(s) => {
            if fleet.admit(s).is_ok() {
                pool.register(fleet, s, t);
            }
        }
        FleetEvent::Depart(s) => {
            fleet.depart(s);
            pool.deregister(s);
        }
        FleetEvent::FailAgent(a) => {
            fleet.fail_agent(a);
        }
        FleetEvent::RestoreAgent(a) => {
            fleet.restore_agent(a);
        }
    };

    for &(t, event) in &trace.events {
        if t > CUT_S {
            break;
        }
        pool.tick_until(&fleet, t);
        apply(&fleet, &pool, t, event);
        control_pool.tick_until(&control, t);
        apply(&control, &control_pool, t, event);
    }
    pool.tick_until(&fleet, CUT_S);
    control_pool.tick_until(&control, CUT_S);
    assert!(
        pool.hops_executed() > 0,
        "trace never hopped before the cut"
    );
    // The durability boundary: flush the pending stay batch and journal
    // the WAIT timers (what a production fleet does once per telemetry
    // period).
    fleet.journal_timers(&pool);
    fleet.commit_journal().expect("commit at the cut");
    drop(fleet); // crash — no checkpoint, no shutdown

    let (recovered, report) = Fleet::recover(
        persist_config(&dir),
        problem.clone(),
        fleet_config(AdmissionMode::default()),
    )
    .expect("recovery");
    assert!(!report.timers.is_empty(), "no timers journaled");
    let restored_pool = ReoptPool::new(POOL_SEED);
    restored_pool.restore_timers(&recovered, &report.timers);
    // The pending countdowns are the uncrashed run's, exactly.
    assert_eq!(restored_pool.timer_state(), control_pool.timer_state());
    assert_eq!(restored_pool.next_due(), control_pool.next_due());

    // Finish the trace on both; every subsequent hop draws the same
    // reconstructible randomness, so the trajectories stay bitwise
    // identical to the end.
    for &(t, event) in &trace.events {
        if t <= CUT_S {
            continue;
        }
        restored_pool.tick_until(&recovered, t);
        apply(&recovered, &restored_pool, t, event);
        control_pool.tick_until(&control, t);
        apply(&control, &control_pool, t, event);
    }
    restored_pool.tick_until(&recovered, HORIZON_S);
    control_pool.tick_until(&control, HORIZON_S);
    recovered.record_timers(&restored_pool);
    control.record_timers(&control_pool);
    assert_eq!(
        recovered.durable_state(),
        control.durable_state(),
        "post-recovery trajectory diverged from the uncrashed twin"
    );
    assert_eq!(
        recovered.objective().to_bits(),
        control.objective().to_bits()
    );
    assert_eq!(restored_pool.timer_state(), control_pool.timer_state());
    assert!(recovered.audit().is_empty());
    assert!(control.audit().is_empty());
}
