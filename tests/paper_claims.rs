//! The paper's headline claims, asserted as integration tests
//! (shape-level: who wins and in which direction, per DESIGN.md).

use cloud_vc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn large_problem(seed: u64) -> Arc<UapProblem> {
    Arc::new(UapProblem::new(
        large_scale_instance(&LargeScaleConfig {
            num_users: 60,
            seed,
            ..LargeScaleConfig::default()
        }),
        CostModel::paper_default(),
    ))
}

/// Sec. I / Fig. 2: the nearest policy is optimal in neither delay nor
/// cost; Tokyo beats Singapore for user 4 on both metrics.
#[test]
fn fig2_nearest_is_suboptimal_in_both_metrics() {
    let problem = Arc::new(UapProblem::new(
        cloud_vc::net::fig2::instance(),
        CostModel::paper_default(),
    ));
    let mut state = SystemState::new(problem.clone(), nearest_assignment(&problem));
    let (traffic_sg, delay_sg) = (state.total_traffic_mbps(), state.mean_delay_ms());
    state.apply_unchecked(cloud_vc::core::Decision::User(
        UserId::new(3),
        AgentId::new(1),
    ));
    assert!(state.total_traffic_mbps() < traffic_sg);
    assert!(state.mean_delay_ms() < delay_sg);
}

/// Table II shape: Alg. 1 under the balanced objective cuts traffic
/// massively while keeping delay roughly unchanged, from both inits.
#[test]
fn table2_balanced_cuts_traffic_at_flat_delay() {
    let problem = large_problem(21);
    let engine = Alg1Engine::new(Alg1Config::paper(400.0));
    for init in [
        nearest_assignment(&problem),
        agrank_assignment(&problem, &AgRankConfig::paper(2)),
    ] {
        let mut state = SystemState::new(problem.clone(), init);
        let (t0, d0) = (state.total_traffic_mbps(), state.mean_delay_ms());
        let mut rng = StdRng::seed_from_u64(5);
        engine.run(&mut state, 400.0, &mut rng);
        let (t1, d1) = (state.total_traffic_mbps(), state.mean_delay_ms());
        assert!(t1 < t0 * 0.6, "traffic cut too small: {t0} → {t1}");
        assert!(d1 < d0 * 1.2, "delay blew up: {d0} → {d1}");
    }
}

/// Table II shape: the delay-only objective yields lower delay than the
/// traffic-only objective, and the traffic-only objective yields lower
/// traffic — "paying more attention to one part of the hybrid objective
/// may sacrifice the other".
#[test]
fn table2_alpha_extremes_trade_off() {
    let problem = large_problem(22);
    let run_with = |weights: ObjectiveWeights, seed: u64| {
        let p = Arc::new(
            problem
                .as_ref()
                .with_cost(CostModel::paper_default().with_weights(weights)),
        );
        let mut state = SystemState::new(p, nearest_assignment(&problem));
        let engine = Alg1Engine::new(Alg1Config::paper(400.0));
        let mut rng = StdRng::seed_from_u64(seed);
        engine.run(&mut state, 400.0, &mut rng);
        (state.total_traffic_mbps(), state.mean_delay_ms())
    };
    let (t_delay, d_delay) = run_with(ObjectiveWeights::delay_only(), 1);
    let (t_traffic, d_traffic) = run_with(ObjectiveWeights::traffic_only(), 2);
    assert!(
        d_delay < d_traffic,
        "delay-only should win on delay: {d_delay} vs {d_traffic}"
    );
    assert!(
        t_traffic < t_delay,
        "traffic-only should win on traffic: {t_traffic} vs {t_delay}"
    );
}

/// Fig. 9 shape: success rate ordering AgRank#3 ≥ AgRank#2 ≥ Nrst under
/// scarce bandwidth, and everyone succeeds with abundant capacity.
#[test]
fn fig9_success_ordering() {
    use cloud_vc::algo::admission::{admit_all, AdmissionPolicy};
    let mut nrst_wins = 0usize;
    let mut ag2_wins = 0usize;
    let mut ag3_wins = 0usize;
    let scenarios = 8;
    for seed in 0..scenarios {
        let instance = large_scale_instance(&LargeScaleConfig {
            num_users: 60,
            mean_bandwidth_mbps: Some(220.0),
            seed,
            ..LargeScaleConfig::default()
        });
        let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
        if admit_all(problem.clone(), &AdmissionPolicy::Nearest).success {
            nrst_wins += 1;
        }
        if admit_all(
            problem.clone(),
            &AdmissionPolicy::AgRank(AgRankConfig::paper(2)),
        )
        .success
        {
            ag2_wins += 1;
        }
        if admit_all(
            problem.clone(),
            &AdmissionPolicy::AgRank(AgRankConfig::paper(3)),
        )
        .success
        {
            ag3_wins += 1;
        }
    }
    assert!(
        ag3_wins >= ag2_wins,
        "AgRank#3 {ag3_wins} < AgRank#2 {ag2_wins}"
    );
    assert!(
        ag2_wins >= nrst_wins,
        "AgRank#2 {ag2_wins} < Nrst {nrst_wins}"
    );
    // Abundant capacity: all policies succeed.
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: 60,
        mean_bandwidth_mbps: Some(5_000.0),
        seed: 99,
        ..LargeScaleConfig::default()
    });
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
    assert!(admit_all(problem, &AdmissionPolicy::Nearest).success);
}

/// Fig. 10 shape: traffic decreases monotonically-ish with n_ngbr, with
/// n_ngbr = 1 equal to Nrst.
#[test]
fn fig10_nngbr_shrinks_traffic() {
    let problem = large_problem(23);
    let nrst = SystemState::new(problem.clone(), nearest_assignment(&problem));
    let t1 = SystemState::new(
        problem.clone(),
        agrank_assignment(&problem, &AgRankConfig::paper(1)),
    )
    .total_traffic_mbps();
    assert!((t1 - nrst.total_traffic_mbps()).abs() < 1e-9);
    let t3 = SystemState::new(
        problem.clone(),
        agrank_assignment(&problem, &AgRankConfig::paper(3)),
    )
    .total_traffic_mbps();
    let t7 = SystemState::new(
        problem.clone(),
        agrank_assignment(&problem, &AgRankConfig::paper(7)),
    )
    .total_traffic_mbps();
    assert!(t3 < t1, "nngbr 3 should beat nearest: {t3} vs {t1}");
    assert!(t7 <= t3 + 1e-9, "nngbr 7 should beat nngbr 3: {t7} vs {t3}");
}

/// Sec. V-A: migration with dual-feed causes no frozen frames at ~13 Kb
/// overhead; instant teardown freezes 2–3 frames at 30 fps.
#[test]
fn migration_claims() {
    use cloud_vc::sim::streaming::{simulate_migration, StreamingConfig};
    let config = StreamingConfig {
        switch_ms: 80.0,
        ..StreamingConfig::paper_default()
    };
    let teardown = simulate_migration(&config, false);
    assert!((2..=3).contains(&teardown.frozen_frames));
    let dual = simulate_migration(&StreamingConfig::paper_default(), true);
    assert_eq!(dual.frozen_frames, 0);
    assert!((dual.redundant_kb - 13.2).abs() < 0.1);
}

/// Sec. IV-B complexity claim: AgRank converges in few iterations
/// (∝ −log ε) and is fast even at Internet scale.
#[test]
fn agrank_converges_quickly() {
    use cloud_vc::algo::agrank::{rank_agents, Residuals};
    let problem = large_problem(24);
    let residuals = Residuals::full(&problem);
    let started = std::time::Instant::now();
    for s in problem.instance().session_ids() {
        let ranking = rank_agents(&problem, s, &residuals, &AgRankConfig::paper(3));
        assert!(
            ranking.iterations <= 500,
            "session {s}: {} iterations",
            ranking.iterations
        );
    }
    // The paper reports < 200 ms per session on a 2013 micro instance;
    // the whole 60-user system should rank well under a second here.
    assert!(started.elapsed().as_secs_f64() < 5.0);
}
