//! Fault-injection acceptance test for the SLO burn watchdogs: an
//! agent failure shrinks the fleet's capacity, the resulting refusal
//! storm drives the cumulative admission fraction through the SLO
//! floor, and the watchdog — observed once per telemetry tick, the
//! production cadence — must fire its post-mortem + lifecycle-trace
//! dump **exactly once**, proactively, with no conservation or audit
//! invariant ever breaking.

use cloud_vc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_obs::{SloSpec, Watchdog};
use vc_orchestrator::FleetTelemetry;

/// Three capacity-limited agents, six 2-user sessions.
fn small_universe() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    for name in ["a", "b", "c"] {
        b.add_agent(
            AgentSpec::builder(name)
                .capacity(Capacity::new(90.0, 90.0, 5))
                .build(),
        );
    }
    for i in 0..6 {
        let s = b.add_session();
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        ..FleetConfig::default()
    }
}

#[test]
fn agent_failure_burns_the_admission_floor_and_fires_once() {
    let fleet = Fleet::new(small_universe(), fleet_config());
    let mut rng = StdRng::seed_from_u64(2015);
    let mut telemetry = FleetTelemetry::new();
    // Default production budgets: 0.25 admission floor, 3-of-5 burn.
    let watchdog = Watchdog::new(SloSpec::default());

    // Healthy phase: admit what fits, hop a little, sample — nothing
    // burns.
    for i in 0..6usize {
        let _ = fleet.admit(SessionId::from(i));
    }
    for i in 0..6usize {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
    let (snap, fire) = telemetry.sample_with_watchdog(&fleet, 1.0, &watchdog);
    assert!(snap.admitted > 0, "roomy start admits sessions");
    assert!(fire.is_none(), "healthy fleet must not fire");

    // Fault injection: every agent fails (evacuation has nowhere to
    // move anything) and the users hang up. Each re-admission attempt
    // now refuses outright, dragging the cumulative admission fraction
    // through the 0.25 floor.
    for a in 0..3u32 {
        fleet.fail_agent(AgentId::new(a));
    }
    for i in 0..6usize {
        fleet.depart(SessionId::from(i));
    }
    for _round in 0..20 {
        for i in 0..6usize {
            let s = SessionId::from(i);
            if !fleet.is_live(s) {
                let _ = fleet.admit(s);
            }
        }
    }
    let rate = fleet.counters().admission_success_rate();
    assert!(
        rate < 0.25,
        "refusal storm must push the admission fraction under the floor (got {rate})"
    );

    // Observe at the telemetry cadence: the burn needs 3 breaching
    // ticks of the 5-tick window, then fires exactly once — later
    // ticks with the budget still burning stay silent.
    let mut fires = Vec::new();
    for tick in 0..8 {
        let (_, fire) = telemetry.sample_with_watchdog(&fleet, 2.0 + tick as f64, &watchdog);
        if let Some(f) = fire {
            fires.push((tick, f));
        }
    }
    assert_eq!(
        fires.len(),
        1,
        "watchdog must fire exactly once, got {}",
        fires.len()
    );
    let (_, fire) = &fires[0];
    assert_eq!(fire.budget, "admission_fraction");
    assert!(fire.value < fire.threshold);
    assert!(watchdog.fired());

    // The fire carries both dumps: the flight-recorder post-mortem and
    // the Perfetto lifecycle trace (with real events in it).
    let pm = fire
        .post_mortem
        .as_ref()
        .expect("watchdog takes the plane's one-shot post-mortem");
    assert!(pm.contains("slo_burn:admission_fraction"));
    assert!(fire.trace_json.contains("\"traceEvents\""));
    assert!(
        fire.trace_json.contains("\"refused\""),
        "the trace dump must show the refusal storm"
    );
    // The dump is also retrievable after the fact (the /postmortem
    // route serves exactly this).
    assert!(fleet.obs().last_post_mortem().is_some());

    // The incident never corrupted the control plane.
    assert!(fleet.audit().is_empty());
    assert_eq!(telemetry.total_conservation_violations(), 0);
}
