//! Property tests of the observability exports' mutual consistency:
//! after *any* admit/depart/hop/sample interleaving, the three views a
//! [`FleetTelemetry`] collector offers — the snapshot vector, the
//! per-field [`TimeSeries`], and the CSV export — must describe the
//! same history, row for row and field for field. A companion suite
//! checks that `vc-obs` histogram merging is exactly bucket-wise (a
//! merged histogram reports the same summary as one histogram fed the
//! concatenated stream).

use cloud_vc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::markov::Alg1Config;
use vc_obs::LatencyHist;
use vc_orchestrator::{Fleet, FleetConfig, FleetSnapshot, FleetTelemetry, PlacementPolicy};

/// A small capacity-limited universe: 3 agents, 5 sessions of 2–3 users.
#[derive(Debug, Clone)]
struct RandomUniverse {
    agents: Vec<(f64, u32)>,
    sessions: Vec<Vec<(u8, u8)>>,
    delay_seed: u64,
}

fn universe_strategy() -> impl Strategy<Value = RandomUniverse> {
    (
        prop::collection::vec((15.0f64..80.0, 1u32..6), 3),
        prop::collection::vec(prop::collection::vec((0u8..4, 0u8..4), 2..=3), 5),
        any::<u64>(),
    )
        .prop_map(|(agents, sessions, delay_seed)| RandomUniverse {
            agents,
            sessions,
            delay_seed,
        })
}

fn build_fleet(spec: &RandomUniverse) -> Fleet {
    let ladder = ReprLadder::standard_four();
    let reprs: Vec<ReprId> = ladder.ids().collect();
    let mut b = InstanceBuilder::new(ladder);
    for (i, &(mbps, slots)) in spec.agents.iter().enumerate() {
        b.add_agent(
            AgentSpec::builder(format!("a{i}"))
                .capacity(Capacity::new(mbps, mbps, slots))
                .build(),
        );
    }
    for session in &spec.sessions {
        let sid = b.add_session();
        for &(up, down) in session {
            b.add_user(sid, reprs[up as usize % 4], reprs[down as usize % 4]);
        }
    }
    let seed = spec.delay_seed;
    b.symmetric_delays(
        |l, k| 20.0 + 12.0 * ((l as f64) - (k as f64)).abs(),
        move |l, u| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((l * 131 + u * 31) as u64);
            5.0 + (x % 900) as f64 / 10.0
        },
    );
    b.d_max_ms(10_000.0);
    let problem = Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ));
    Fleet::new(
        problem,
        FleetConfig {
            placement: PlacementPolicy::Nearest,
            alg1: Alg1Config::paper(400.0),
            ledger_shards: 2,
            ..FleetConfig::default()
        },
    )
}

/// Drives a random event sequence, sampling telemetry after every
/// event, and returns the collector.
fn drive(fleet: &Fleet, events: &[(u8, u8)]) -> FleetTelemetry {
    let mut rng = StdRng::seed_from_u64(7);
    let mut telemetry = FleetTelemetry::new();
    for (i, &(op, arg)) in events.iter().enumerate() {
        match op % 3 {
            0 => {
                let _ = fleet.admit(SessionId::from(arg as usize % 5));
            }
            1 => {
                fleet.depart(SessionId::from(arg as usize % 5));
            }
            _ => {
                let _ = fleet.hop_session(SessionId::from(arg as usize % 5), &mut rng);
            }
        }
        telemetry.sample(fleet, i as f64 * 0.5);
    }
    telemetry
}

/// One mirrored telemetry field: name, series values, and the
/// extractor pulling the same figure out of a snapshot.
type FieldView = (&'static str, Vec<f64>, fn(&FleetSnapshot) -> f64);

/// The per-field series views, paired with the snapshot field each one
/// mirrors.
fn field_views(t: &FleetTelemetry) -> Vec<FieldView> {
    vec![
        (
            "universe_sessions",
            t.universe_sessions_series().values(),
            |s| s.universe_sessions as f64,
        ),
        ("universe_users", t.universe_users_series().values(), |s| {
            s.universe_users as f64
        }),
        ("live_sessions", t.live_sessions_series().values(), |s| {
            s.live_sessions as f64
        }),
        ("objective", t.objective_series().values(), |s| s.objective),
        (
            "mean_session_objective",
            t.mean_session_objective_series().values(),
            |s| s.mean_session_objective,
        ),
        ("traffic", t.traffic_series().values(), |s| s.traffic_mbps),
        ("mean_delay", t.mean_delay_series().values(), |s| {
            s.mean_delay_ms
        }),
        (
            "mean_utilization",
            t.mean_utilization_series().values(),
            |s| s.mean_utilization,
        ),
        (
            "max_utilization",
            t.max_utilization_series().values(),
            |s| s.max_utilization,
        ),
        ("admitted", t.admitted_series().values(), |s| {
            s.admitted as f64
        }),
        ("rejected", t.rejected_series().values(), |s| {
            s.rejected as f64
        }),
        ("departed", t.departed_series().values(), |s| {
            s.departed as f64
        }),
        ("migrations", t.migrations_series().values(), |s| {
            s.migrations as f64
        }),
        (
            "admission_success_rate",
            t.admission_success_rate_series().values(),
            |s| s.admission_success_rate,
        ),
        (
            "admission_attempts",
            t.admission_attempts_series().values(),
            |s| s.admission_attempts as f64,
        ),
        (
            "admitted_enumeration",
            t.admitted_enumeration_series().values(),
            |s| s.admitted_enumeration as f64,
        ),
        (
            "admitted_repair",
            t.admitted_repair_series().values(),
            |s| s.admitted_repair as f64,
        ),
        (
            "admitted_fallback",
            t.admitted_fallback_series().values(),
            |s| s.admitted_fallback as f64,
        ),
        (
            "admission_repair_steps",
            t.admission_repair_steps_series().values(),
            |s| s.admission_repair_steps as f64,
        ),
        (
            "refused_user_fit",
            t.refused_user_fit_series().values(),
            |s| s.refused_user_fit as f64,
        ),
        (
            "refused_task_fit",
            t.refused_task_fit_series().values(),
            |s| s.refused_task_fit as f64,
        ),
        ("refused_global", t.refused_global_series().values(), |s| {
            s.refused_global as f64
        }),
        (
            "conservation_violations",
            t.conservation_violations_series().values(),
            |s| s.conservation_violations as f64,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot vector and every derived series agree in length, time
    /// axis, and value, sample by sample.
    #[test]
    fn series_mirror_snapshots(
        spec in universe_strategy(),
        events in prop::collection::vec((any::<u8>(), any::<u8>()), 1..=30),
    ) {
        let fleet = build_fleet(&spec);
        let telemetry = drive(&fleet, &events);
        let snaps = telemetry.snapshots();
        prop_assert_eq!(snaps.len(), events.len(), "one snapshot per sample");
        for (name, values, field) in field_views(&telemetry) {
            prop_assert_eq!(values.len(), snaps.len(), "series {} length", name);
            for (i, snap) in snaps.iter().enumerate() {
                prop_assert_eq!(
                    values[i], field(snap),
                    "series {} diverges from snapshot {} ", name, i
                );
            }
        }
        // Every series shares the snapshot time axis.
        for (i, snap) in snaps.iter().enumerate() {
            prop_assert_eq!(telemetry.objective_series().points()[i].0, snap.time_s);
            prop_assert_eq!(telemetry.admitted_series().points()[i].0, snap.time_s);
        }
    }

    /// The CSV export is a faithful, parseable rendering of the
    /// snapshot vector: header plus one row per sample, with every
    /// column round-tripping back to the snapshot field.
    #[test]
    fn csv_round_trips_snapshots(
        spec in universe_strategy(),
        events in prop::collection::vec((any::<u8>(), any::<u8>()), 1..=30),
    ) {
        let fleet = build_fleet(&spec);
        let telemetry = drive(&fleet, &events);
        let snaps = telemetry.snapshots();
        let csv = telemetry.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(lines.len(), snaps.len() + 1, "header + one row per sample");
        prop_assert_eq!(lines[0], FleetTelemetry::CSV_HEADER);
        let columns = lines[0].split(',').count();
        for (i, snap) in snaps.iter().enumerate() {
            let fields: Vec<&str> = lines[i + 1].split(',').collect();
            prop_assert_eq!(fields.len(), columns, "row {} column count", i);
            // Floats are written as {:.17e}, which round-trips f64
            // exactly; counters parse back as integers.
            prop_assert_eq!(fields[0].parse::<f64>().unwrap(), snap.time_s);
            prop_assert_eq!(fields[1].parse::<usize>().unwrap(), snap.universe_sessions);
            prop_assert_eq!(fields[2].parse::<usize>().unwrap(), snap.universe_users);
            prop_assert_eq!(fields[3].parse::<usize>().unwrap(), snap.live_sessions);
            prop_assert_eq!(fields[4].parse::<f64>().unwrap(), snap.objective);
            prop_assert_eq!(fields[10].parse::<usize>().unwrap(), snap.admitted);
            prop_assert_eq!(fields[11].parse::<usize>().unwrap(), snap.rejected);
            prop_assert_eq!(fields[12].parse::<usize>().unwrap(), snap.departed);
            prop_assert_eq!(fields[13].parse::<usize>().unwrap(), snap.migrations);
            prop_assert_eq!(
                fields[14].parse::<f64>().unwrap(),
                snap.admission_success_rate
            );
            prop_assert_eq!(
                fields[columns - 1].parse::<usize>().unwrap(),
                snap.conservation_violations
            );
        }
    }

    /// Merging histograms is exactly bucket-wise: two histograms fed a
    /// split of a stream, merged, report the same summary as one
    /// histogram fed the whole stream — and merging an empty histogram
    /// is the identity.
    #[test]
    fn histogram_merge_matches_single_stream(
        values in prop::collection::vec(0u64..2_000_000_000, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let mut whole = LatencyHist::new();
        let mut left = LatencyHist::new();
        let mut right = LatencyHist::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i < split { left.record(v) } else { right.record(v) }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        prop_assert_eq!(merged.summary(), whole.summary());
        // Merging an empty histogram changes nothing.
        merged.merge(&LatencyHist::new());
        prop_assert_eq!(merged.summary(), whole.summary());
        // And an empty histogram stays all-zero after absorbing one.
        let mut empty = LatencyHist::new();
        empty.merge(&LatencyHist::new());
        prop_assert_eq!(empty.summary(), LatencyHist::new().summary());
        prop_assert_eq!(empty.summary().count, 0);
    }
}
