//! End-to-end integration tests: every workload through every policy.

use cloud_vc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn problems() -> Vec<(&'static str, Arc<UapProblem>)> {
    vec![
        (
            "fig2",
            Arc::new(UapProblem::new(
                cloud_vc::net::fig2::instance(),
                CostModel::paper_default(),
            )),
        ),
        (
            "prototype",
            Arc::new(UapProblem::new(
                prototype_instance(&PrototypeConfig::default()),
                CostModel::paper_default(),
            )),
        ),
        (
            "large_scale",
            Arc::new(UapProblem::new(
                large_scale_instance(&LargeScaleConfig {
                    num_users: 40,
                    ..LargeScaleConfig::default()
                }),
                CostModel::paper_default(),
            )),
        ),
    ]
}

#[test]
fn nearest_assignment_is_feasible_on_unlimited_workloads() {
    for (label, problem) in problems() {
        let state = SystemState::new(problem.clone(), nearest_assignment(&problem));
        assert!(
            state.is_feasible(),
            "{label}: Nrst infeasible: {:?}",
            state.violations()
        );
        assert!(state.objective() > 0.0, "{label}: zero objective");
    }
}

#[test]
fn agrank_assignment_is_feasible_and_cheaper_than_nrst() {
    for (label, problem) in problems() {
        let nrst = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let agrank = SystemState::new(
            problem.clone(),
            agrank_assignment(&problem, &AgRankConfig::paper(2)),
        );
        assert!(agrank.is_feasible(), "{label}: AgRank infeasible");
        assert!(
            agrank.total_traffic_mbps() <= nrst.total_traffic_mbps() + 1e-9,
            "{label}: AgRank traffic {} exceeds Nrst {}",
            agrank.total_traffic_mbps(),
            nrst.total_traffic_mbps()
        );
    }
}

#[test]
fn alg1_improves_every_workload_from_nrst() {
    for (label, problem) in problems() {
        let mut state = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let before = state.objective();
        let engine = Alg1Engine::new(Alg1Config::paper(400.0));
        let mut rng = StdRng::seed_from_u64(11);
        engine.run(&mut state, 300.0, &mut rng);
        assert!(state.is_feasible(), "{label}: infeasible after Alg. 1");
        assert!(
            state.objective() <= before,
            "{label}: {before} → {}",
            state.objective()
        );
    }
}

#[test]
fn alg1_approaches_brute_force_optimum_on_fig2() {
    let problem = Arc::new(UapProblem::new(
        cloud_vc::net::fig2::instance(),
        CostModel::paper_default(),
    ));
    let (_, phi_opt) = cloud_vc::algo::brute_force::optimal(&problem, 10_000)
        .expect("enumerable")
        .expect("feasible");
    // β = 400 at this energy scale is near-greedy: the chain converges to
    // a bounded neighborhood of the optimum (Eq. 12) but single-decision
    // energy barriers can hold *individual runs* above Φmin for a long
    // time — exactly the "may migrate to a worse assignment for some
    // time" behaviour the paper describes for session 9 in Fig. 7. The
    // claim is distributional, so assert over a panel of seeds: the
    // median run must land within 15% of the optimum.
    let engine = Alg1Engine::new(Alg1Config::paper(400.0));
    let seeds = [1u64, 3, 5, 7, 11, 13, 17];
    let mut finals: Vec<f64> = seeds
        .iter()
        .map(|&seed| {
            let mut state = SystemState::new(problem.clone(), nearest_assignment(&problem));
            let mut rng = StdRng::seed_from_u64(seed);
            engine.run(&mut state, 2_000.0, &mut rng);
            assert!(state.is_feasible(), "seed {seed}: infeasible after Alg. 1");
            state.objective()
        })
        .collect();
    finals.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));
    let median = finals[finals.len() / 2];
    assert!(
        median <= phi_opt * 1.15 + 1.0,
        "Alg.1 median over {seeds:?} ended at {median} vs optimum {phi_opt} (all: {finals:?})"
    );
    // An annealed schedule (explore first, tighten later) suppresses the
    // trapping: every seed must get within 10%.
    for seed in seeds {
        let mut annealed = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let mut rng = StdRng::seed_from_u64(seed);
        engine.run_annealed(&mut annealed, 2_000.0, 0.05, 400.0, &mut rng);
        assert!(
            annealed.objective() <= phi_opt * 1.10 + 1.0,
            "annealed Alg.1 (seed {seed}) ended at {} vs optimum {phi_opt}",
            annealed.objective()
        );
    }
}

#[test]
fn greedy_descent_and_alg1_agree_on_direction() {
    for (label, problem) in problems() {
        let mut greedy = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let result = cloud_vc::algo::local_search::greedy_descent(&mut greedy, 10_000);
        let mut markov = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let engine = Alg1Engine::new(Alg1Config::paper(1_000.0));
        let mut rng = StdRng::seed_from_u64(3);
        engine.run(&mut markov, 400.0, &mut rng);
        // Markov hopping should land within 25% of greedy descent (it can
        // also beat it by escaping local minima).
        assert!(
            markov.objective() <= result.objective * 1.25 + 10.0,
            "{label}: markov {} vs greedy {}",
            markov.objective(),
            result.objective
        );
    }
}

#[test]
fn full_simulation_pipeline_stays_consistent() {
    let problem = Arc::new(UapProblem::new(
        prototype_instance(&PrototypeConfig::default()),
        CostModel::paper_default(),
    ));
    let state = SystemState::new(problem.clone(), nearest_assignment(&problem));
    let report = ConferenceSim::new(state, SimConfig::paper_default(100.0, 1)).run();
    // Final sampled values equal the final state's readouts.
    assert!(
        (report.traffic.last_value().unwrap() - report.final_traffic_mbps).abs() < 1e-9
            || report.hops.iter().any(|h| h.time_s > 99.0),
        "sampled and final traffic disagree"
    );
    let mut final_state = report.final_state.clone();
    let drift = final_state.rebuild();
    assert!(drift < 1e-6, "incremental drift {drift}");
}
