//! Property tests of the causal lifecycle trace (`vc_obs::TraceRing`
//! as wired through the fleet): after *any* admit/hop/depart/fail
//! interleaving the Perfetto export must be well-formed JSON, every
//! per-session event chain must be causally ordered (global `seq` and
//! per-session `chain` both strictly increasing, no lifecycle activity
//! between a `Departed` and the session's next admission), and a
//! crash/recover twin must re-install journaled placements as
//! `RecoveryInstalled` — never by re-running admission search — while
//! matching the uncrashed twin's live counters.

use cloud_vc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_obs::{TraceEvent, TraceKind};
use vc_orchestrator::ReoptPool;

fn store_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp-persist")
        .join(format!("trace-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three capacity-limited agents, six 2-user sessions — contended
/// enough that admissions refuse and failures force evacuations, so
/// the trace exercises every event kind.
fn small_universe() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    for name in ["a", "b", "c"] {
        b.add_agent(
            AgentSpec::builder(name)
                .capacity(Capacity::new(90.0, 90.0, 5))
                .build(),
        );
    }
    for i in 0..6 {
        let s = b.add_session();
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        ..FleetConfig::default()
    }
}

/// One random fleet action. Departs deregister the WAIT timer like
/// production callers do, so no stale wakeup dispatches after the
/// session's `Departed` event.
#[derive(Debug, Clone, Copy)]
enum Action {
    Admit(u8),
    Depart(u8),
    Hop(u8),
    Fail(u8),
    Restore(u8),
    Tick,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    (0u8..6, 0u8..6).prop_map(|(which, i)| match which {
        0 => Action::Admit(i),
        1 => Action::Depart(i),
        2 => Action::Hop(i),
        3 => Action::Fail(i % 3),
        4 => Action::Restore(i % 3),
        _ => Action::Tick,
    })
}

fn drive(fleet: &Fleet, pool: &ReoptPool, actions: &[Action], rng_seed: u64) {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut t = 0.0f64;
    for &a in actions {
        match a {
            Action::Admit(i) => {
                let s = SessionId::from(i as usize);
                if fleet.admit(s).is_ok() {
                    pool.register(fleet, s, t);
                }
            }
            Action::Depart(i) => {
                let s = SessionId::from(i as usize);
                fleet.depart(s);
                pool.deregister(s);
            }
            Action::Hop(i) => {
                let _ = fleet.hop_session(SessionId::from(i as usize), &mut rng);
            }
            Action::Fail(a) => {
                fleet.fail_agent(AgentId::new(a as u32));
            }
            Action::Restore(a) => {
                fleet.restore_agent(AgentId::new(a as u32));
            }
            Action::Tick => {
                t += 1.0;
                pool.tick_until(fleet, t);
            }
        }
    }
}

/// A minimal JSON well-formedness scanner (the vendored serde is a
/// no-op, so validation is hand-rolled like the export itself):
/// balanced braces/brackets outside strings, proper string/escape
/// state, non-empty, and the nesting closes back to zero.
fn assert_well_formed_json(s: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in JSON export");
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string in JSON export");
    assert_eq!(depth, 0, "unbalanced JSON export");
}

/// `Departed` ends a lifecycle: the next event for that session must
/// open a new one (an admission attempt or a recovery install) — never
/// a hop, wakeup, or WAIT re-arm of the dead registration.
fn assert_chains_causal(events: &[TraceEvent]) {
    let mut last_seq = None;
    let mut per_session: HashMap<u32, Vec<&TraceEvent>> = HashMap::new();
    for e in events {
        if let Some(prev) = last_seq {
            assert!(e.seq > prev, "dump not strictly ordered by global seq");
        }
        last_seq = Some(e.seq);
        per_session.entry(e.session).or_default().push(e);
    }
    for (session, chain) in per_session {
        let mut departed = false;
        let mut last_chain = None;
        for e in chain {
            if let Some(prev) = last_chain {
                assert!(
                    e.chain > prev,
                    "session {session}: per-session chain counter not increasing"
                );
            }
            last_chain = Some(e.chain);
            if departed {
                assert!(
                    matches!(
                        e.kind,
                        TraceKind::AdmitAttempt | TraceKind::Refused | TraceKind::RecoveryInstalled
                    ),
                    "session {session}: {:?} after Departed without re-admission",
                    e.kind
                );
            }
            departed = match e.kind {
                TraceKind::Departed => true,
                TraceKind::Refused => departed,
                _ => false,
            };
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn perfetto_export_is_well_formed_and_chains_are_causal(
        actions in prop::collection::vec(action_strategy(), 10..60),
        seed in any::<u64>(),
    ) {
        let fleet = Fleet::new(small_universe(), fleet_config());
        let pool = ReoptPool::new(seed);
        drive(&fleet, &pool, &actions, seed);

        let json = fleet.obs().trace_chrome_json();
        assert_well_formed_json(&json);
        prop_assert!(json.contains("\"traceEvents\""));
        prop_assert!(json.contains("\"displayTimeUnit\""));

        let events = fleet.obs().trace().dump();
        assert_chains_causal(&events);
        // Something happened: the driver always admits at least
        // attempts, so a non-trivial action list leaves a trace.
        if actions.iter().any(|a| matches!(a, Action::Admit(_))) {
            prop_assert!(!events.is_empty());
        }
    }
}

/// Crash/recover twin: replay must *install* the journaled placements
/// (`RecoveryInstalled` per admitted session in the journal) and must
/// never re-run admission search (`AdmitAttempt`/`Admitted` absent
/// from the recovered plane's trace), while the recovered fleet's live
/// counters match an uncrashed twin bitwise.
#[test]
fn recovery_installs_without_re_searching() {
    let problem = small_universe();
    let dir = store_dir("recover-twin");
    let persist = PersistConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        stay_batch: 1,
    };
    let mut rng = StdRng::seed_from_u64(7);

    let churn = |fleet: &Fleet, rng: &mut StdRng| {
        for i in 0..6usize {
            let _ = fleet.admit(SessionId::from(i));
        }
        for i in 0..6usize {
            let _ = fleet.hop_session(SessionId::from(i), rng);
        }
        fleet.fail_agent(AgentId::new(1));
        fleet.depart(SessionId::new(1));
        let _ = fleet.admit(SessionId::new(1));
    };

    let crashed = Fleet::with_persistence(problem.clone(), fleet_config(), persist.clone())
        .expect("persistent fleet");
    churn(&crashed, &mut rng);
    let before = crashed.durable_state();
    drop(crashed); // no shutdown, no checkpoint

    let mut twin_rng = StdRng::seed_from_u64(7);
    let uncrashed = Fleet::new(problem.clone(), fleet_config());
    churn(&uncrashed, &mut twin_rng);

    let (recovered, report) =
        Fleet::recover(persist, problem, fleet_config()).expect("recovery succeeds");
    assert!(report.replayed > 0);
    assert_eq!(recovered.durable_state(), before);
    assert_eq!(recovered.live_count(), uncrashed.live_count());

    let events = recovered.obs().trace().dump();
    let installed = events
        .iter()
        .filter(|e| e.kind == TraceKind::RecoveryInstalled)
        .count();
    assert!(
        installed > 0,
        "replayed admissions must appear as RecoveryInstalled"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::AdmitAttempt | TraceKind::Admitted)),
        "recovery must install journaled placements, never re-run admission search"
    );
    assert_chains_causal(&events);
    let _ = std::fs::remove_dir_all(&dir);
}
