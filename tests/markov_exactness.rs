//! Integration of Alg. 1 with the exact Markov-approximation theory:
//! on an enumerable instance the hopping chain's long-run occupancy must
//! track the Gibbs target (Proposition 1 / Eq. 9), and the measured
//! optimality gaps must respect Eqs. (10)/(12).

use cloud_vc::algo::brute_force;
use cloud_vc::algo::markov::{Alg1Config, Alg1Engine, HopOutcome};
use cloud_vc::markov::mixing::total_variation;
use cloud_vc::markov::{expected_energy, gap_bound, gibbs, Ctmc};
use cloud_vc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

/// 2 users, 1 task, 2 agents → the 8-state cube of Fig. 3.
fn fig3_problem() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let r360 = ladder.by_name("360p").unwrap().id();
    let r480 = ladder.by_name("480p").unwrap().id();
    let r720 = ladder.by_name("720p").unwrap().id();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(AgentSpec::builder("l1").build());
    b.add_agent(AgentSpec::builder("l2").speed_factor(1.6).build());
    let s = b.add_session();
    b.add_user(s, r720, r360);
    b.add_user(s, r360, r480);
    b.symmetric_delays(|_, _| 35.0, |l, u| 12.0 + 9.0 * ((l + u) % 2) as f64);
    Arc::new(UapProblem::new(
        b.build().unwrap(),
        CostModel::paper_default(),
    ))
}

#[test]
fn exact_chain_stationary_is_gibbs_on_uap_graph() {
    let problem = fig3_problem();
    let (graph, _) = brute_force::feasible_graph(&problem, 1_000).unwrap();
    for beta in [0.005, 0.05] {
        let ctmc = Ctmc::new(graph.clone(), beta, 0.1);
        assert!(ctmc.detailed_balance_residual() < 1e-12);
        let tv = total_variation(&ctmc.stationary_exact(), &ctmc.target());
        assert!(tv < 1e-9, "β={beta}: TV {tv}");
    }
}

#[test]
fn alg1_occupancy_matches_kernel_stationary_and_tracks_gibbs() {
    // Run Alg. 1's own hop kernel (not the idealized CTMC). Its jump
    // probabilities are p(f→g) = w_g / Z_f with w_g = exp(½β(Φ_f−Φ_g))
    // and Z_f = 1 + Σ_g w_g (the "1" is the stay option), so detailed
    // balance gives the *exact* kernel stationary
    //     π_kernel(f) ∝ Z_f · exp(−βΦ_f),
    // a Z_f-distorted Gibbs law. We verify the empirical occupancy
    // against π_kernel tightly, and against the pure Gibbs target
    // loosely (the distortion is real but moderate).
    let problem = fig3_problem();
    let (graph, nodes) = brute_force::feasible_graph(&problem, 1_000).unwrap();
    // β scaled to the energy spread of this instance so the target is
    // non-degenerate (energies span ~400 units).
    let beta = 0.01;
    let engine = Alg1Engine::new(Alg1Config {
        beta,
        mean_countdown_s: 1.0,
        noise: None,
    });
    let mut state = SystemState::new(problem.clone(), nodes[0].clone());
    let mut rng = StdRng::seed_from_u64(77);
    let mut visits = vec![0.0; graph.len()];
    let session = SessionId::new(0);
    let hops = 120_000;
    for _ in 0..hops {
        engine.hop(&mut state, session, &mut rng);
        let idx = nodes
            .iter()
            .position(|a| a == state.assignment())
            .expect("state stays within the enumerated feasible set");
        visits[idx] += 1.0;
    }
    for v in &mut visits {
        *v /= hops as f64;
    }

    // Predicted kernel stationary (π ∝ Z_f·exp(−βΦ_f), see vc-markov::kernel).
    let kernel = cloud_vc::markov::hop_kernel_stationary(&graph, beta);
    let tv_kernel = total_variation(&visits, &kernel);
    assert!(
        tv_kernel < 0.02,
        "occupancy diverged from the predicted kernel stationary: TV = {tv_kernel:.4}"
    );

    // The kernel stationary is a bounded distortion of the Gibbs target;
    // a broken weight formula (e.g. uniform hopping) would give TV ≈ 0.5.
    let target = gibbs(graph.energies(), beta);
    let tv_gibbs = total_variation(&visits, &target);
    assert!(
        tv_gibbs < 0.25,
        "occupancy far from Gibbs: TV = {tv_gibbs:.4}"
    );
}

#[test]
fn measured_gap_respects_eq12_on_uap_graph() {
    let problem = fig3_problem();
    let (graph, _) = brute_force::feasible_graph(&problem, 1_000).unwrap();
    let (_, phi_min) = graph.min_energy();
    for beta in [0.001, 0.01, 0.1, 1.0] {
        let p = gibbs(graph.energies(), beta);
        let gap = expected_energy(&p, graph.energies()) - phi_min;
        assert!(gap >= -1e-9);
        // Eq. (12) with the paper's (U+θsum)·logL bound on log|F|.
        let bound = problem.log_state_space() / beta;
        assert!(gap <= bound + 1e-9, "β={beta}: gap {gap} > bound {bound}");
        // And the tighter ln|F| version from the framework.
        assert!(gap <= gap_bound(graph.len(), beta) + 1e-9);
    }
}

#[test]
fn hops_only_step_to_adjacent_states() {
    let problem = fig3_problem();
    let (_, nodes) = brute_force::feasible_graph(&problem, 1_000).unwrap();
    let engine = Alg1Engine::new(Alg1Config::paper(10.0));
    let mut state = SystemState::new(problem.clone(), nodes[0].clone());
    let mut rng = StdRng::seed_from_u64(9);
    let mut prev = state.assignment().clone();
    for _ in 0..500 {
        match engine.hop(&mut state, SessionId::new(0), &mut rng) {
            HopOutcome::Migrated(_) => {
                assert_eq!(
                    prev.hamming_distance(state.assignment()),
                    1,
                    "hop changed more than one decision"
                );
            }
            HopOutcome::Stayed => {
                assert_eq!(prev.hamming_distance(state.assignment()), 0);
            }
            HopOutcome::NoFeasibleMove => panic!("cube always has neighbors"),
        }
        prev = state.assignment().clone();
    }
}
