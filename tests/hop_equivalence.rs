//! Properties of the allocation-free hop path:
//!
//! * **incremental ≡ fresh** — a candidate evaluated through a reused
//!   [`EvalScratch`] + [`OverlayView`] is bitwise identical (asserted to
//!   `to_bits`, with a ≤1e-12 fallback documented by the issue) to a
//!   fresh full `evaluate_session` over a cloned-and-mutated
//!   assignment, across random instances and long random decision
//!   sequences (exercising scratch-reuse clearing and the commit swap);
//! * **concurrent hops conserve** — hops racing on OS threads under
//!   the sharded FREEZE leave `Fleet::audit` empty and the slot loads
//!   exactly re-evaluable.

use cloud_vc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::evaluate::evaluate_session;
use vc_core::{EvalScratch, SessionLoad, TaskId, UapProblem};
use vc_model::ReprId;
use vc_orchestrator::{Fleet, PlacementPolicy, ReoptPool};

/// A random universe: agents with tight-ish capacities, sessions of
/// mixed sizes and demands, pseudo-random delays.
#[derive(Debug, Clone)]
struct RandomUniverse {
    agents: Vec<(f64, u32)>,
    sessions: Vec<Vec<(u8, u8)>>,
    delay_seed: u64,
}

fn universe_strategy() -> impl Strategy<Value = RandomUniverse> {
    (
        prop::collection::vec((20.0f64..120.0, 1u32..8), 2..=4),
        prop::collection::vec(prop::collection::vec((0u8..4, 0u8..4), 2..=4), 2..=5),
        any::<u64>(),
    )
        .prop_map(|(agents, sessions, delay_seed)| RandomUniverse {
            agents,
            sessions,
            delay_seed,
        })
}

fn build_problem(spec: &RandomUniverse) -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let reprs: Vec<ReprId> = ladder.ids().collect();
    let mut b = InstanceBuilder::new(ladder);
    for (i, &(mbps, slots)) in spec.agents.iter().enumerate() {
        b.add_agent(
            AgentSpec::builder(format!("a{i}"))
                .capacity(Capacity::new(mbps, mbps, slots))
                .build(),
        );
    }
    for session in &spec.sessions {
        let sid = b.add_session();
        for &(up, down) in session {
            b.add_user(sid, reprs[up as usize % 4], reprs[down as usize % 4]);
        }
    }
    let seed = spec.delay_seed;
    b.symmetric_delays(
        |l, k| 15.0 + 9.0 * ((l as f64) - (k as f64)).abs(),
        move |l, u| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((l * 131 + u * 31) as u64);
            5.0 + (x % 700) as f64 / 10.0
        },
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

/// Decodes `(which, target)` bytes into a decision over the problem.
fn decode_decision(problem: &UapProblem, which: u8, target: u8) -> Decision {
    let nl = problem.instance().num_agents();
    let nu = problem.instance().num_users();
    let nt = problem.tasks().len();
    let agent = AgentId::from(target as usize % nl);
    let idx = which as usize;
    if nt > 0 && idx % 2 == 1 {
        Decision::Task(TaskId::from(idx / 2 % nt), agent)
    } else {
        Decision::User(UserId::new((idx / 2 % nu) as u32), agent)
    }
}

/// Asserts that every semantic field of the two loads is bitwise equal
/// (the issue's ≤1e-12 bound is the fallback contract; the
/// implementation achieves exact equality by accumulating in the same
/// order as the dense scan).
fn assert_loads_bitwise(scratch: &SessionLoad, fresh: &SessionLoad, ctx: &str) {
    let bitwise = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(
        bitwise(&scratch.download, &fresh.download),
        "{ctx}: download"
    );
    assert!(bitwise(&scratch.upload, &fresh.upload), "{ctx}: upload");
    assert!(bitwise(&scratch.ingress, &fresh.ingress), "{ctx}: ingress");
    assert_eq!(
        scratch.transcode_units, fresh.transcode_units,
        "{ctx}: transcode units"
    );
    assert!(
        bitwise(&scratch.user_delay, &fresh.user_delay),
        "{ctx}: user delay"
    );
    for (name, a, b) in [
        (
            "max_flow_delay",
            scratch.max_flow_delay,
            fresh.max_flow_delay,
        ),
        ("delay_cost", scratch.delay_cost, fresh.delay_cost),
        ("traffic_cost", scratch.traffic_cost, fresh.traffic_cost),
        (
            "transcode_cost",
            scratch.transcode_cost,
            fresh.transcode_cost,
        ),
        ("phi", scratch.phi, fresh.phi),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: {name} differs: {a} vs {b} (|Δ| = {})",
            (a - b).abs()
        );
        assert!((a - b).abs() <= 1e-12, "{ctx}: {name} beyond 1e-12");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A reused scratch evaluating overlay candidates matches a fresh
    /// full evaluation of the mutated assignment, at every step of a
    /// random decision walk (committing a subset of the candidates so
    /// the scratch sees swapped-in loads, partially-filled buffers, and
    /// every other reuse hazard).
    #[test]
    fn incremental_candidate_equals_fresh_evaluation(
        spec in universe_strategy(),
        walk in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..=60),
    ) {
        let problem = build_problem(&spec);
        let mut state = SystemState::new(
            problem.clone(),
            Assignment::all_to_agent(&problem, AgentId::new(0)),
        );
        let mut scratch = EvalScratch::new();
        for (step, &(which, target, commit)) in walk.iter().enumerate() {
            let decision = decode_decision(&problem, which, target);
            let s = state.session_of(decision);
            let verdict = state.candidate_into(decision, &mut scratch);

            // Fresh reference: clone the assignment, apply, evaluate.
            let mut asg = state.assignment().clone();
            asg.apply(decision);
            let fresh = evaluate_session(&problem, &asg, s);
            assert_loads_bitwise(scratch.load(), &fresh, &format!("step {step}"));

            if commit && verdict.is_ok() {
                state.commit_scratch(decision, &mut scratch);
                // The committed load must be what the state now reports.
                let stored = state.session_load(s);
                prop_assert!((stored.phi - fresh.phi).abs() <= 1e-12);
            }
        }
        // After the walk, a full rebuild agrees with the incrementally
        // maintained totals.
        let drift = state.rebuild();
        prop_assert!(drift < 1e-9, "totals drifted by {drift}");
    }

    /// `candidate()` (internal scratch) and `candidate_into` (external
    /// scratch) agree with each other and leave the state untouched.
    #[test]
    fn candidate_paths_agree(
        spec in universe_strategy(),
        probes in prop::collection::vec((any::<u8>(), any::<u8>()), 1..=20),
    ) {
        let problem = build_problem(&spec);
        let state = SystemState::new(
            problem.clone(),
            Assignment::all_to_agent(&problem, AgentId::new(0)),
        );
        let before = state.assignment().clone();
        let mut scratch = EvalScratch::new();
        for &(which, target) in &probes {
            let decision = decode_decision(&problem, which, target);
            let (load, verdict) = state.candidate(decision);
            let verdict2 = state.candidate_into(decision, &mut scratch);
            prop_assert_eq!(verdict.is_ok(), verdict2.is_ok());
            assert_loads_bitwise(scratch.load(), &load, "candidate vs candidate_into");
        }
        prop_assert_eq!(state.assignment(), &before);
    }
}

/// Hops racing on 4 OS threads under the sharded FREEZE must leave the
/// ledger conservation-clean and every slot load exactly re-evaluable.
#[test]
fn concurrent_hops_leave_the_fleet_conserved() {
    let spec = RandomUniverse {
        agents: vec![(600.0, 40), (600.0, 40), (600.0, 40), (600.0, 40)],
        sessions: vec![vec![(3, 0), (0, 0), (1, 1)]; 12],
        delay_seed: 9,
    };
    let problem = build_problem(&spec);
    let num_sessions = problem.instance().num_sessions();
    let fleet = Arc::new(Fleet::new(
        problem,
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
            alg1: Alg1Config {
                mean_countdown_s: 0.5,
                ..Alg1Config::paper(200.0)
            },
            ledger_shards: 4,
            ..FleetConfig::default()
        },
    ));
    let pool = ReoptPool::new(17);
    for i in 0..num_sessions {
        fleet
            .admit(SessionId::from(i))
            .expect("roomy universe admits");
        pool.register(&fleet, SessionId::from(i), 0.0);
    }
    let hops = pool.run_wall(&fleet, std::time::Duration::from_millis(250), 4);
    assert!(hops > 0, "threaded pool never hopped");
    let audit = fleet.audit();
    assert!(audit.is_empty(), "conservation broke: {audit:?}");
    let drift = fleet.load_drift();
    assert!(drift < 1e-9, "slot loads drifted by {drift}");
    assert_eq!(fleet.live_count(), num_sessions);
}

/// Direct racing on `hop_session_with` (no pool pacing): every thread
/// hammers a disjoint-then-overlapping session range as fast as it can;
/// conservation must still hold and every hop outcome must be coherent.
#[test]
fn unpaced_concurrent_hops_conserve() {
    let spec = RandomUniverse {
        agents: vec![(120.0, 6), (120.0, 6), (120.0, 6)],
        sessions: vec![vec![(3, 0), (1, 1)]; 8],
        delay_seed: 4,
    };
    let problem = build_problem(&spec);
    let num_sessions = problem.instance().num_sessions();
    let fleet = Arc::new(Fleet::new(
        problem,
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
            alg1: Alg1Config::paper(100.0),
            ledger_shards: 3,
            ..FleetConfig::default()
        },
    ));
    for i in 0..num_sessions {
        let _ = fleet.admit(SessionId::from(i));
    }
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let fleet = Arc::clone(&fleet);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                let mut scratch = vc_orchestrator::FleetHopScratch::new();
                for round in 0..200usize {
                    let s = SessionId::from((round + t as usize) % num_sessions);
                    let _ = fleet.hop_session_with(s, &mut rng, &mut scratch);
                }
            });
        }
    });
    let audit = fleet.audit();
    assert!(audit.is_empty(), "conservation broke: {audit:?}");
    assert!(fleet.load_drift() < 1e-9);
}
