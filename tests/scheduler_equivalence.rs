//! Sharded timer-wheel scheduler equivalence.
//!
//! The wheel replaced the global `Mutex<BinaryHeap>` schedule; these
//! tests pin down that the replacement is *behaviorally invisible*:
//!
//! * **wheel ≡ reference heap** — under random
//!   register/depart/re-register/pop interleavings (dues spanning
//!   collision-dense ranges, wheel-span boundaries, and multi-block
//!   horizons), a [`ShardedWheel`] dispatches the exact
//!   `(due_us, session, epoch, draws)` sequence of a reference model
//!   that replicates the old heap semantics — at several shard counts;
//! * **shard count is invisible** — twin fleets driven through the
//!   same displacement-heavy fault storm by a 1-shard and a
//!   many-shard pool end bitwise identical (placements, Φ, counters,
//!   re-admission schedule, timer state, hop count);
//! * **crash/recover parity holds with timers and readmit backoffs in
//!   flight** — a mid-storm crash with sessions waiting in the
//!   re-admission queue recovers onto a pool with a *different* shard
//!   count and still finishes bitwise identical to the uncrashed twin.

use cloud_vc::persist::FsyncPolicy;
use cloud_vc::prelude::*;
use proptest::prelude::*;
use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_chaos::{FaultKind, FaultPlan, StormConfig};
use vc_core::UapProblem;
use vc_model::SessionId;
use vc_orchestrator::sched::SPAN_US;
use vc_orchestrator::{AdmitOutcome, ReadmitConfig, ReoptPool, ShardedWheel, TimerEntry};

const POOL_SEED: u64 = 2015;

// ---------------------------------------------------------------------
// Part 1: wheel vs. reference heap under random interleavings.
// ---------------------------------------------------------------------

/// The old scheduler, verbatim in miniature: one min-heap of
/// `(due, session, epoch)` with lazy discard of stale entries, plus
/// the per-session timer map.
#[derive(Default)]
struct ReferenceHeap {
    due: BinaryHeap<std::cmp::Reverse<(u64, SessionId, u64)>>,
    timers: HashMap<SessionId, (u64, u64, u64, bool)>, // epoch, draws, due, active
}

impl ReferenceHeap {
    fn register(&mut self, s: SessionId, due: u64) -> u64 {
        let epoch = self.timers.get(&s).map_or(0, |t| t.0) + 1;
        self.timers.insert(s, (epoch, 0, due, true));
        self.due.push(std::cmp::Reverse((due, s, epoch)));
        epoch
    }

    fn deregister(&mut self, s: SessionId) {
        if let Some(t) = self.timers.get_mut(&s) {
            t.3 = false;
        }
    }

    fn pop(&mut self, horizon: u64) -> Option<(u64, SessionId, u64, u64)> {
        loop {
            let &std::cmp::Reverse((due, s, epoch)) = self.due.peek()?;
            if due > horizon {
                return None;
            }
            self.due.pop();
            match self.timers.get(&s) {
                Some(&(e, draws, _, true)) if e == epoch => return Some((due, s, epoch, draws)),
                _ => continue,
            }
        }
    }

    fn complete(&mut self, s: SessionId, epoch: u64, next: Option<(u64, u64)>) {
        let Some(t) = self.timers.get_mut(&s) else {
            return;
        };
        if !t.3 || t.0 != epoch {
            return;
        }
        match next {
            Some((due, draws)) => {
                t.1 = draws;
                t.2 = due;
                self.due.push(std::cmp::Reverse((due, s, epoch)));
            }
            None => t.3 = false,
        }
    }

    fn timer_state(&self) -> Vec<TimerEntry> {
        let mut out: Vec<TimerEntry> = self
            .timers
            .iter()
            .map(|(&session, &(epoch, draws, due_us, active))| TimerEntry {
                session,
                due_us,
                epoch,
                draws,
                active,
            })
            .collect();
        out.sort_unstable_by_key(|e| e.session);
        out
    }
}

#[derive(Debug, Clone)]
enum Op {
    Register { s: usize, due: u64 },
    Deregister { s: usize },
    PopReschedule { horizon: u64, wait: u64 },
    PopRetire { horizon: u64 },
}

/// Dues that stress every structure: dense collisions (level-0 slot
/// sharing), mid-wheel values, the wheel-span boundary (overflow
/// promotion + block jumps), and multi-block far futures.
fn pick_due(mode: u8, raw: u64) -> u64 {
    match mode {
        0 => raw % 200,
        1 => raw % 100_000,
        2 => SPAN_US - 128 + raw % 256,
        _ => raw % (3 * SPAN_US),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0usize..24, 0u8..4, any::<u64>(), 0u64..100_000).prop_map(
        |(kind, s, mode, raw, wait)| match kind {
            0 => Op::Register {
                s,
                due: pick_due(mode, raw),
            },
            1 => Op::Deregister { s },
            2 => Op::PopReschedule {
                horizon: pick_due(mode, raw),
                wait,
            },
            _ => Op::PopRetire {
                horizon: pick_due(mode, raw),
            },
        },
    )
}

/// Runs one op sequence against a wheel with `shards` shards and the
/// reference heap in lockstep, asserting every pop and the final state
/// agree.
fn check_against_reference(ops: &[Op], shards: usize) {
    let wheel = ShardedWheel::with_shards(shards);
    let mut heap = ReferenceHeap::default();
    for op in ops {
        match *op {
            Op::Register { s, due } => {
                let s = SessionId::from(s);
                let (we, _) = wheel.register_with(s, |_| due, None);
                let he = heap.register(s, due);
                assert_eq!(we, he, "epoch sequence diverged for {s:?}");
            }
            Op::Deregister { s } => {
                let s = SessionId::from(s);
                wheel.deregister(s);
                heap.deregister(s);
            }
            Op::PopReschedule { horizon, wait } => {
                let w = wheel.pop_due(horizon, None);
                let h = heap.pop(horizon);
                assert_eq!(
                    w.map(|p| (p.due_us, p.session, p.epoch, p.draws)),
                    h,
                    "pop(horizon={horizon}) diverged"
                );
                if let Some(p) = w {
                    let next = Some((p.due_us + wait, p.draws + 1));
                    wheel.complete(p.session, p.epoch, next, None);
                    heap.complete(p.session, p.epoch, next);
                }
            }
            Op::PopRetire { horizon } => {
                let w = wheel.pop_due(horizon, None);
                let h = heap.pop(horizon);
                assert_eq!(
                    w.map(|p| (p.due_us, p.session, p.epoch, p.draws)),
                    h,
                    "pop(horizon={horizon}) diverged"
                );
                if let Some(p) = w {
                    wheel.complete(p.session, p.epoch, None, None);
                    heap.complete(p.session, p.epoch, None);
                }
            }
        }
        assert_eq!(
            wheel.peek(None),
            heap.clone_peek(),
            "peek diverged after {op:?}"
        );
    }
    // Drain whatever is left, in full, and compare the tails.
    loop {
        let w = wheel.pop_due(u64::MAX, None);
        let h = heap.pop(u64::MAX);
        assert_eq!(
            w.map(|p| (p.due_us, p.session, p.epoch, p.draws)),
            h,
            "drain diverged"
        );
        let Some(p) = w else { break };
        wheel.complete(p.session, p.epoch, None, None);
        heap.complete(p.session, p.epoch, None);
    }
    assert_eq!(wheel.timer_state(), heap.timer_state());
    assert_eq!(
        wheel.stale_entries(),
        0,
        "drain reclaimed every stale entry"
    );
    assert_eq!(wheel.shard_depths().iter().sum::<u64>(), 0);
}

impl ReferenceHeap {
    /// Non-destructive earliest valid `(due, session)` — the heap
    /// analogue of `ShardedWheel::peek` (full filter; it's a test).
    fn clone_peek(&self) -> Option<(u64, SessionId)> {
        self.due
            .iter()
            .filter(|std::cmp::Reverse((_, s, epoch))| {
                self.timers.get(s).is_some_and(|t| t.3 && t.0 == *epoch)
            })
            .map(|std::cmp::Reverse((due, s, _))| (*due, *s))
            .min()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole equivalence: dispatch order, epochs, draws, final
    /// timer state, and peeks all match the reference heap under
    /// random interleavings — with 1, 4, and 64 shards.
    #[test]
    fn wheel_dispatch_matches_reference_heap(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        for shards in [1usize, 4, 64] {
            check_against_reference(&ops, shards);
        }
    }
}

// ---------------------------------------------------------------------
// Part 2: pool-level shard invariance and crash/recover parity,
// with re-admission backoffs in flight.
// ---------------------------------------------------------------------

fn store_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp-sched-equiv")
        .join(format!("it-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Agents sized so the fleet fits at full strength but a failed
/// agent's load displaces sessions into the re-admission queue.
fn storm_universe() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    for name in ["a", "b", "c"] {
        b.add_agent(
            AgentSpec::builder(name)
                .capacity(Capacity::new(60.0, 60.0, 1))
                .build(),
        );
    }
    for i in 0..6 {
        let s = b.add_session();
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        readmit: Some(ReadmitConfig {
            seed: POOL_SEED,
            cap_backoff_s: 4.0,
            max_attempts: 32,
            ..ReadmitConfig::default()
        }),
        ..FleetConfig::default()
    }
}

fn storm() -> FaultPlan {
    FaultPlan::storm(&StormConfig {
        seed: 11,
        agents: vec![0, 1, 2],
        start_s: 2.0,
        period_s: 6.0,
        epochs: 4,
    })
}

fn warm_up(fleet: &Fleet, pool: &ReoptPool, sessions: usize) {
    for i in 0..sessions {
        if matches!(
            fleet.admit_or_queue(SessionId::from(i)),
            AdmitOutcome::Admitted
        ) {
            pool.register(fleet, SessionId::from(i), 0.0);
        }
    }
}

fn drive_window(fleet: &Fleet, pool: &ReoptPool, plan: &FaultPlan, from_us: u64, to_us: u64) {
    for ev in plan.window(from_us, to_us) {
        pool.tick_until(fleet, ev.t_us as f64 / 1e6);
        fleet.set_clock_us(ev.t_us);
        match ev.kind {
            FaultKind::FailAgent(a) => {
                fleet.fail_agent(AgentId::new(a));
            }
            FaultKind::RestoreAgent(a) => {
                fleet.restore_agent(AgentId::new(a));
            }
        }
    }
    pool.tick_until(fleet, to_us as f64 / 1e6);
    fleet.set_clock_us(to_us);
}

/// The shard count is a pure contention knob: twin fleets driven
/// through the same displacement storm by a 1-shard and a 16-shard
/// pool end bitwise identical — state, Φ, re-admission schedule, timer
/// state, and hop count.
#[test]
fn shard_count_is_invisible_to_a_storm_drive() {
    let problem = storm_universe();
    let sessions = problem.instance().num_sessions();
    let plan = storm();
    let end_us = plan.end_us() + 60_000_000;

    let run = |shards: usize| {
        let fleet = Fleet::new(problem.clone(), fleet_config());
        let pool = ReoptPool::with_shards(POOL_SEED, shards);
        warm_up(&fleet, &pool, sessions);
        drive_window(&fleet, &pool, &plan, 0, end_us);
        assert!(fleet.audit().is_empty());
        (
            fleet.durable_state(),
            fleet.readmit_entries(),
            pool.timer_state(),
            pool.hops_executed(),
            fleet.objective().to_bits(),
        )
    };

    let narrow = run(1);
    let wide = run(16);
    assert_eq!(narrow.0, wide.0, "fleet state diverged across shard counts");
    assert_eq!(narrow.1, wide.1, "re-admission schedule diverged");
    assert_eq!(narrow.2, wide.2, "timer state diverged");
    assert_eq!(narrow.3, wide.3, "hop count diverged");
    assert_eq!(narrow.4, wide.4, "Φ diverged beyond bitwise");
}

/// Crash mid-storm — WAIT timers pending *and* sessions waiting in the
/// re-admission queue — recover onto a pool with a different shard
/// count, finish the storm: bitwise identical to the uncrashed twin.
#[test]
fn crash_recovery_with_readmits_in_flight_is_shard_count_independent() {
    let problem = storm_universe();
    let sessions = problem.instance().num_sessions();
    let plan = storm();
    let end_us = plan.end_us() + 60_000_000;

    // Find a cut that catches displaced sessions mid-backoff.
    let probe = Fleet::new(problem.clone(), fleet_config());
    let probe_pool = ReoptPool::new(POOL_SEED);
    warm_up(&probe, &probe_pool, sessions);
    let mut cut_us = None;
    let mut prev = 0;
    for ev in plan.events() {
        drive_window(&probe, &probe_pool, &plan, prev, ev.t_us + 1);
        prev = ev.t_us + 1;
        if probe.counters().displaced.load(Ordering::Relaxed) >= 1 && probe.readmit_queue_len() > 0
        {
            cut_us = Some(ev.t_us + 100_000);
            break;
        }
    }
    let cut_us = cut_us.expect("storm never displaced into the queue");

    let dir = store_dir("shard-twin");
    let persist = PersistConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        stay_batch: 1,
    };
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist.clone())
        .expect("persistent fleet");
    let pool = ReoptPool::with_shards(POOL_SEED, 4);
    let control = Fleet::new(problem.clone(), fleet_config());
    let control_pool = ReoptPool::with_shards(POOL_SEED, 1);
    for (f, p) in [(&fleet, &pool), (&control, &control_pool)] {
        warm_up(f, p, sessions);
        drive_window(f, p, &plan, 0, cut_us);
    }
    assert!(fleet.readmit_queue_len() >= 1, "queue empty at the cut");
    fleet.journal_timers(&pool); // durability boundary
    drop(fleet); // crash mid-storm

    let (recovered, report) = Fleet::recover(persist, problem, fleet_config()).expect("recovery");
    // Recover onto yet another shard count: the journaled TimerEntry
    // records are scheduler-shape-agnostic.
    let restored = ReoptPool::with_shards(POOL_SEED, 16);
    restored.restore_timers(&recovered, &report.timers);
    restored.ensure_registered(&recovered, cut_us as f64 / 1e6);
    recovered.set_clock_us(cut_us);
    // Displaced sessions sit in the queue with their worker retirement
    // pending: the uncrashed pool retires the timer lazily at its next
    // wakeup, while restore gates on liveness up front. Normalize that
    // one flag; every scheduling field must already be bitwise equal.
    let lazily_retired = |entries: Vec<TimerEntry>| -> Vec<TimerEntry> {
        entries
            .into_iter()
            .map(|mut e| {
                e.active = e.active && control.is_live(e.session);
                e
            })
            .collect()
    };
    assert_eq!(
        restored.timer_state(),
        lazily_retired(control_pool.timer_state()),
        "restored timers are not the uncrashed twin's"
    );

    for (f, p) in [(&recovered, &restored), (&control, &control_pool)] {
        drive_window(f, p, &plan, cut_us, end_us);
    }
    recovered.record_timers(&restored);
    control.record_timers(&control_pool);
    assert_eq!(
        restored.timer_state(),
        control_pool.timer_state(),
        "timer state diverged after recovery"
    );
    assert_eq!(
        recovered.readmit_entries(),
        control.readmit_entries(),
        "retry schedules diverged after recovery"
    );
    assert_eq!(
        recovered.durable_state(),
        control.durable_state(),
        "crashed/recovered run diverged from the uncrashed twin"
    );
    assert_eq!(
        recovered.objective().to_bits(),
        control.objective().to_bits()
    );
    assert!(recovered.audit().is_empty());
    assert!(control.audit().is_empty());
}
