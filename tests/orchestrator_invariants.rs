//! Property tests of the orchestrator's conservation invariants: after
//! *any* sequence of admits, departs, agent failures/recoveries and
//! hops, the sharded ledger and the authoritative state agree exactly —
//! per-agent booked capacity equals the sum of live sessions' loads,
//! departures release exactly what was reserved, and capacity is never
//! exceeded unless a failure forced an evacuation overshoot.

use cloud_vc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_orchestrator::{Fleet, PlacementPolicy};

/// A small capacity-limited universe: 3 agents, 5 sessions of 2–3 users.
#[derive(Debug, Clone)]
struct RandomUniverse {
    /// Per-agent (bandwidth Mbps, transcode slots).
    agents: Vec<(f64, u32)>,
    /// Per-session user demands as (upstream idx, downstream idx).
    sessions: Vec<Vec<(u8, u8)>>,
    delay_seed: u64,
}

fn universe_strategy() -> impl Strategy<Value = RandomUniverse> {
    (
        prop::collection::vec((15.0f64..80.0, 1u32..6), 3),
        prop::collection::vec(prop::collection::vec((0u8..4, 0u8..4), 2..=3), 5),
        any::<u64>(),
    )
        .prop_map(|(agents, sessions, delay_seed)| RandomUniverse {
            agents,
            sessions,
            delay_seed,
        })
}

fn build_fleet(spec: &RandomUniverse) -> Fleet {
    let ladder = ReprLadder::standard_four();
    let reprs: Vec<ReprId> = ladder.ids().collect();
    let mut b = InstanceBuilder::new(ladder);
    for (i, &(mbps, slots)) in spec.agents.iter().enumerate() {
        b.add_agent(
            AgentSpec::builder(format!("a{i}"))
                .capacity(Capacity::new(mbps, mbps, slots))
                .build(),
        );
    }
    for session in &spec.sessions {
        let sid = b.add_session();
        for &(up, down) in session {
            b.add_user(sid, reprs[up as usize % 4], reprs[down as usize % 4]);
        }
    }
    let seed = spec.delay_seed;
    b.symmetric_delays(
        |l, k| 20.0 + 12.0 * ((l as f64) - (k as f64)).abs(),
        move |l, u| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((l * 131 + u * 31) as u64);
            5.0 + (x % 900) as f64 / 10.0
        },
    );
    b.d_max_ms(10_000.0);
    let problem = Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ));
    Fleet::new(
        problem,
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
            alg1: Alg1Config::paper(400.0),
            ledger_shards: 2,
            ..FleetConfig::default()
        },
    )
}

/// Event alphabet, decoded from a byte pair.
fn run_events(fleet: &Fleet, events: &[(u8, u8)]) -> usize {
    let num_sessions = 5usize;
    let num_agents = 3usize;
    let mut rng = StdRng::seed_from_u64(99);
    let mut forced_total = 0;
    for &(op, arg) in events {
        match op % 5 {
            0 => {
                // Admit (errors — already live, no capacity — are fine).
                let _ = fleet.admit(SessionId::from(arg as usize % num_sessions));
            }
            1 => {
                let s = SessionId::from(arg as usize % num_sessions);
                let held_before = fleet.ledger().hold_of(s);
                let released = fleet.depart(s);
                // Departure returns exactly what was booked.
                assert_eq!(held_before, released, "depart released a different hold");
            }
            2 => {
                let (_, forced) = fleet.fail_agent(AgentId::from(arg as usize % num_agents));
                forced_total += forced;
            }
            3 => {
                let _ = fleet.restore_agent(AgentId::from(arg as usize % num_agents));
            }
            _ => {
                let _ = fleet.hop_session(SessionId::from(arg as usize % num_sessions), &mut rng);
            }
        }
        let audit = fleet.audit();
        assert!(
            audit.is_empty(),
            "conservation broke after {op}/{arg}: {audit:?}"
        );
    }
    forced_total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ledger reservations equal live session loads after any sequence.
    #[test]
    fn ledger_conserves_under_any_event_sequence(
        spec in universe_strategy(),
        events in prop::collection::vec((any::<u8>(), any::<u8>()), 1..=40),
    ) {
        let fleet = build_fleet(&spec);
        let forced = run_events(&fleet, &events);
        // Capacity is respected exactly unless a failure forced an
        // evacuation overshoot (service continuity over purity).
        if forced == 0 {
            for util in fleet.ledger().utilization() {
                prop_assert!(
                    util.max_fraction <= 1.0 + 1e-6,
                    "agent {} over capacity ({:.3}) without forced moves",
                    util.agent,
                    util.max_fraction
                );
            }
        }
        // Slot loads agree with a from-scratch evaluation (the standing
        // check that the allocation-free scratch path stays exact).
        let drift = fleet.load_drift();
        prop_assert!(drift < 1e-6, "state drifted by {drift}");
    }

    /// Departing everything empties the ledger completely.
    #[test]
    fn departing_all_sessions_zeroes_the_ledger(
        spec in universe_strategy(),
        events in prop::collection::vec((any::<u8>(), any::<u8>()), 1..=30),
    ) {
        let fleet = build_fleet(&spec);
        run_events(&fleet, &events);
        for i in 0..5usize {
            fleet.depart(SessionId::from(i));
        }
        prop_assert_eq!(fleet.ledger().live_sessions(), 0);
        prop_assert_eq!(fleet.live_count(), 0);
        for util in fleet.ledger().utilization() {
            prop_assert!(util.download_mbps.abs() < 1e-6, "download leaked");
            prop_assert!(util.upload_mbps.abs() < 1e-6, "upload leaked");
            prop_assert_eq!(util.transcode_units, 0, "slots leaked");
        }
        prop_assert!(fleet.audit().is_empty());
    }

    /// Admit → depart with no interference is a perfect round trip.
    #[test]
    fn admit_depart_round_trip_is_exact(
        spec in universe_strategy(),
        order in prop::collection::vec(0usize..5, 1..=5),
    ) {
        let fleet = build_fleet(&spec);
        let mut admitted = Vec::new();
        for &i in &order {
            if fleet.admit(SessionId::from(i)).is_ok() {
                admitted.push(SessionId::from(i));
            }
        }
        for &s in &admitted {
            let hold = fleet.depart(s).expect("admitted session is live");
            prop_assert!(!hold.is_empty(), "live session reserved nothing");
        }
        prop_assert_eq!(fleet.ledger().live_sessions(), 0);
        prop_assert!(fleet.audit().is_empty());
    }
}
