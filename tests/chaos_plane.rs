//! Chaos-plane acceptance: deterministic fault storms and injected
//! storage faults against the persistent fleet.
//!
//! * a mid-storm crash/recovery is **bitwise** the uncrashed twin —
//!   placements, Φ, counters, and the re-admission queue (entries,
//!   epochs, backoff schedule) all ride the format-v5 journal;
//! * the journal of a storm-laden, displacement-heavy history is cut
//!   at every byte offset and every prefix recovers
//!   conservation-clean;
//! * injected `fsync` faults degrade the journal to buffered mode
//!   instead of failing fleet operations, and healing restores full
//!   durability with no record loss;
//! * after the storm passes, the self-healing queue drains and the
//!   fleet returns to its fault-free size;
//! * `backoff_us` is a pure, bounded function of
//!   `(seed, session, epoch, attempt)`.

use cloud_vc::persist::FsyncPolicy;
use cloud_vc::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_chaos::{FaultKind, FaultPlan, FaultyVfs, StorageFault, StorageFaultKind, StormConfig};
use vc_core::UapProblem;
use vc_orchestrator::{backoff_us, AdmitOutcome, ReadmitConfig, ReoptPool};
use vc_persist::journal::RetryPolicy;

const POOL_SEED: u64 = 2015;

fn store_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp-chaos-plane")
        .join(format!("it-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three agents sized so the fleet fits comfortably at full strength
/// but **cannot** absorb a failed agent's load on the survivors:
/// evacuations run out of feasible targets and displace whole sessions
/// into the re-admission queue.
fn chaos_universe() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    for name in ["a", "b", "c"] {
        b.add_agent(
            AgentSpec::builder(name)
                .capacity(Capacity::new(60.0, 60.0, 1))
                .build(),
        );
    }
    for i in 0..6 {
        let s = b.add_session();
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        readmit: Some(ReadmitConfig {
            seed: POOL_SEED,
            // Dense retries with a deep budget: storms in these tests
            // flap agents every few seconds, and the drain assertions
            // want the queue to resolve (heal or drop) within the
            // virtual horizon.
            cap_backoff_s: 4.0,
            max_attempts: 32,
            ..ReadmitConfig::default()
        }),
        ..FleetConfig::default()
    }
}

fn persist_config(dir: &std::path::Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        stay_batch: 1,
    }
}

/// A four-epoch crash/flap/recover storm over all three agents.
fn storm() -> FaultPlan {
    FaultPlan::storm(&StormConfig {
        seed: 11,
        agents: vec![0, 1, 2],
        start_s: 2.0,
        period_s: 6.0,
        epochs: 4,
    })
}

/// Admits every session (queueing capacity refusals) and registers a
/// WAIT worker for each admitted one.
fn warm_up(fleet: &Fleet, pool: &ReoptPool, sessions: usize) {
    for i in 0..sessions {
        if matches!(
            fleet.admit_or_queue(SessionId::from(i)),
            AdmitOutcome::Admitted
        ) {
            pool.register(fleet, SessionId::from(i), 0.0);
        }
    }
}

/// Applies the plan's events in `[from_us, to_us)`, interleaving WAIT
/// hops and due re-admission retries through `ReoptPool::tick_until`.
fn drive_window(fleet: &Fleet, pool: &ReoptPool, plan: &FaultPlan, from_us: u64, to_us: u64) {
    for ev in plan.window(from_us, to_us) {
        pool.tick_until(fleet, ev.t_us as f64 / 1e6);
        fleet.set_clock_us(ev.t_us);
        match ev.kind {
            FaultKind::FailAgent(a) => {
                fleet.fail_agent(AgentId::new(a));
            }
            FaultKind::RestoreAgent(a) => {
                fleet.restore_agent(AgentId::new(a));
            }
        }
    }
    pool.tick_until(fleet, to_us as f64 / 1e6);
    fleet.set_clock_us(to_us);
}

/// The chaos-relevant counter slice (the full counter set rides
/// `durable_state`; this is the human-readable failure message).
fn chaos_counters(fleet: &Fleet) -> [usize; 6] {
    let c = fleet.counters();
    [
        c.evacuations.load(Ordering::Relaxed),
        c.forced_moves.load(Ordering::Relaxed),
        c.displaced.load(Ordering::Relaxed),
        c.readmit_enqueued.load(Ordering::Relaxed),
        c.readmit_admitted.load(Ordering::Relaxed),
        c.readmit_dropped.load(Ordering::Relaxed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backoff draws are pure in their coordinates and always land in
    /// `[base, cap]` — the property that lets replay reconstruct a
    /// retry schedule without journaling a single draw.
    #[test]
    fn backoff_is_pure_and_bounded(
        seed in any::<u64>(),
        s in 0u32..10_000,
        epoch in 0u64..1_000,
        attempt in 0u32..12,
    ) {
        let cfg = ReadmitConfig { seed, ..ReadmitConfig::default() };
        let a = backoff_us(&cfg, SessionId::new(s), epoch, attempt);
        let b = backoff_us(&cfg, SessionId::new(s), epoch, attempt);
        prop_assert_eq!(a, b, "backoff is not deterministic");
        let base = (cfg.base_backoff_s * 1e6) as u64;
        let cap = (cfg.cap_backoff_s * 1e6) as u64;
        prop_assert!(a >= base && a <= cap, "draw {} outside [{}, {}]", a, base, cap);
        // Attempt 0 waits exactly the floor: the first retry's timing
        // is load-independent.
        if attempt == 0 {
            prop_assert_eq!(a, base);
        }
    }
}

/// The tentpole acceptance: kill the persistent fleet in the middle of
/// a displacement-heavy storm — with sessions *in* the re-admission
/// queue — recover, and finish the storm. The result must be bitwise
/// identical (placements, Φ, counters, queue entries and their backoff
/// schedule) to an uncrashed twin driven over the same plan.
#[test]
fn mid_storm_crash_recovery_matches_uncrashed_twin() {
    let problem = chaos_universe();
    let sessions = problem.instance().num_sessions();
    let plan = storm();
    let end_us = plan.end_us() + 60_000_000;

    // Probe an ephemeral twin for a cut right after a *displacing*
    // crash, before the first retry (base backoff 0.5 s) can drain the
    // queue: the crash/recover cut must catch displaced sessions
    // mid-flight.
    let probe = Fleet::new(problem.clone(), fleet_config());
    let probe_pool = ReoptPool::new(POOL_SEED);
    warm_up(&probe, &probe_pool, sessions);
    let mut cut_us = None;
    let mut prev = 0;
    for ev in plan.events() {
        drive_window(&probe, &probe_pool, &plan, prev, ev.t_us + 1);
        prev = ev.t_us + 1;
        if probe.counters().displaced.load(Ordering::Relaxed) >= 1 && probe.readmit_queue_len() > 0
        {
            cut_us = Some(ev.t_us + 100_000);
            break;
        }
    }
    let cut_us = cut_us.expect("storm never displaced into the queue — universe not tight enough");

    let dir = store_dir("twin");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&dir))
        .expect("persistent fleet");
    let pool = ReoptPool::new(POOL_SEED);
    let control = Fleet::new(problem.clone(), fleet_config());
    let control_pool = ReoptPool::new(POOL_SEED);
    for (f, p) in [(&fleet, &pool), (&control, &control_pool)] {
        warm_up(f, p, sessions);
        drive_window(f, p, &plan, 0, cut_us);
    }
    assert!(
        fleet.counters().displaced.load(Ordering::Relaxed) >= 1,
        "no displacement before the cut"
    );
    assert!(fleet.readmit_queue_len() >= 1, "queue empty at the cut");
    fleet.journal_timers(&pool); // durability boundary
    let pre_crash = fleet.durable_state();
    drop(fleet); // crash mid-storm

    let (recovered, report) =
        Fleet::recover(persist_config(&dir), problem, fleet_config()).expect("recovery");
    assert!(report.replayed > 0);
    assert_eq!(
        recovered.durable_state(),
        pre_crash,
        "recovery is not the pre-crash fleet"
    );
    let restored = ReoptPool::new(POOL_SEED);
    restored.restore_timers(&recovered, &report.timers);
    recovered.set_clock_us(cut_us);
    assert_eq!(
        recovered.readmit_entries(),
        control.readmit_entries(),
        "the re-admission queue did not survive the crash"
    );

    for (f, p) in [(&recovered, &restored), (&control, &control_pool)] {
        drive_window(f, p, &plan, cut_us, end_us);
    }
    recovered.record_timers(&restored);
    control.record_timers(&control_pool);
    assert_eq!(chaos_counters(&recovered), chaos_counters(&control));
    assert_eq!(
        recovered.readmit_entries(),
        control.readmit_entries(),
        "retry schedules diverged after recovery"
    );
    assert_eq!(
        recovered.durable_state(),
        control.durable_state(),
        "crashed/recovered run diverged from the uncrashed twin"
    );
    assert_eq!(
        recovered.objective().to_bits(),
        control.objective().to_bits(),
        "Φ differs beyond bitwise"
    );
    assert!(recovered.audit().is_empty());
    assert!(control.audit().is_empty());
}

/// The byte-offset crash sweep over a *chaos* history: the journal
/// carries `FailAgent` displacements, `ReadmitEnqueue` installs,
/// backoff re-enqueues, re-admission `Admit`s and drops — and every
/// prefix must recover conservation-clean, with the full journal
/// reproducing the final fleet exactly (queue included).
#[test]
fn storm_journal_cut_at_every_byte_offset_recovers_conserved() {
    let problem = chaos_universe();
    let sessions = problem.instance().num_sessions();
    let plan = storm();
    let src = store_dir("sweep-src");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&src))
        .expect("persistent fleet");
    let pool = ReoptPool::new(POOL_SEED);
    warm_up(&fleet, &pool, sessions);
    drive_window(&fleet, &pool, &plan, 0, plan.end_us() + 20_000_000);
    fleet.journal_timers(&pool);
    let counters = chaos_counters(&fleet);
    assert!(
        counters[2] >= 1,
        "history has no displacement: {counters:?}"
    );
    assert!(
        counters[4] >= 1,
        "history has no healed re-admission: {counters:?}"
    );
    let final_state = fleet.durable_state();
    let final_queue = fleet.readmit_entries();
    drop(fleet);

    let snapshot_bytes =
        std::fs::read(cloud_vc::persist::snapshot_path(&src, 0)).expect("genesis snapshot");
    let (start_seq, journal) = cloud_vc::persist::journal_files(&src)
        .expect("scan")
        .pop()
        .expect("one journal");
    assert_eq!(start_seq, 1);
    let journal_bytes = std::fs::read(journal).expect("journal bytes");
    assert!(
        journal_bytes.len() > 400,
        "history too small to be a meaningful sweep"
    );

    let work = store_dir("sweep-work");
    let mut max_queue = 0usize;
    for cut in 0..=journal_bytes.len() {
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).expect("work dir");
        std::fs::write(cloud_vc::persist::snapshot_path(&work, 0), &snapshot_bytes)
            .expect("copy snapshot");
        std::fs::write(
            cloud_vc::persist::journal_path(&work, 1),
            &journal_bytes[..cut],
        )
        .expect("cut journal");
        let (recovered, _) = Fleet::recover(persist_config(&work), problem.clone(), fleet_config())
            .unwrap_or_else(|e| panic!("recovery failed at byte offset {cut}: {e}"));
        assert!(
            recovered.audit().is_empty(),
            "conservation violated at byte offset {cut}"
        );
        max_queue = max_queue.max(recovered.readmit_queue_len());
        if cut == journal_bytes.len() {
            assert_eq!(recovered.durable_state(), final_state);
            assert_eq!(recovered.readmit_entries(), final_queue);
        }
    }
    assert!(
        max_queue >= 1,
        "no recovery prefix ever saw a queued session"
    );
}

/// Storage chaos: `fsync` starts failing mid-storm. The journal burns
/// its capped retries, degrades to buffered appends — no fleet
/// operation ever errors — and once the fault clears, healing restores
/// synchronous durability with every record intact.
#[test]
fn fsync_faults_degrade_then_heal_with_no_record_loss() {
    let problem = chaos_universe();
    let sessions = problem.instance().num_sessions();
    let dir = store_dir("fsync-storm");
    let vfs = FaultyVfs::new();
    let fleet = Fleet::with_persistence_on(
        problem.clone(),
        fleet_config(),
        persist_config(&dir),
        Arc::new(vfs.clone()),
        RetryPolicy::immediate(3),
    )
    .expect("persistent fleet");
    // Armed after creation so the header sync stays clean; more
    // consecutive failures than the per-append retry budget.
    vfs.inject(StorageFault {
        path_contains: ".vcwal".into(),
        at_byte: 8,
        kind: StorageFaultKind::FsyncErr { times: 6 },
    });
    let pool = ReoptPool::new(POOL_SEED);
    warm_up(&fleet, &pool, sessions);
    let plan = storm();
    drive_window(&fleet, &pool, &plan, 0, plan.end_us() + 30_000_000);
    // Every append above was accepted; the journal degraded instead of
    // surfacing the storage fault to the control plane.
    assert!(fleet.durability_degraded(), "journal never degraded");
    assert!(fleet.journal_sync_retries() >= 2);
    assert!(vfs.fsync_errors() >= 3);
    // The armed fault burns out; healing restores full durability.
    while vfs.pending() > 0 {
        let _ = fleet.heal_journal();
    }
    assert!(fleet.heal_journal(), "journal refused to heal");
    assert!(!fleet.durability_degraded());
    fleet.journal_timers(&pool);
    let before = fleet.durable_state();
    drop(fleet);

    let (recovered, report) =
        Fleet::recover(persist_config(&dir), problem, fleet_config()).expect("recovery");
    assert!(report.replayed > 0);
    assert_eq!(
        recovered.durable_state(),
        before,
        "healed journal lost records"
    );
    assert!(recovered.audit().is_empty());
}

/// Self-healing end state: once the storm passes and every agent is
/// back, the queue drains to empty and the fleet carries exactly the
/// live set of a twin that never saw a fault.
#[test]
fn queue_drains_and_the_fleet_heals_to_its_fault_free_size() {
    let problem = chaos_universe();
    let sessions = problem.instance().num_sessions();
    let plan = storm();
    let horizon_us = plan.end_us() + 180_000_000;

    let baseline = Fleet::new(problem.clone(), fleet_config());
    let baseline_pool = ReoptPool::new(POOL_SEED);
    warm_up(&baseline, &baseline_pool, sessions);
    baseline_pool.tick_until(&baseline, horizon_us as f64 / 1e6);

    let fleet = Fleet::new(problem.clone(), fleet_config());
    let pool = ReoptPool::new(POOL_SEED);
    warm_up(&fleet, &pool, sessions);
    let pre_storm: Vec<SessionId> = fleet.live_sessions();
    drive_window(&fleet, &pool, &plan, 0, horizon_us);

    let counters = chaos_counters(&fleet);
    assert!(counters[2] >= 1, "storm displaced nothing: {counters:?}");
    assert!(
        counters[4] >= 1,
        "self-healing never re-admitted a displaced session: {counters:?}"
    );
    assert_eq!(
        counters[5], 0,
        "a displaced session was dropped: {counters:?}"
    );
    assert_eq!(
        fleet.readmit_queue_len(),
        0,
        "queue failed to drain after the storm"
    );
    // Nothing the storm displaced stays lost...
    let post: Vec<SessionId> = fleet.live_sessions();
    for s in &pre_storm {
        assert!(
            post.contains(s),
            "session {s:?} never re-admitted after the storm"
        );
    }
    // ...and the healed fleet carries at least the fault-free twin's
    // load (the storm's shuffling may even unlock a session the static
    // baseline could not place).
    assert!(
        fleet.live_count() >= baseline.live_count(),
        "healed fleet ({}) smaller than its fault-free twin ({})",
        fleet.live_count(),
        baseline.live_count()
    );
    assert!(fleet.audit().is_empty());
}
