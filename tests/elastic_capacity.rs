//! Elastic capacity: online agent join/drain, named regions, and the
//! atomic cross-region admission protocol.
//!
//! The acceptance properties of the elastic-capacity refactor:
//!
//! * **agent-axis twin of `tests/open_world.rs`** — a fleet whose agent
//!   pool is grown online (`agent_prefix` seed + `Fleet::register_agent`
//!   of extracted [`AgentDef`]s) and then driven through the same
//!   admit/hop/depart script is bitwise identical to a fleet built over
//!   the full agent pool up front;
//! * **drain semantics** — `drain_agent` refuses new holds first, then
//!   evacuates; a drained agent never comes back via `restore_agent`;
//! * **cross-region atomicity** — a refused or aborted two-phase
//!   prepare leaves every region's residuals bitwise intact, and a
//!   crash between prepare and commit recovers both regions at their
//!   pre-admission residuals;
//! * **crash sweep** — the journal of a history containing
//!   `RegisterAgent`/`DrainAgent`/cross-region admits is cut at every
//!   byte offset and recovery comes back conservation-clean from each
//!   prefix;
//! * **typed recovery errors** — replaying a journal that references an
//!   agent the seed universe never produced fails with an error naming
//!   the missing agent, never an index panic.

use cloud_vc::persist::FsyncPolicy;
use cloud_vc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use vc_algo::markov::Alg1Config;
use vc_model::ModelError;
use vc_orchestrator::persist::FleetOp;
use vc_orchestrator::{AgentHold, CapacityLedger, CrossRegionError, SessionHold, DEFAULT_REGION};

fn store_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp-persist")
        .join(format!("it-elastic-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        ..FleetConfig::default()
    }
}

fn persist_config(dir: &std::path::Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        // One journal record per hop, so every byte-offset cut in the
        // sweep below is meaningful.
        stay_batch: 1,
    }
}

/// Three capacity-limited agents, six 2-user sessions — the same shape
/// as `tests/persist_recovery.rs`'s sweep universe: small enough for a
/// byte-offset sweep, contended enough that admissions spill across
/// whatever agents (and regions) exist.
fn small_universe() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    for name in ["a", "b", "c"] {
        b.add_agent(
            AgentSpec::builder(name)
                .capacity(Capacity::new(90.0, 90.0, 5))
                .build(),
        );
    }
    for i in 0..6 {
        let s = b.add_session();
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

/// A registrable agent definition over a universe with `num_agents`
/// existing agents and `num_users` users (the small universe has 12).
fn late_agent(name: &str, num_agents: usize, num_users: usize, capacity: Capacity) -> AgentDef {
    AgentDef {
        spec: AgentSpec::builder(name).capacity(capacity).build(),
        inter_agent_ms: (0..num_agents).map(|k| 30.0 + 4.0 * k as f64).collect(),
        user_delays_ms: (0..num_users)
            .map(|u| 9.0 + ((u * 11) % 17) as f64)
            .collect(),
    }
}

fn hold(agent: u32, download: f64, upload: f64, units: u32) -> AgentHold {
    AgentHold {
        agent: AgentId::new(agent),
        download_mbps: download,
        upload_mbps: upload,
        transcode_units: units,
    }
}

/// Raw-bit images of the ledger's residual download/upload, reserved
/// download/upload, and reserved transcode vectors, in that order.
type ResidualBits = (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>, Vec<u32>);

/// Every reserved/residual f64 of the ledger as raw bits — the "bitwise
/// intact" comparisons below must not tolerate even a ±0.0 flip.
fn residual_bits(ledger: &CapacityLedger) -> ResidualBits {
    let r = ledger.residuals();
    let t = ledger.reserved_totals();
    (
        r.download.iter().map(|x| x.to_bits()).collect(),
        r.upload.iter().map(|x| x.to_bits()).collect(),
        t.download.iter().map(|x| x.to_bits()).collect(),
        t.upload.iter().map(|x| x.to_bits()).collect(),
        t.transcode.clone(),
    )
}

// ------------------------------------------------- agent-axis twin

/// Randomized universe: 4 agents, 4–6 sessions of 2–3 users, an agent
/// split point, and a drive seed — the agent-axis twin of
/// `tests/open_world.rs`'s `Spec`.
#[derive(Debug, Clone)]
struct Spec {
    agents: Vec<(f64, u32)>,
    sessions: Vec<Vec<(u8, u8)>>,
    delay_seed: u64,
    /// How many agents the seed (closed-world prefix) keeps.
    split: usize,
    drive_seed: u64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec((25.0f64..120.0, 2u32..8), 4),
        prop::collection::vec(prop::collection::vec((0u8..4, 0u8..4), 2..=3), 4..=6),
        any::<u64>(),
        any::<u64>(),
        1usize..4,
    )
        .prop_map(|(agents, sessions, delay_seed, drive_seed, split)| Spec {
            split,
            agents,
            sessions,
            delay_seed,
            drive_seed,
        })
}

fn full_instance(spec: &Spec) -> Instance {
    let ladder = ReprLadder::standard_four();
    let reprs: Vec<ReprId> = ladder.ids().collect();
    let mut b = InstanceBuilder::new(ladder);
    for (i, &(mbps, slots)) in spec.agents.iter().enumerate() {
        b.add_agent(
            AgentSpec::builder(format!("a{i}"))
                .capacity(Capacity::new(mbps, mbps, slots))
                .build(),
        );
    }
    for session in &spec.sessions {
        let sid = b.add_session();
        for &(up, down) in session {
            b.add_user(sid, reprs[up as usize % 4], reprs[down as usize % 4]);
        }
    }
    let seed = spec.delay_seed;
    b.symmetric_delays(
        |l, k| 20.0 + 12.0 * ((l as f64) - (k as f64)).abs(),
        move |l, u| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((l * 131 + u * 31) as u64);
            5.0 + (x % 900) as f64 / 10.0
        },
    );
    b.d_max_ms(10_000.0);
    b.build().expect("valid universe")
}

fn make_fleet(instance: Instance) -> Fleet {
    Fleet::new(
        Arc::new(UapProblem::new(instance, CostModel::paper_default())),
        fleet_config(),
    )
}

/// The shared admit/hop/depart script — identical on both fleets, so
/// any divergence is the growth path's fault. (Unlike the session twin,
/// registration happens *before* the script: the agent pool shapes
/// every admission's candidate set, so both fleets must see the same
/// pool at every step.)
fn drive(fleet: &Fleet, n: usize, drive_seed: u64) {
    let mut rng = StdRng::seed_from_u64(drive_seed);
    for s in 0..n {
        let _ = fleet.admit(SessionId::from(s));
        for i in 0..=s {
            let _ = fleet.hop_session(SessionId::from(i), &mut rng);
        }
    }
    fleet.depart(SessionId::new(0));
    let _ = fleet.admit(SessionId::new(0));
    for i in 0..n {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grow-the-agent-pool-then-admit ≡ build-up-front, bitwise. Grown
    /// agents join alternating regions, so the open-world fleet's
    /// spanning admissions route through the two-phase cross-region
    /// protocol while the closed-world fleet books single-region — the
    /// protocol must be unobservable in placements, holdings, counters
    /// and Φ.
    #[test]
    fn grown_agent_pool_is_bitwise_identical_to_up_front_fleet(spec in spec_strategy()) {
        let full = full_instance(&spec);
        let num_agents = full.num_agents();
        let n = full.num_sessions();
        let seed = full.agent_prefix(spec.split).expect("agent prefix");
        let defs: Vec<AgentDef> = (spec.split..num_agents)
            .map(|l| AgentDef::of_instance(&full, AgentId::from(l)))
            .collect();

        // Closed world: the whole agent pool up front.
        let closed = make_fleet(full);
        drive(&closed, n, spec.drive_seed);

        // Open world: seed prefix, the rest registered online into
        // alternating regions before the same script runs.
        let open = make_fleet(seed);
        for (i, def) in defs.iter().enumerate() {
            let region = if i % 2 == 0 { "east" } else { DEFAULT_REGION };
            let assigned = open.register_agent(def, region).expect("extracted def re-registers");
            prop_assert_eq!(assigned, AgentId::from(spec.split + i), "ids must stay dense");
        }
        prop_assert_eq!(open.num_agents(), num_agents);
        drive(&open, n, spec.drive_seed);

        prop_assert_eq!(
            open.objective().to_bits(),
            closed.objective().to_bits(),
            "objectives diverged: {} vs {}",
            open.objective(),
            closed.objective()
        );
        // Complete control-plane state. The grown fleet's durable state
        // additionally records its registrations and region membership
        // — bookkeeping, not capacity — the only allowed differences.
        let a = closed.durable_state();
        let mut b = open.durable_state();
        prop_assert_eq!(b.growth.len(), num_agents - spec.split);
        b.growth.clear();
        prop_assert!(b.regions.len() <= 2);
        b.regions = a.regions.clone();
        b.agent_regions = a.agent_regions.clone();
        prop_assert_eq!(a, b);
        prop_assert!(closed.audit().is_empty(), "closed-world audit: {:?}", closed.audit());
        prop_assert!(open.audit().is_empty(), "open-world audit: {:?}", open.audit());
        prop_assert!(open.load_drift() < 1e-9);
    }
}

// ------------------------------------------------- drain semantics

/// `drain_agent` = refuse new holds, then evacuate: after the drain no
/// live session holds anything on the agent, later admissions avoid
/// it, and `restore_agent` refuses to bring it back.
#[test]
fn drain_refuses_new_holds_then_evacuates() {
    let fleet = Fleet::new(small_universe(), fleet_config());
    for i in 0..4usize {
        let _ = fleet.admit(SessionId::from(i));
    }
    let victim = AgentId::new(0);
    fleet.drain_agent(victim);
    assert!(fleet.is_agent_drained(victim));
    assert!(!fleet.is_agent_available(victim));

    let assert_victim_empty = |fleet: &Fleet| {
        for s in fleet.live_sessions() {
            if let Some(hold) = fleet.ledger().hold_of(s) {
                assert!(
                    hold.holds.iter().all(|h| h.agent != victim),
                    "session {s} still holds capacity on drained {victim}"
                );
            }
        }
    };
    assert_victim_empty(&fleet);

    // New admissions land on the survivors only.
    let _ = fleet.admit(SessionId::new(4));
    let _ = fleet.admit(SessionId::new(5));
    assert_victim_empty(&fleet);

    // A drain is permanent: restore is refused and changes nothing.
    assert!(!fleet.restore_agent(victim), "drained agent restored");
    assert!(fleet.is_agent_drained(victim));
    assert!(!fleet.is_agent_available(victim));

    assert!(fleet.audit().is_empty(), "audit: {:?}", fleet.audit());
    assert!(fleet.load_drift() < 1e-9);
}

// ------------------------------------------- cross-region atomicity

/// Phase-1 refusal, explicit abort, and commit+release all leave the
/// ledger bitwise at its pre-attempt residuals — in every region.
#[test]
fn failed_prepare_leaves_both_regions_bitwise_intact() {
    let problem = small_universe();
    let ledger = CapacityLedger::new(&problem, 2);
    let east = ledger.ensure_region("east");
    assert_eq!(east, 1);
    assert_eq!(
        ledger.region_names(),
        vec!["default".to_string(), "east".to_string()]
    );
    let l3 = ledger.register_agent(Capacity::new(40.0, 40.0, 2), east);
    assert_eq!(l3, AgentId::new(3));
    assert_eq!(ledger.region_of(l3), east);

    // A live single-region booking so the baseline is non-trivial.
    ledger
        .try_reserve(
            SessionId::new(0),
            SessionHold {
                holds: vec![hold(0, 30.0, 30.0, 1)],
            },
        )
        .expect("fits");
    let before = residual_bits(&ledger);
    let (p0, c0, a0) = ledger.cross_region_counters();

    // Refusal: the default region debits first (ascending region
    // order), then east refuses — its upload sub-hold exceeds the
    // 40 Mbps capacity — and the default debit must roll back.
    let spanning_too_big = SessionHold {
        holds: vec![hold(1, 20.0, 20.0, 1), hold(3, 10.0, 90.0, 1)],
    };
    match ledger.prepare_reserve(SessionId::new(9), spanning_too_big) {
        Err(CrossRegionError::Prepare { region, .. }) => assert_eq!(region, east),
        other => panic!("expected a typed Prepare refusal naming east, got {other:?}"),
    }
    assert_eq!(
        residual_bits(&ledger),
        before,
        "refusal left a debit behind"
    );
    assert!(ledger.hold_of(SessionId::new(9)).is_none());

    // Prepare + abort: bitwise rollback, nothing ever held.
    let ok = SessionHold {
        holds: vec![hold(1, 20.0, 20.0, 1), hold(3, 25.0, 25.0, 1)],
    };
    let prepared = ledger
        .prepare_reserve(SessionId::new(9), ok.clone())
        .expect("fits");
    assert_eq!(prepared.regions(), vec![0, east]);
    assert!(
        ledger.hold_of(SessionId::new(9)).is_none(),
        "prepared must be invisible before commit"
    );
    ledger.abort_prepared(prepared);
    assert_eq!(residual_bits(&ledger), before, "abort left a debit behind");

    // Prepare + commit: the merged hold installs; release undoes it.
    let prepared = ledger
        .prepare_reserve(SessionId::new(9), ok.clone())
        .expect("fits");
    ledger.commit_prepared(prepared).expect("first hold");
    assert_eq!(ledger.hold_of(SessionId::new(9)).expect("committed"), ok);
    ledger.release(SessionId::new(9)).expect("held");
    assert_eq!(residual_bits(&ledger), before);

    let (p1, c1, a1) = ledger.cross_region_counters();
    assert_eq!((p1 - p0, c1 - c0, a1 - a0), (2, 1, 2));
}

/// A crash with a cross-region reservation prepared but not committed
/// recovers both regions at their pre-admission residuals: the journal
/// records admissions only at the commit point, so the in-flight debit
/// dies with the process.
#[test]
fn crash_between_prepare_and_commit_recovers_pre_admission_residuals() {
    let problem = small_universe();
    let dir = store_dir("prepare-crash");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&dir))
        .expect("persistent fleet");
    for i in 0..3usize {
        let _ = fleet.admit(SessionId::from(i));
    }
    let l3 = fleet
        .register_agent(
            &late_agent("d", 3, 12, Capacity::new(60.0, 60.0, 4)),
            "east",
        )
        .expect("registers");
    assert_eq!(l3, AgentId::new(3));
    let before = fleet.durable_state();
    let before_bits = residual_bits(fleet.ledger());

    // An in-flight cross-region admission: phase 1 done, the fault
    // lands before phase 2 ever runs.
    let spanning = SessionHold {
        holds: vec![hold(0, 4.0, 4.0, 0), hold(3, 4.0, 4.0, 0)],
    };
    let prepared = fleet
        .ledger()
        .prepare_reserve(SessionId::new(5), spanning)
        .expect("fits");
    assert_ne!(
        residual_bits(fleet.ledger()),
        before_bits,
        "the prepare debit must be visible in-process"
    );
    std::mem::forget(prepared); // the crash outruns commit AND abort
    drop(fleet);

    let (recovered, _) =
        Fleet::recover(persist_config(&dir), problem, fleet_config()).expect("recovery");
    assert_eq!(recovered.durable_state(), before);
    assert_eq!(
        residual_bits(recovered.ledger()),
        before_bits,
        "recovery resurrected the uncommitted debit"
    );
    assert!(recovered.audit().is_empty());
}

// ------------------------------------------------- crash recovery

/// The elastic seed: ONE default agent with bandwidth but **zero
/// transcode slots**. Sessions that need a transcoding task must place
/// it on a later-registered agent — with east and west each holding one
/// agent, those admissions are forced through the cross-region 2PC.
fn tight_universe() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(
        AgentSpec::builder("a0")
            .capacity(Capacity::new(30.0, 30.0, 0))
            .build(),
    );
    for i in 0..6 {
        let s = b.add_session();
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

/// The admit/register/drain history both the persistent fleet and its
/// never-crashed twin run below. Even-numbered sessions carry a
/// transcoding task the seed agent cannot host (zero slots) — their
/// post-registration admissions place users on the default agent and
/// the task in east/west, i.e. genuinely cross-region.
fn elastic_history(fleet: &Fleet) {
    let mut rng = StdRng::seed_from_u64(77);
    let _ = fleet.admit(SessionId::new(1));
    let _ = fleet.hop_session(SessionId::new(1), &mut rng);
    let l1 = fleet
        .register_agent(
            &late_agent("d", 1, 12, Capacity::new(12.0, 12.0, 2)),
            "east",
        )
        .expect("registers");
    assert_eq!(l1, AgentId::new(1));
    let l2 = fleet
        .register_agent(
            &late_agent("e", 2, 12, Capacity::new(12.0, 12.0, 2)),
            "west",
        )
        .expect("registers");
    assert_eq!(l2, AgentId::new(2));
    // A mix of admissions: the even ones span regions, some of the rest
    // are refused outright — the journal records both shapes.
    for i in [0usize, 2, 4, 3, 5] {
        let _ = fleet.admit(SessionId::from(i));
    }
    for i in 0..6usize {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
    // Capacity leaves mid-history: the drain evacuates the seed agent's
    // load into east/west (forced, overshooting their small capacity).
    fleet.drain_agent(AgentId::new(0));
    // Post-drain churn the recovery must replay on top.
    fleet.depart(SessionId::new(1));
    let _ = fleet.admit(SessionId::new(1));
    for i in 0..6usize {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
}

/// A fleet crashed after a mid-history drain recovers bitwise identical
/// both to its own pre-crash state and to a twin that ran the same
/// history without ever crashing.
#[test]
fn mid_drain_crash_recovery_matches_uncrashed_twin() {
    let problem = tight_universe();
    let dir = store_dir("mid-drain");
    let durable = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&dir))
        .expect("persistent fleet");
    let twin = Fleet::new(problem.clone(), fleet_config());
    elastic_history(&durable);
    elastic_history(&twin);
    let before = durable.durable_state();
    drop(durable); // crash: the drain is in the journal, no checkpoint

    let (recovered, report) =
        Fleet::recover(persist_config(&dir), problem, fleet_config()).expect("recovery");
    assert!(report.replayed > 0);
    assert_eq!(recovered.durable_state(), before, "recovery lost state");
    assert_eq!(
        recovered.durable_state(),
        twin.durable_state(),
        "recovered fleet differs from the uncrashed twin"
    );
    assert_eq!(recovered.objective().to_bits(), twin.objective().to_bits());
    assert_eq!(recovered.num_agents(), 3);
    assert!(recovered.is_agent_drained(AgentId::new(0)));
    assert!(!recovered.restore_agent(AgentId::new(0)));
    assert_eq!(
        recovered.ledger().region_names(),
        vec![
            "default".to_string(),
            "east".to_string(),
            "west".to_string()
        ]
    );
    assert_eq!(recovered.ledger().region_of(AgentId::new(1)), 1);
    assert_eq!(recovered.ledger().region_of(AgentId::new(2)), 2);
    assert!(recovered.audit().is_empty());
    assert!(twin.audit().is_empty());
}

/// Cut the journal of the elastic history at **every byte offset**:
/// recovery from each prefix — including cuts inside a `RegisterAgent`
/// definition, between a registration and the admission that lands on
/// the new agent, and mid-drain — must come back conservation-clean
/// from the 3-agent seed problem alone.
#[test]
fn elastic_crash_sweep_recovers_conserved() {
    let problem = tight_universe();
    let src = store_dir("sweep-src");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&src))
        .expect("persistent fleet");
    elastic_history(&fleet);
    let final_state = fleet.durable_state();
    let final_commits = fleet.ledger().cross_region_counters().1;
    assert!(
        final_commits > 0,
        "history contains no cross-region admission — the sweep would not exercise the 2PC path"
    );
    drop(fleet);

    let snapshot_bytes =
        std::fs::read(cloud_vc::persist::snapshot_path(&src, 0)).expect("genesis snapshot");
    let (start_seq, journal) = cloud_vc::persist::journal_files(&src)
        .expect("scan")
        .pop()
        .expect("one journal");
    assert_eq!(start_seq, 1);
    let journal_bytes = std::fs::read(journal).expect("journal bytes");
    assert!(
        journal_bytes.len() > 200,
        "history too small to be a meaningful sweep"
    );

    let work = store_dir("sweep-work");
    let mut agent_counts = Vec::new();
    for cut in 0..=journal_bytes.len() {
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).expect("work dir");
        std::fs::write(cloud_vc::persist::snapshot_path(&work, 0), &snapshot_bytes)
            .expect("copy snapshot");
        std::fs::write(
            cloud_vc::persist::journal_path(&work, 1),
            &journal_bytes[..cut],
        )
        .expect("cut journal");
        let (recovered, _) = Fleet::recover(persist_config(&work), problem.clone(), fleet_config())
            .unwrap_or_else(|e| panic!("recovery failed at byte offset {cut}: {e}"));
        assert!(
            recovered.audit().is_empty(),
            "conservation violated at byte offset {cut}"
        );
        agent_counts.push(recovered.num_agents());
        if cut == journal_bytes.len() {
            assert_eq!(recovered.durable_state(), final_state);
            assert!(recovered.is_agent_drained(AgentId::new(0)));
        }
    }
    // The sweep saw the agent pool grow: the seed's lone agent at the
    // first cut, 3 by the last.
    assert_eq!(*agent_counts.first().expect("sweep ran"), 1);
    assert_eq!(*agent_counts.last().expect("sweep ran"), 3);
}

// ------------------------------------------------- typed errors

/// Registering a mis-sized agent definition is refused with a typed
/// error and changes nothing.
#[test]
fn mis_sized_agent_def_is_refused() {
    let fleet = Fleet::new(small_universe(), fleet_config());
    let mut bad = late_agent("d", 3, 12, Capacity::new(60.0, 60.0, 4));
    bad.user_delays_ms.pop(); // 11 entries over a 12-user universe
    let err = fleet.register_agent(&bad, "east").expect_err("mis-sized");
    assert!(
        matches!(err, ModelError::InvalidDelays(_)),
        "expected a typed delay-shape refusal, got {err:?}"
    );
    assert_eq!(fleet.num_agents(), 3);
    // The region table is untouched — no half-registered agent.
    assert_eq!(fleet.ledger().region_names(), vec!["default".to_string()]);
}

/// Recovery handed a journal that references an agent the seed problem
/// (plus the replayed growth log) never produced fails with a typed
/// error naming the missing agent — never an index panic.
#[test]
fn recovery_names_the_missing_agent() {
    let problem = small_universe();
    let dir = store_dir("missing-agent");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&dir))
        .expect("persistent fleet");
    let _ = fleet.admit(SessionId::new(0));
    drop(fleet);

    // Overwrite the journal with one produced by a "bigger" deployment:
    // it fails an agent the 3-agent seed universe has never heard of.
    let mut w = cloud_vc::persist::JournalWriter::<FleetOp>::create(
        cloud_vc::persist::journal_path(&dir, 1),
        FsyncPolicy::Always,
        1,
    )
    .expect("journal");
    w.append(&FleetOp::FailAgent {
        agent: AgentId::new(7),
    })
    .expect("append");
    w.commit().expect("commit");
    drop(w);

    let err = Fleet::recover(persist_config(&dir), problem, fleet_config())
        .expect_err("stale seed problem must be refused");
    let msg = err.to_string();
    assert!(msg.contains("unknown agent a7"), "untyped error: {msg}");
    assert!(msg.contains("only 3 agents"), "bound not named: {msg}");
}
