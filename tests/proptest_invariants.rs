//! Property-based tests of the core invariants, over randomly generated
//! instances and decision sequences.

use cloud_vc::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use vc_core::Decision;

/// A randomly shaped small instance: 2–4 agents, 1–3 sessions of 2–4
/// users, random representation demands and delays.
#[derive(Debug, Clone)]
struct RandomInstance {
    sessions: Vec<Vec<(u8, u8)>>, // (upstream idx, demand idx) per user
    inter_delay: Vec<Vec<f64>>,
    user_delay_seed: u64,
    speed: Vec<f64>,
}

fn random_instance_strategy() -> impl Strategy<Value = RandomInstance> {
    (
        2usize..=4,
        prop::collection::vec(prop::collection::vec((0u8..4, 0u8..4), 2..=4), 1..=3),
        any::<u64>(),
    )
        .prop_flat_map(|(num_agents, sessions, user_delay_seed)| {
            let speeds = prop::collection::vec(1.0f64..2.5, num_agents);
            let delays =
                prop::collection::vec(prop::collection::vec(5.0f64..120.0, num_agents), num_agents);
            (Just(sessions), Just(user_delay_seed), speeds, delays).prop_map(
                |(sessions, user_delay_seed, speed, inter_delay)| RandomInstance {
                    sessions,
                    inter_delay,
                    user_delay_seed,
                    speed,
                },
            )
        })
}

fn build(spec: &RandomInstance) -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let reprs: Vec<ReprId> = ladder.ids().collect();
    let mut b = InstanceBuilder::new(ladder);
    for (i, s) in spec.speed.iter().enumerate() {
        b.add_agent(AgentSpec::builder(format!("a{i}")).speed_factor(*s).build());
    }
    for session in &spec.sessions {
        let sid = b.add_session();
        for &(up, down) in session {
            b.add_user(sid, reprs[up as usize % 4], reprs[down as usize % 4]);
        }
    }
    let inter = spec.inter_delay.clone();
    let seed = spec.user_delay_seed;
    b.symmetric_delays(
        move |l, k| inter[l.min(k)][l.max(k)],
        move |l, u| {
            // Deterministic pseudo-random H entries from the seed.
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((l * 131 + u * 31) as u64);
            5.0 + (x % 1000) as f64 / 10.0
        },
    );
    // A generous Dmax keeps random instances feasible so moves are legal.
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid"),
        CostModel::paper_default(),
    ))
}

fn decisions_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>()), 1..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incrementally maintained state equals a from-scratch rebuild
    /// after any sequence of decisions.
    #[test]
    fn incremental_matches_rebuild(spec in random_instance_strategy(), seq in decisions_strategy(24)) {
        let problem = build(&spec);
        let mut state = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let nu = problem.instance().num_users();
        let nt = problem.tasks().len();
        let nl = problem.instance().num_agents();
        for (a, b) in seq {
            let decision = if nt > 0 && a % 2 == 0 {
                Decision::Task(vc_core::TaskId::from((a as usize / 2) % nt), AgentId::from(b as usize % nl))
            } else {
                Decision::User(UserId::from((a as usize / 2) % nu), AgentId::from(b as usize % nl))
            };
            state.apply_unchecked(decision);
        }
        let phi_incremental = state.objective();
        let traffic_incremental = state.total_traffic_mbps();
        let drift = state.rebuild();
        prop_assert!(drift < 1e-6, "drift {drift}");
        prop_assert!((state.objective() - phi_incremental).abs() < 1e-6);
        prop_assert!((state.total_traffic_mbps() - traffic_incremental).abs() < 1e-6);
    }

    /// Co-locating an entire session (users + tasks) on one agent always
    /// produces zero inter-agent traffic for it.
    #[test]
    fn colocated_sessions_have_zero_traffic(spec in random_instance_strategy(), agent in 0u8..4) {
        let problem = build(&spec);
        let nl = problem.instance().num_agents();
        let target = AgentId::from(agent as usize % nl);
        let state = SystemState::new(problem.clone(), Assignment::all_to_agent(&problem, target));
        prop_assert!(state.total_traffic_mbps().abs() < 1e-9);
        for s in problem.instance().session_ids() {
            prop_assert!(state.session_load(s).total_ingress_mbps().abs() < 1e-9);
        }
    }

    /// Every flow's delay is at least the two last-mile hops, and the
    /// session delay cost is monotone under the Mean shape.
    #[test]
    fn delays_bounded_below_by_last_mile(spec in random_instance_strategy()) {
        let problem = build(&spec);
        let state = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let inst = problem.instance();
        for s in inst.session_ids() {
            let load = state.session_load(s);
            for (i, &u) in inst.session(s).users().iter().enumerate() {
                if inst.session(s).len() < 2 { continue; }
                let a_u = state.assignment().agent_of_user(u);
                prop_assert!(
                    load.user_delay[i] >= inst.h_ms(a_u, u) - 1e-9,
                    "user delay below its own last mile"
                );
            }
        }
    }

    /// AgRank with a single candidate per user is exactly Nrst.
    #[test]
    fn agrank_one_neighbor_is_nearest(spec in random_instance_strategy()) {
        let problem = build(&spec);
        let agrank = agrank_assignment(&problem, &AgRankConfig::paper(1));
        let nrst = nearest_assignment(&problem);
        prop_assert_eq!(agrank.user_agents(), nrst.user_agents());
    }

    /// Applying a decision and reverting it restores the objective.
    #[test]
    fn apply_revert_round_trips(spec in random_instance_strategy(), u in any::<u8>(), a in any::<u8>()) {
        let problem = build(&spec);
        let mut state = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let nu = problem.instance().num_users();
        let nl = problem.instance().num_agents();
        let user = UserId::from(u as usize % nu);
        let before_phi = state.objective();
        let before_agent = state.assignment().agent_of_user(user);
        state.apply_unchecked(Decision::User(user, AgentId::from(a as usize % nl)));
        state.apply_unchecked(Decision::User(user, before_agent));
        prop_assert!((state.objective() - before_phi).abs() < 1e-6,
            "revert mismatch: {before_phi} vs {}", state.objective());
    }

    /// Objectives, traffic and delays are finite and non-negative under
    /// any assignment reachable here.
    #[test]
    fn metrics_are_finite_nonnegative(spec in random_instance_strategy(), agent in 0u8..4) {
        let problem = build(&spec);
        let nl = problem.instance().num_agents();
        for asg in [
            nearest_assignment(&problem),
            Assignment::all_to_agent(&problem, AgentId::from(agent as usize % nl)),
            agrank_assignment(&problem, &AgRankConfig::paper(2)),
        ] {
            let state = SystemState::new(problem.clone(), asg);
            prop_assert!(state.objective().is_finite());
            prop_assert!(state.objective() >= 0.0);
            prop_assert!(state.total_traffic_mbps() >= 0.0);
            prop_assert!(state.mean_delay_ms() >= 0.0);
        }
    }
}
