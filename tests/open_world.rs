//! Closed-world equivalence of the open-world growth path.
//!
//! The acceptance property of the open-world refactor: a fleet whose
//! universe is **grown online session-by-session** (seed prefix +
//! `Fleet::register_session` of extracted [`SessionDef`]s) and then
//! driven through the same admit/hop/depart sequence is **bitwise
//! identical** — placements, ledger holdings, counters, objective `Φ`
//! — to a fleet built over the full instance up front, and both pass
//! the conservation audit. Growth must be unobservable to everything
//! but the universe size.

use cloud_vc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_model::SessionDef;
use vc_orchestrator::Fleet;

/// Randomized small universe: 3 agents, 4–7 sessions of 2–3 users.
#[derive(Debug, Clone)]
struct Spec {
    agents: Vec<(f64, u32)>,
    sessions: Vec<Vec<(u8, u8)>>,
    delay_seed: u64,
    /// How many sessions the seed (closed-world prefix) keeps.
    split: usize,
    /// Hop/churn script seed.
    drive_seed: u64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec((25.0f64..120.0, 2u32..8), 3),
        prop::collection::vec(prop::collection::vec((0u8..4, 0u8..4), 2..=3), 4..=7),
        any::<u64>(),
        any::<u64>(),
        1usize..4,
    )
        .prop_map(|(agents, sessions, delay_seed, drive_seed, split)| Spec {
            split: split.min(sessions.len() - 1),
            agents,
            sessions,
            delay_seed,
            drive_seed,
        })
}

fn full_instance(spec: &Spec) -> Instance {
    let ladder = ReprLadder::standard_four();
    let reprs: Vec<ReprId> = ladder.ids().collect();
    let mut b = InstanceBuilder::new(ladder);
    for (i, &(mbps, slots)) in spec.agents.iter().enumerate() {
        b.add_agent(
            AgentSpec::builder(format!("a{i}"))
                .capacity(Capacity::new(mbps, mbps, slots))
                .build(),
        );
    }
    for session in &spec.sessions {
        let sid = b.add_session();
        for &(up, down) in session {
            b.add_user(sid, reprs[up as usize % 4], reprs[down as usize % 4]);
        }
    }
    let seed = spec.delay_seed;
    b.symmetric_delays(
        |l, k| 20.0 + 12.0 * ((l as f64) - (k as f64)).abs(),
        move |l, u| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((l * 131 + u * 31) as u64);
            5.0 + (x % 900) as f64 / 10.0
        },
    );
    b.d_max_ms(10_000.0);
    b.build().expect("valid universe")
}

fn make_fleet(instance: Instance) -> Fleet {
    Fleet::new(
        Arc::new(UapProblem::new(instance, CostModel::paper_default())),
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
            alg1: Alg1Config::paper(400.0),
            ledger_shards: 2,
            ..FleetConfig::default()
        },
    )
}

/// The shared admit/hop/depart script. `register` is called right
/// before a session is first admitted — a no-op for the closed-world
/// fleet, a `register_session` for the grown one.
fn drive(fleet: &Fleet, n: usize, drive_seed: u64, mut register: impl FnMut(&Fleet, usize)) {
    let mut rng = StdRng::seed_from_u64(drive_seed);
    for s in 0..n {
        register(fleet, s);
        let _ = fleet.admit(SessionId::from(s));
        // Interleave hops over everything admitted so far, so later
        // registrations happen against a genuinely-busy fleet.
        for i in 0..=s {
            let _ = fleet.hop_session(SessionId::from(i), &mut rng);
        }
    }
    // A little churn at the end: depart + readmit + more hops.
    fleet.depart(SessionId::new(0));
    let _ = fleet.admit(SessionId::new(0));
    for i in 0..n {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grow-then-admit ≡ build-up-front, bitwise.
    #[test]
    fn grown_fleet_is_bitwise_identical_to_up_front_fleet(spec in spec_strategy()) {
        let full = full_instance(&spec);
        let n = full.num_sessions();
        let seed = full.prefix(spec.split).expect("contiguous prefix");
        let defs: Vec<SessionDef> = (spec.split..n)
            .map(|s| SessionDef::of_instance(&full, SessionId::from(s)))
            .collect();

        // Closed world: the whole universe up front.
        let closed = make_fleet(full);
        drive(&closed, n, spec.drive_seed, |_, _| {});

        // Open world: seed prefix, conferences registered online just
        // before their first admission.
        let open = make_fleet(seed);
        drive(&open, n, spec.drive_seed, |fleet, s| {
            if s >= spec.split {
                let assigned = fleet
                    .register_session(&defs[s - spec.split])
                    .expect("extracted def re-registers");
                assert_eq!(assigned, SessionId::from(s), "ids must stay dense");
            }
        });

        prop_assert_eq!(open.universe_size(), closed.universe_size());
        // Objective Φ: bitwise.
        prop_assert_eq!(
            open.objective().to_bits(),
            closed.objective().to_bits(),
            "objectives diverged: {} vs {}",
            open.objective(),
            closed.objective()
        );
        // Complete control-plane state: placements, active set, agent
        // availability, ledger holdings, counters. The grown fleet's
        // durable state additionally records its registrations — the
        // only allowed difference.
        let a = closed.durable_state();
        let mut b = open.durable_state();
        prop_assert_eq!(b.growth.len(), n - spec.split);
        b.growth.clear();
        prop_assert_eq!(a, b);
        // Conservation audit: clean on both sides.
        prop_assert!(closed.audit().is_empty(), "closed-world audit: {:?}", closed.audit());
        prop_assert!(open.audit().is_empty(), "open-world audit: {:?}", open.audit());
        prop_assert!(open.load_drift() < 1e-9);
    }
}
