//! Durability properties of `vc-persist` + the fleet recovery path:
//!
//! * codec round-trips — `decode ∘ encode = id` for random
//!   `SessionHold`s, journal records (`FleetOp`), and telemetry
//!   `FleetSnapshot`s, with every strict truncation rejected;
//! * a **crash-point sweep** — the write-ahead journal of a real fleet
//!   run is cut at *every byte offset* and recovery must come back
//!   clean (audit empty) from each prefix;
//! * mid-trace crash recovery — a fleet killed between trace events
//!   recovers to the exact live-session set, ledger holdings, counters
//!   and (bitwise) objective.

use cloud_vc::persist::{decode_exact, encode_to_vec, FsyncPolicy};
use cloud_vc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::{TaskId, UapProblem};
use vc_orchestrator::persist::FleetOp;
use vc_orchestrator::{AgentHold, SessionHold};

fn store_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp-persist")
        .join(format!("it-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three agents with real capacity limits, six 2-user sessions — small
/// enough that a byte-offset sweep stays fast, contended enough that
/// admissions get refused and failures force evacuations.
fn small_universe() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    for name in ["a", "b", "c"] {
        b.add_agent(
            AgentSpec::builder(name)
                .capacity(Capacity::new(90.0, 90.0, 5))
                .build(),
        );
    }
    for i in 0..6 {
        let s = b.add_session();
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        ..FleetConfig::default()
    }
}

fn persist_config(dir: &std::path::Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        // Per-stay records (no batching): the byte-offset sweep below
        // wants one journal record per hop so every cut point is
        // meaningful.
        stay_batch: 1,
    }
}

/// A busy, failure-laden history over the small universe.
fn churn(fleet: &Fleet) {
    let mut rng = StdRng::seed_from_u64(23);
    for i in 0..6usize {
        let _ = fleet.admit(SessionId::from(i));
    }
    for i in 0..6usize {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
    fleet.fail_agent(AgentId::new(1));
    fleet.depart(SessionId::new(1));
    let _ = fleet.admit(SessionId::new(1));
    fleet.restore_agent(AgentId::new(1));
    for i in 0..6usize {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
    fleet.depart(SessionId::new(4));
}

// ---------------------------------------------------------------- codec

fn agent_hold_strategy() -> impl Strategy<Value = AgentHold> {
    (0u32..8, 0.0f64..500.0, 0.0f64..500.0, 0u32..10).prop_map(|(a, d, u, t)| AgentHold {
        agent: AgentId::new(a),
        download_mbps: d,
        upload_mbps: u,
        transcode_units: t,
    })
}

fn session_hold_strategy() -> impl Strategy<Value = SessionHold> {
    prop::collection::vec(agent_hold_strategy(), 0..5).prop_map(|holds| SessionHold { holds })
}

fn placement_strategy() -> impl Strategy<Value = vc_orchestrator::fleet::Placement> {
    (
        prop::collection::vec((0u32..128, 0u32..8), 0..5),
        prop::collection::vec((0u32..64, 0u32..8), 0..4),
    )
        .prop_map(|(users, tasks)| {
            (
                users
                    .into_iter()
                    .map(|(u, a)| (UserId::new(u), AgentId::new(a)))
                    .collect(),
                tasks
                    .into_iter()
                    .map(|(t, a)| (TaskId::new(t), AgentId::new(a)))
                    .collect(),
            )
        })
}

fn user_def_strategy() -> impl Strategy<Value = vc_model::UserDef> {
    (
        0u32..4,
        0u32..4,
        prop::collection::vec((0u32..64, 0u32..4), 0..3),
        prop::collection::vec(0.1f64..200.0, 1..5),
        (any::<bool>(), 0usize..64),
    )
        .prop_map(|(up, down, overrides, delays, (has_site, site))| {
            let site = has_site.then_some(site);
            let mut demand = vc_model::DownstreamDemand::uniform(ReprId::new(down));
            for (u, r) in overrides {
                demand = demand.with_override(UserId::new(u), ReprId::new(r));
            }
            vc_model::UserDef {
                upstream: ReprId::new(up),
                downstream: demand,
                agent_delays_ms: delays,
                site_index: site,
            }
        })
}

fn session_def_strategy() -> impl Strategy<Value = vc_model::SessionDef> {
    prop::collection::vec(user_def_strategy(), 1..4)
        .prop_map(|users| vc_model::SessionDef { users })
}

fn agent_def_strategy() -> impl Strategy<Value = vc_model::AgentDef> {
    (
        0u32..64,
        (1.0f64..500.0, 1.0f64..500.0, 0u32..16),
        0.1f64..4.0,
        (0.0f64..2.0, 0.0f64..5.0),
        prop::collection::vec(0.5f64..200.0, 0..4),
        prop::collection::vec(0.5f64..200.0, 0..6),
    )
        .prop_map(|(name, (up, down, slots), speed, (pm, pt), inter, user)| {
            vc_model::AgentDef {
                spec: AgentSpec::builder(format!("site-{name}"))
                    .capacity(Capacity::new(up, down, slots))
                    .speed_factor(speed)
                    .price_per_mbps(pm)
                    .price_per_task(pt)
                    .build(),
                inter_agent_ms: inter,
                user_delays_ms: user,
            }
        })
}

fn timer_entry_strategy() -> impl Strategy<Value = vc_orchestrator::TimerEntry> {
    (0u32..64, any::<u64>(), 1u64..8, 0u64..1024, any::<bool>()).prop_map(
        |(s, due_us, epoch, draws, active)| vc_orchestrator::TimerEntry {
            session: SessionId::new(s),
            due_us,
            epoch,
            draws,
            active,
        },
    )
}

fn fleet_op_strategy() -> impl Strategy<Value = FleetOp> {
    (
        0u8..14,
        0u32..64,
        0u32..8,
        placement_strategy(),
        any::<bool>(),
        session_def_strategy(),
        prop::collection::vec(timer_entry_strategy(), 0..6),
        ((0u8..3, 0u8..6, 0u64..64), agent_def_strategy()),
    )
        .prop_map(
            |(
                tag,
                s,
                a,
                (users, tasks),
                user_move,
                def,
                timers,
                ((tier, reason, repair_steps), agent_def),
            )| {
                let session = SessionId::new(s);
                let agent = AgentId::new(a);
                match tag {
                    0 => FleetOp::Admit {
                        session,
                        users,
                        tasks,
                        tier: match tier {
                            0 => vc_algo::admission::AdmissionTier::Enumeration,
                            1 => vc_algo::admission::AdmissionTier::Repair,
                            _ => vc_algo::admission::AdmissionTier::RankedFallback,
                        },
                        repair_steps,
                    },
                    1 => FleetOp::Reject {
                        session,
                        reason: match reason {
                            0 => vc_orchestrator::RefusalReason::AlreadyLive,
                            1 => vc_orchestrator::RefusalReason::UserFit,
                            2 => vc_orchestrator::RefusalReason::TaskFit,
                            3 => vc_orchestrator::RefusalReason::GlobalCheck,
                            4 => vc_orchestrator::RefusalReason::Capacity,
                            _ => vc_orchestrator::RefusalReason::Delay,
                        },
                    },
                    2 => FleetOp::Depart { session },
                    3 => FleetOp::FailAgent { agent },
                    4 => FleetOp::RestoreAgent { agent },
                    5 => FleetOp::Hop {
                        session,
                        decision: if user_move {
                            Decision::User(UserId::new(s), agent)
                        } else {
                            Decision::Task(TaskId::new(s), agent)
                        },
                        old_agent: AgentId::new((a + 1) % 8),
                    },
                    6 => FleetOp::Stay { session },
                    7 => FleetOp::StayBatch {
                        count: repair_steps + 1,
                    },
                    8 => FleetOp::Timers { entries: timers },
                    9 => FleetOp::RegisterSession { session, def },
                    10 => FleetOp::ReadmitEnqueue {
                        session,
                        epoch: u64::from(a) + 1,
                        attempt: tier.into(),
                        due_us: repair_steps * 500_000,
                    },
                    11 => FleetOp::ReadmitDrop { session },
                    12 => FleetOp::RegisterAgent {
                        agent,
                        def: agent_def,
                        region: format!("r{}", a % 3),
                    },
                    _ => FleetOp::DrainAgent { agent },
                }
            },
        )
}

fn fleet_snapshot_strategy() -> impl Strategy<Value = FleetSnapshot> {
    (
        (0.0f64..600.0, 0usize..500, -1e6f64..1e6, -1e4f64..1e4),
        (0.0f64..1e5, 0.0f64..1e3, 0.0f64..1.0, 0.0f64..2.0),
        (0usize..1000, 0usize..1000, 0usize..1000, 0usize..1000),
        (0.0f64..1.0, 0usize..10),
    )
        .prop_map(|(a, b, c, d)| FleetSnapshot {
            time_s: a.0,
            universe_sessions: a.1 + 7,
            universe_users: a.1 * 3,
            live_sessions: a.1,
            objective: a.2,
            mean_session_objective: a.3,
            traffic_mbps: b.0,
            mean_delay_ms: b.1,
            mean_utilization: b.2,
            max_utilization: b.3,
            admitted: c.0,
            rejected: c.1,
            departed: c.2,
            migrations: c.3,
            admission_success_rate: d.0,
            admission_attempts: c.0 + c.1,
            admitted_enumeration: c.0 / 2,
            admitted_repair: c.0 / 3,
            admitted_fallback: c.0 - c.0 / 2 - c.0 / 3,
            admission_repair_steps: c.2 + 5,
            refused_user_fit: c.1 / 2,
            refused_task_fit: c.1 / 3,
            refused_global: c.1 - c.1 / 2 - c.1 / 3,
            conservation_violations: d.1,
            overshoot_fraction: d.0 / 2.0,
            displaced: c.3 / 2,
            readmit_queued: c.3 / 4,
            durability_degraded: d.1 % 2 == 1,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `decode ∘ encode = id` for ledger holds, and every strict
    /// truncation of the encoding is rejected.
    #[test]
    fn session_hold_codec_round_trips(hold in session_hold_strategy()) {
        let bytes = encode_to_vec(&hold);
        prop_assert_eq!(decode_exact::<SessionHold>(&bytes).expect("decodes"), hold);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_exact::<SessionHold>(&bytes[..cut]).is_err(),
                "truncation at {} decoded", cut
            );
        }
    }

    /// Journal records round-trip individually and as a batch.
    #[test]
    fn fleet_op_codec_round_trips(ops in prop::collection::vec(fleet_op_strategy(), 1..16)) {
        for op in &ops {
            let bytes = encode_to_vec(op);
            prop_assert_eq!(&decode_exact::<FleetOp>(&bytes).expect("decodes"), op);
        }
        let bytes = encode_to_vec(&ops);
        prop_assert_eq!(decode_exact::<Vec<FleetOp>>(&bytes).expect("decodes"), ops);
        for cut in 0..bytes.len() {
            prop_assert!(decode_exact::<Vec<FleetOp>>(&bytes[..cut]).is_err());
        }
    }

    /// Telemetry snapshots round-trip with bitwise-equal floats.
    #[test]
    fn fleet_snapshot_codec_round_trips(snap in fleet_snapshot_strategy()) {
        let bytes = encode_to_vec(&snap);
        let back = decode_exact::<FleetSnapshot>(&bytes).expect("decodes");
        prop_assert_eq!(back.objective.to_bits(), snap.objective.to_bits());
        prop_assert_eq!(back, snap);
    }
}

// ------------------------------------------------------- crash recovery

/// Cut the journal at **every byte offset**; recovery from each prefix
/// must succeed with an empty conservation audit (the internal
/// recovery path re-audits and errors otherwise, so `expect` is the
/// assertion).
#[test]
fn crash_at_every_byte_offset_recovers_conserved() {
    let problem = small_universe();
    let src = store_dir("sweep-src");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&src))
        .expect("persistent fleet");
    churn(&fleet);
    drop(fleet);
    let snapshot_bytes =
        std::fs::read(cloud_vc::persist::snapshot_path(&src, 0)).expect("genesis snapshot");
    let (start_seq, journal) = cloud_vc::persist::journal_files(&src)
        .expect("scan")
        .pop()
        .expect("one journal");
    assert_eq!(start_seq, 1);
    let journal_bytes = std::fs::read(journal).expect("journal bytes");
    assert!(
        journal_bytes.len() > 200,
        "history too small to be a meaningful sweep"
    );

    let work = store_dir("sweep-work");
    let mut live_counts = Vec::new();
    for cut in 0..=journal_bytes.len() {
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).expect("work dir");
        std::fs::write(cloud_vc::persist::snapshot_path(&work, 0), &snapshot_bytes)
            .expect("copy snapshot");
        std::fs::write(
            cloud_vc::persist::journal_path(&work, 1),
            &journal_bytes[..cut],
        )
        .expect("cut journal");
        let (recovered, report) =
            Fleet::recover(persist_config(&work), problem.clone(), fleet_config())
                .unwrap_or_else(|e| panic!("recovery failed at byte offset {cut}: {e}"));
        assert!(
            recovered.audit().is_empty(),
            "conservation violated at byte offset {cut}"
        );
        live_counts.push((report.replayed, recovered.live_count()));
    }
    // The sweep actually exercised progressively longer histories.
    let (last_replayed, _) = *live_counts.last().expect("sweep ran");
    assert!(
        last_replayed > 10,
        "full journal replayed only {last_replayed} records"
    );
    assert!(live_counts.first().expect("sweep ran").0 == 0);
}

/// A registrable two-user conference over the 3-agent sweep universe.
fn late_conference(delay_base: f64) -> vc_model::SessionDef {
    let ladder = ReprLadder::standard_four();
    vc_model::SessionDef {
        users: vec![
            vc_model::UserDef {
                upstream: ladder.highest(),
                downstream: vc_model::DownstreamDemand::uniform(ladder.lowest()),
                agent_delays_ms: vec![delay_base, delay_base + 5.0, delay_base + 9.0],
                site_index: None,
            },
            vc_model::UserDef {
                upstream: ladder.lowest(),
                downstream: vc_model::DownstreamDemand::uniform(ladder.lowest()),
                agent_delays_ms: vec![delay_base + 7.0, delay_base + 3.0, delay_base + 11.0],
                site_index: None,
            },
        ],
    }
}

/// The byte-offset sweep over a fleet that **grew its universe
/// online**: `RegisterSession` definition records interleave with
/// admits/hops/failures in the journal, and every prefix — including
/// cuts that land *inside* a definition record, or between a
/// registration and the admission that uses it — must recover
/// conservation-clean from the seed problem alone.
#[test]
fn grown_universe_crash_sweep_recovers_conserved() {
    let problem = small_universe();
    let src = store_dir("sweep-grown-src");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&src))
        .expect("persistent fleet");
    let mut rng = StdRng::seed_from_u64(29);
    for i in 0..6usize {
        let _ = fleet.admit(SessionId::from(i));
    }
    let s6 = fleet
        .register_session(&late_conference(8.0))
        .expect("registers");
    let _ = fleet.admit(s6);
    for i in 0..7usize {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
    fleet.fail_agent(AgentId::new(2));
    let s7 = fleet
        .register_session(&late_conference(13.0))
        .expect("registers");
    let _ = fleet.admit(s7);
    fleet.depart(SessionId::new(3));
    fleet.restore_agent(AgentId::new(2));
    for i in 0..8usize {
        let _ = fleet.hop_session(SessionId::from(i), &mut rng);
    }
    let final_state = fleet.durable_state();
    drop(fleet);

    let snapshot_bytes =
        std::fs::read(cloud_vc::persist::snapshot_path(&src, 0)).expect("genesis snapshot");
    let (start_seq, journal) = cloud_vc::persist::journal_files(&src)
        .expect("scan")
        .pop()
        .expect("one journal");
    assert_eq!(start_seq, 1);
    let journal_bytes = std::fs::read(journal).expect("journal bytes");

    let work = store_dir("sweep-grown-work");
    let mut universe_sizes = Vec::new();
    for cut in 0..=journal_bytes.len() {
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).expect("work dir");
        std::fs::write(cloud_vc::persist::snapshot_path(&work, 0), &snapshot_bytes)
            .expect("copy snapshot");
        std::fs::write(
            cloud_vc::persist::journal_path(&work, 1),
            &journal_bytes[..cut],
        )
        .expect("cut journal");
        let (recovered, _) = Fleet::recover(persist_config(&work), problem.clone(), fleet_config())
            .unwrap_or_else(|e| panic!("recovery failed at byte offset {cut}: {e}"));
        assert!(
            recovered.audit().is_empty(),
            "conservation violated at byte offset {cut}"
        );
        universe_sizes.push(recovered.universe_size().0);
        if cut == journal_bytes.len() {
            assert_eq!(recovered.durable_state(), final_state);
        }
    }
    // The sweep saw the universe grow: early prefixes have the seed's 6
    // sessions, the full journal ends at 8.
    assert_eq!(*universe_sizes.first().expect("sweep ran"), 6);
    assert_eq!(*universe_sizes.last().expect("sweep ran"), 8);
}

/// Kill a trace-driven fleet between events; the recovered fleet is
/// the pre-crash fleet, exactly.
#[test]
fn mid_trace_crash_recovery_is_exact() {
    let problem = small_universe();
    let trace = dynamic_trace(
        6,
        &DynamicTraceConfig {
            horizon_s: 40.0,
            warm_sessions: 4,
            mean_interarrival_s: Some(4.0),
            mean_holding_s: 25.0,
            failures: vec![(12.0, AgentId::new(0))],
            restores: vec![(22.0, AgentId::new(0))],
            seed: 5,
        },
    );
    let crash_at = 20.0;
    let dir = store_dir("mid-trace");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&dir))
        .expect("persistent fleet");
    let mut rng = StdRng::seed_from_u64(40);
    for &(t, event) in &trace.events {
        if t > crash_at {
            break;
        }
        match event {
            FleetEvent::Arrive(s) => {
                let _ = fleet.admit(s);
            }
            FleetEvent::Depart(s) => {
                fleet.depart(s);
            }
            FleetEvent::FailAgent(a) => {
                fleet.fail_agent(a);
            }
            FleetEvent::RestoreAgent(a) => {
                fleet.restore_agent(a);
            }
        }
        // Interleave re-optimization like the worker pool would.
        for i in 0..6usize {
            let _ = fleet.hop_session(SessionId::from(i), &mut rng);
        }
    }
    let before = fleet.durable_state();
    let objective = fleet.objective();
    let live: Vec<SessionId> = fleet.live_sessions();
    assert!(fleet.audit().is_empty());
    drop(fleet); // crash

    let (recovered, report) =
        Fleet::recover(persist_config(&dir), problem, fleet_config()).expect("recovery");
    assert!(report.replayed > 0);
    assert_eq!(recovered.durable_state(), before);
    assert_eq!(recovered.live_sessions(), live, "live-session set differs");
    assert_eq!(
        recovered.objective().to_bits(),
        objective.to_bits(),
        "objective differs beyond f64 round-trip"
    );
    assert!(recovered.audit().is_empty());
}

/// A half-written final record (the classic torn write) is discarded;
/// everything before it recovers.
#[test]
fn torn_final_record_is_tolerated() {
    let problem = small_universe();
    let dir = store_dir("torn");
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&dir))
        .expect("persistent fleet");
    churn(&fleet);
    let before = fleet.durable_state();
    drop(fleet);
    let (_, journal) = cloud_vc::persist::journal_files(&dir)
        .expect("scan")
        .pop()
        .expect("one journal");
    let mut bytes = std::fs::read(&journal).expect("read");
    // A plausible frame start (small length prefix) that never finished.
    bytes.extend_from_slice(&[0x30, 0x00, 0x00, 0x00, 0x11, 0x22]);
    std::fs::write(&journal, &bytes).expect("write");

    let (recovered, report) =
        Fleet::recover(persist_config(&dir), problem, fleet_config()).expect("recovery");
    assert!(report.torn_tail, "tear not reported");
    assert_eq!(recovered.durable_state(), before);
}
