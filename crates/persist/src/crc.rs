//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum guarding
//! every journal frame and snapshot payload.
//!
//! Implemented locally (table-driven, table built at compile time)
//! because the workspace has no registry access; the value matches the
//! ubiquitous zlib/`crc32fast` CRC-32 so externally-produced files can
//! be cross-checked.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, initial value `0xFFFF_FFFF`, final XOR).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(b"hello, journal");
        let b = crc32(b"hello, journal\x01");
        let c = crc32(b"hello, jou\x72nal"); // 'r' unchanged → same bytes
        assert_ne!(a, b);
        assert_eq!(a, c);
    }
}
