//! An injectable storage layer under the journal and snapshot writers.
//!
//! Durability code is exactly the code that must keep working when the
//! filesystem stops cooperating, and that is the one regime `cargo
//! test` never exercises by accident. This module splits the few file
//! operations the writers actually use into a pair of object-safe
//! traits so a fault plane (`vc-chaos`) can wrap the real filesystem
//! and inject `fsync` errors, short/torn writes, and `ENOSPC` at exact
//! byte offsets — deterministically, from a seed.
//!
//! * [`FaultFile`] — one writable file: `write_all`, `sync_data`,
//!   `sync_all`, `truncate`. `std::fs::File` implements it by
//!   delegation.
//! * [`Vfs`] — the namespace operations: create-or-truncate and the
//!   atomic rename that publishes a snapshot. [`RealVfs`] is the
//!   passthrough implementation every production path defaults to.
//!
//! The traits deliberately cover only what [`crate::journal`] and
//! [`crate::snapshot`] call: appends, syncs, the snapshot temp-file
//! rename, and the truncate a degraded journal uses to cut a torn
//! write back to its last known-good offset. Reads stay on `std::fs` —
//! recovery wants the real bytes, faults and all.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// One writable file as the journal/snapshot writers see it.
///
/// Implementations may fail any call, and may apply *part* of a write
/// before failing (a torn write) — the writers are built to survive
/// both.
pub trait FaultFile: Send + fmt::Debug {
    /// Append `buf` in its entirety, or fail (possibly after writing a
    /// prefix — the caller treats any error as "file tail unknown").
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate to `len` bytes — the degraded journal's way of cutting
    /// a torn tail back to the last fully-written frame boundary.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

impl FaultFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // `set_len` does not move the write cursor; without the seek the
        // next append would land past the cut and leave a zero-filled
        // hole that reads back as a bogus frame.
        self.set_len(len)?;
        io::Seek::seek(self, io::SeekFrom::Start(len))?;
        Ok(())
    }
}

/// The filesystem namespace operations the writers use.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn FaultFile>>;
    /// Atomically rename `from` to `to` (the snapshot publish step).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
}

/// The passthrough [`Vfs`]: plain `std::fs`, no faults.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn FaultFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(file))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// A shared handle to the passthrough [`Vfs`] — the default everywhere
/// a `Vfs` is threaded through a config.
pub fn real_vfs() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_vfs_round_trips_and_renames() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-persist")
            .join("vfs-real");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let vfs = RealVfs;
        let tmp = dir.join("a.tmp");
        let dst = dir.join("a.bin");
        let mut f = vfs.create(&tmp).expect("create");
        f.write_all(b"hello world").expect("write");
        f.truncate(5).expect("truncate");
        f.sync_all().expect("sync");
        drop(f);
        vfs.rename(&tmp, &dst).expect("rename");
        assert_eq!(std::fs::read(&dst).expect("read"), b"hello");
        assert!(!tmp.exists());
    }
}
