//! The write-ahead event journal: an append-only file of CRC-framed,
//! sequence-numbered records.
//!
//! ## File format
//!
//! ```text
//! ┌──────────────────────────────┐
//! │ header: "VCWJ" ver:u16 rsv:u16│  8 bytes, written at creation
//! ├──────────────────────────────┤
//! │ frame: len:u32 crc:u32 payload│  payload = seq:u64 ++ record
//! │ frame: …                      │  crc = crc32(payload)
//! │ …                             │
//! │ (possibly torn final frame)   │  ← tolerated by the reader
//! └──────────────────────────────┘
//! ```
//!
//! ## Durability semantics
//!
//! [`JournalWriter::append`] buffers the frame in memory;
//! [`JournalWriter::commit`] writes the buffer and `fsync`s. The
//! [`FsyncPolicy`] decides how often that happens automatically. A
//! crash loses exactly the appends since the last commit — never a
//! committed record, and never the file's integrity: the reader stops
//! at the first frame that is incomplete or fails its CRC (the torn
//! tail) and reports everything before it.
//!
//! Dropping a writer does **not** flush: an unclean exit is precisely
//! the crash this module exists to survive, so the drop path must not
//! quietly upgrade durability. Call [`JournalWriter::commit`] at
//! shutdown.
//!
//! ## Storage faults and degraded mode
//!
//! The writer performs all file I/O through a [`FaultFile`] handed out
//! by a [`Vfs`] (the real filesystem by default), so storage faults can
//! be injected deterministically. When a commit hits a fault the writer
//! does **not** panic and does **not** lose accepted appends while the
//! process lives:
//!
//! * a failed `fsync` is retried with capped exponential backoff
//!   ([`RetryPolicy`]); if the budget runs out the writer enters
//!   [`Durability::Degraded`];
//! * a failed or torn *write* degrades immediately (retrying an append
//!   after a partial write would bury valid frames behind garbage) and
//!   remembers the last known-good byte offset;
//! * in degraded mode the policy behaves as [`FsyncPolicy::Manual`]
//!   with commits disabled — appends keep buffering in memory and the
//!   caller is expected to surface the state (telemetry, watchdog) and
//!   eventually [`try_heal`](JournalWriter::try_heal): truncate any
//!   torn tail back to the known-good offset, rewrite the buffer, and
//!   re-sync. A process crash while degraded loses exactly the
//!   buffered tail — the same contract as uncommitted appends.

use crate::codec::{decode_exact, CodecError, Decode, Encode};
use crate::crc::crc32;
use crate::vfs::{FaultFile, RealVfs, Vfs};
use std::fs::File;
use std::io::{self, Read};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use vc_obs::{ObsPlane, Site};

/// Journal file magic.
pub const JOURNAL_MAGIC: [u8; 4] = *b"VCWJ";
/// Journal format version. v6: elastic-capacity records —
/// `RegisterAgent` definitions grow the agent pool mid-journal (with a
/// region name) and `DrainAgent` replays the planned evacuation of a
/// draining agent; the snapshot interleaves session and agent growth
/// in one log. v5: chaos-plane records — `ReadmitEnqueue`/
/// `ReadmitDrop` carry the self-healing re-admission queue (sessions
/// displaced by forced evacuations or refused under pressure, with
/// their decorrelated-jitter backoff state), so a mid-storm
/// crash/recover reconstructs queue and backoff bitwise; the snapshot
/// grows the matching queue, epoch, and displacement-counter fields.
/// v4: admission-parity records — `Admit` carries the chosen
/// placement's search tier and repair effort and `Reject` its typed
/// refusal reason (admission is search-dependent since the shared
/// engine landed, so replay installs rather than re-derives, and the
/// per-tier/per-reason counters must recover exactly), plus `Timers`
/// records carrying the worker pool's reconstructible WAIT-countdown
/// state. v3: open-world records — `RegisterSession` definitions grow
/// the universe mid-journal, and the snapshot carries the registered
/// definitions. v2: `FailAgent` replay re-derives the evacuation with
/// the sparse residual-based feasibility rule (PR 3's sharded fleet);
/// v1 stores replayed it through the dense whole-state check.
pub const JOURNAL_VERSION: u16 = 6;
/// The journal versions this build can replay. Decode is gated on this
/// explicit set — a version outside it fails up front with an error
/// naming both sides, instead of misreading bytes under the wrong
/// semantics.
pub const SUPPORTED_JOURNAL_VERSIONS: &[u16] = &[JOURNAL_VERSION];
/// Header length: magic + version + reserved.
pub const HEADER_LEN: usize = 8;
/// Frames longer than this are treated as garbage (a torn length
/// prefix), not as a real record.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// How often appended records are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` on every append — maximum durability, one syscall pair
    /// per event.
    Always,
    /// `fsync` once every `n` appends (and on explicit
    /// [`commit`](JournalWriter::commit)).
    Batch(usize),
    /// Only on explicit [`commit`](JournalWriter::commit) — the caller
    /// owns the durability boundary (e.g. once per telemetry period).
    Manual,
}

/// How a failed `fsync` is retried before the writer degrades.
///
/// The delays are deliberately small: a stalled disk is not going to
/// be argued with, and the whole point of degraded mode is to get off
/// the blocking path and surface the condition instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total sync attempts per commit (≥ 1; the first try included).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A zero-sleep retry policy for tests (same attempt count,
    /// no backoff delay).
    pub fn immediate(attempts: u32) -> Self {
        Self {
            attempts: attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }
}

/// The writer's current durability mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Appends are made durable per the [`FsyncPolicy`].
    Synchronous,
    /// A storage fault exhausted the retry budget: appends buffer in
    /// memory only (an enforced [`FsyncPolicy::Manual`] with commits
    /// parked) until [`JournalWriter::try_heal`] succeeds.
    Degraded,
}

/// Why reading a journal failed outright (torn tails are *not* errors;
/// see [`TailStatus`]).
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error.
    Io(io::Error),
    /// The header exists but is not a journal, or a CRC-valid frame
    /// failed to decode (bit rot the CRC happened to miss, or a
    /// format/version bug).
    Corrupt {
        /// Byte offset of the problem.
        offset: u64,
        /// Human-readable cause.
        reason: String,
    },
    /// The journal was written by a format version outside
    /// [`SUPPORTED_JOURNAL_VERSIONS`].
    Version {
        /// The version found in the file header.
        found: u16,
        /// The versions this build can replay.
        supported: &'static [u16],
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal I/O error: {e}"),
            Self::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
            Self::Version { found, supported } => write!(
                f,
                "journal format version {found} unsupported (this build supports {supported:?})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// What the reader found at the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailStatus {
    /// Whether the file ended in an incomplete or CRC-failing frame
    /// (the expected artifact of a crash mid-append).
    pub torn: bool,
    /// Bytes of the file covered by valid frames (header included);
    /// everything past this offset was ignored.
    pub valid_len: u64,
}

/// The append side of the journal. Generic over the record type so the
/// fleet-specific event enum lives with the fleet, not here.
#[derive(Debug)]
pub struct JournalWriter<T: Encode> {
    file: Box<dyn FaultFile>,
    path: PathBuf,
    /// Frames encoded but not yet written to the file.
    buf: Vec<u8>,
    /// Appends since the last fsync.
    pending: usize,
    next_seq: u64,
    policy: FsyncPolicy,
    retry: RetryPolicy,
    /// Bytes known to be fully written (header included). After a torn
    /// write the real file length is somewhere past this; healing
    /// truncates back to it.
    written_len: u64,
    durability: Durability,
    /// A write fault left an unknown tail past `written_len`; healing
    /// must truncate before rewriting.
    torn: bool,
    /// Cumulative fsync attempts that failed (retried or degraded).
    sync_retries: u64,
    /// Optional observability plane: when attached, `append` records a
    /// [`Site::JournalAppend`] span (encode + buffering + any
    /// policy-triggered commit) and `commit` a [`Site::JournalFsync`]
    /// span covering the write + `fsync` pair.
    obs: Option<Arc<ObsPlane>>,
    _record: PhantomData<fn(&T)>,
}

impl<T: Encode> JournalWriter<T> {
    /// Creates (truncating) a journal at `path` whose first record will
    /// carry sequence number `first_seq`. The header is written and
    /// synced immediately so even an empty journal is well-formed.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn create(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        first_seq: u64,
    ) -> io::Result<Self> {
        Self::create_with(path, policy, first_seq, &RealVfs, RetryPolicy::default())
    }

    /// [`create`](Self::create) through an explicit [`Vfs`] and fsync
    /// [`RetryPolicy`] — the fault-injection entry point.
    ///
    /// # Errors
    ///
    /// Any filesystem error. Creation does not degrade: a journal that
    /// cannot even write its header durably does not exist.
    pub fn create_with(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        first_seq: u64,
        vfs: &dyn Vfs,
        retry: RetryPolicy,
    ) -> io::Result<Self> {
        let path = path.into();
        let mut file = vfs.create(&path)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Self {
            file,
            path,
            buf: Vec::new(),
            pending: 0,
            next_seq: first_seq,
            policy,
            retry,
            written_len: HEADER_LEN as u64,
            durability: Durability::Synchronous,
            torn: false,
            sync_retries: 0,
            obs: None,
            _record: PhantomData,
        })
    }

    /// Attaches an observability plane. Journals are recreated on
    /// rotation (checkpoint, recovery), so callers re-attach at every
    /// creation point; the plane itself is shared and keeps history.
    pub fn set_obs(&mut self, obs: Arc<ObsPlane>) {
        self.obs = Some(obs);
    }

    /// Appends one record, assigning and returning its sequence number.
    /// Durability follows the writer's [`FsyncPolicy`].
    ///
    /// Storage faults in a policy-triggered commit do **not** surface
    /// here: the writer retries, then degrades (see
    /// [`durability`](Self::durability)) — the append itself is always
    /// accepted and buffered.
    ///
    /// # Errors
    ///
    /// None today; the `Result` is kept so callers stay fault-aware.
    pub fn append(&mut self, record: &T) -> io::Result<u64> {
        let t0 = self.obs.as_ref().and_then(|o| o.timer());
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut payload = Vec::with_capacity(32);
        seq.encode(&mut payload);
        record.encode(&mut payload);
        let len = u32::try_from(payload.len()).expect("record under 4 GiB");
        assert!(len <= MAX_FRAME_LEN, "record exceeds MAX_FRAME_LEN");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.pending += 1;
        match self.policy {
            FsyncPolicy::Always => self.commit()?,
            FsyncPolicy::Batch(n) if self.pending >= n.max(1) => self.commit()?,
            _ => {}
        }
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            obs.record_since(Site::JournalAppend, Some(t0));
        }
        Ok(seq)
    }

    /// Writes all buffered frames and `fsync`s: every append so far is
    /// durable when this returns with the writer still
    /// [`Durability::Synchronous`].
    ///
    /// A failed `fsync` is retried under the [`RetryPolicy`]; when the
    /// budget runs out — or a write faults — the writer flips to
    /// [`Durability::Degraded`] and returns `Ok(())`: the caller's data
    /// is buffered, not lost, and the degraded state is the signal
    /// (panicking here would turn an injectable disk fault into a
    /// control-plane outage). While degraded, `commit` is a no-op until
    /// [`try_heal`](Self::try_heal) succeeds.
    ///
    /// # Errors
    ///
    /// None today; the `Result` is kept so callers stay fault-aware.
    pub fn commit(&mut self) -> io::Result<()> {
        if self.durability == Durability::Degraded {
            return Ok(());
        }
        let t0 = if self.pending > 0 {
            self.obs.as_ref().and_then(|o| o.timer())
        } else {
            None
        };
        if !self.buf.is_empty() {
            if self.file.write_all(&self.buf).is_err() {
                // The file tail is now unknown (possibly a torn frame);
                // keep the buffer for healing and stop writing.
                self.torn = true;
                self.durability = Durability::Degraded;
                return Ok(());
            }
            self.written_len += self.buf.len() as u64;
            self.buf.clear();
        }
        if self.pending > 0 {
            if !self.sync_with_retry() {
                self.durability = Durability::Degraded;
                return Ok(());
            }
            self.pending = 0;
        }
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            obs.record_since(Site::JournalFsync, Some(t0));
        }
        Ok(())
    }

    /// `sync_data` under the retry policy: capped exponential backoff
    /// between attempts, `true` on success.
    fn sync_with_retry(&mut self) -> bool {
        let mut delay = self.retry.base_delay;
        for attempt in 1..=self.retry.attempts.max(1) {
            if self.file.sync_data().is_ok() {
                return true;
            }
            self.sync_retries += 1;
            if attempt < self.retry.attempts.max(1) {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                delay = (delay * 2).min(self.retry.max_delay);
            }
        }
        false
    }

    /// One attempt to leave degraded mode: truncate any torn tail back
    /// to the last fully-written frame boundary, rewrite the buffered
    /// frames, and `fsync` (one shot — the caller owns the retry
    /// cadence here). Returns `true` when the writer is synchronous
    /// again, with every accepted append durable.
    ///
    /// No-op `true` when the writer was never degraded.
    pub fn try_heal(&mut self) -> bool {
        if self.durability == Durability::Synchronous {
            return true;
        }
        if self.torn {
            if self.file.truncate(self.written_len).is_err() {
                return false;
            }
            self.torn = false;
        }
        if !self.buf.is_empty() {
            if self.file.write_all(&self.buf).is_err() {
                self.torn = true;
                return false;
            }
            self.written_len += self.buf.len() as u64;
            self.buf.clear();
        }
        if self.pending > 0 {
            if self.file.sync_data().is_err() {
                self.sync_retries += 1;
                return false;
            }
            self.pending = 0;
        }
        self.durability = Durability::Synchronous;
        true
    }

    /// The writer's current durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// `true` when a storage fault has parked commits (see
    /// [`Durability::Degraded`]).
    pub fn degraded(&self) -> bool {
        self.durability == Durability::Degraded
    }

    /// Cumulative failed `fsync` attempts (retried or degraded).
    pub fn sync_retries(&self) -> u64 {
        self.sync_retries
    }

    /// Bytes of appended frames currently buffered in memory (what a
    /// crash right now would lose).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends not yet made durable.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads every valid record of a journal, in order, stopping cleanly at
/// a torn tail (incomplete frame, garbage length, or CRC mismatch).
///
/// # Errors
///
/// [`JournalError::Corrupt`] if the file is not a journal at all or a
/// CRC-valid frame fails to decode; [`JournalError::Version`] on a
/// format version mismatch; [`JournalError::Io`] on filesystem errors.
/// A missing-or-short header reads as an empty, torn journal rather
/// than an error, so recovery after a crash at creation time works.
pub fn read_journal<T: Decode>(path: &Path) -> Result<(Vec<(u64, T)>, TailStatus), JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN {
        return Ok((
            Vec::new(),
            TailStatus {
                torn: !bytes.is_empty(),
                valid_len: 0,
            },
        ));
    }
    if bytes[..4] != JOURNAL_MAGIC {
        return Err(JournalError::Corrupt {
            offset: 0,
            reason: "bad magic".into(),
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if !SUPPORTED_JOURNAL_VERSIONS.contains(&version) {
        return Err(JournalError::Version {
            found: version,
            supported: SUPPORTED_JOURNAL_VERSIONS,
        });
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok((
                records,
                TailStatus {
                    torn: false,
                    valid_len: pos as u64,
                },
            ));
        }
        if remaining < 8 {
            break; // torn length/crc prefix
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len as u64 > MAX_FRAME_LEN as u64 || remaining - 8 < len {
            break; // garbage or truncated payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // torn or bit-flipped frame
        }
        let (seq, record) =
            decode_exact::<(u64, T)>(payload).map_err(|e: CodecError| JournalError::Corrupt {
                offset: pos as u64,
                reason: format!("CRC-valid frame failed to decode: {e}"),
            })?;
        records.push((seq, record));
        pos += 8 + len;
    }
    Ok((
        records,
        TailStatus {
            torn: true,
            valid_len: pos as u64,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-persist")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn append_commit_read_round_trip() {
        let dir = tmp_dir("journal-round-trip");
        let path = dir.join("j.vcwal");
        let mut w = JournalWriter::<u64>::create(&path, FsyncPolicy::Manual, 1).expect("create");
        for v in [10u64, 20, 30] {
            w.append(&v).expect("append");
        }
        assert_eq!(w.pending(), 3);
        w.commit().expect("commit");
        assert_eq!(w.pending(), 0);
        let (records, tail) = read_journal::<u64>(&path).expect("read");
        assert_eq!(records, vec![(1, 10), (2, 20), (3, 30)]);
        assert!(!tail.torn);
    }

    #[test]
    fn uncommitted_appends_are_not_on_disk() {
        let dir = tmp_dir("journal-uncommitted");
        let path = dir.join("j.vcwal");
        let mut w = JournalWriter::<u64>::create(&path, FsyncPolicy::Manual, 0).expect("create");
        w.append(&7u64).expect("append");
        drop(w); // crash: no flush on drop
        let (records, tail) = read_journal::<u64>(&path).expect("read");
        assert!(records.is_empty());
        assert!(!tail.torn);
    }

    #[test]
    fn batch_policy_syncs_every_n() {
        let dir = tmp_dir("journal-batch");
        let path = dir.join("j.vcwal");
        let mut w = JournalWriter::<u64>::create(&path, FsyncPolicy::Batch(2), 0).expect("create");
        w.append(&1u64).expect("append");
        assert_eq!(w.pending(), 1);
        w.append(&2u64).expect("append"); // triggers the batch commit
        assert_eq!(w.pending(), 0);
        w.append(&3u64).expect("append");
        drop(w); // the third append dies with the crash
        let (records, _) = read_journal::<u64>(&path).expect("read");
        assert_eq!(records, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn every_truncation_reads_a_clean_prefix() {
        let dir = tmp_dir("journal-truncate");
        let path = dir.join("j.vcwal");
        let mut w = JournalWriter::<u64>::create(&path, FsyncPolicy::Always, 0).expect("create");
        for v in 0..5u64 {
            w.append(&(v * 100)).expect("append");
        }
        let bytes = fs::read(&path).expect("read file");
        for cut in 0..=bytes.len() {
            let p = dir.join("cut.vcwal");
            fs::write(&p, &bytes[..cut]).expect("write prefix");
            let (records, tail) = read_journal::<u64>(&p).expect("prefix reads");
            // A prefix never yields an invalid record, and the record
            // values are exactly the longest whole-frame prefix.
            for (i, (seq, v)) in records.iter().enumerate() {
                assert_eq!(*seq, i as u64);
                assert_eq!(*v, i as u64 * 100);
            }
            assert!(tail.valid_len as usize <= cut.max(HEADER_LEN));
            if cut == bytes.len() {
                assert!(!tail.torn);
                assert_eq!(records.len(), 5);
            }
        }
    }

    #[test]
    fn crc_mismatch_is_a_torn_tail() {
        let dir = tmp_dir("journal-bitflip");
        let path = dir.join("j.vcwal");
        let mut w = JournalWriter::<u64>::create(&path, FsyncPolicy::Always, 0).expect("create");
        w.append(&1u64).expect("append");
        w.append(&2u64).expect("append");
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload bit of the final frame
        fs::write(&path, &bytes).expect("write");
        let (records, tail) = read_journal::<u64>(&path).expect("read");
        assert_eq!(records, vec![(0, 1)]);
        assert!(tail.torn);
    }

    #[test]
    fn unsupported_version_names_found_and_supported() {
        let dir = tmp_dir("journal-version");
        let path = dir.join("j.vcwal");
        let mut w = JournalWriter::<u64>::create(&path, FsyncPolicy::Always, 0).expect("create");
        w.append(&1u64).expect("append");
        let mut bytes = fs::read(&path).expect("read");
        bytes[4] = 0x7F; // clobber the version field
        fs::write(&path, &bytes).expect("write");
        let err = read_journal::<u64>(&path).expect_err("version must be refused");
        assert!(matches!(err, JournalError::Version { found: 0x7F, .. }));
        let msg = err.to_string();
        assert!(
            msg.contains("127") && msg.contains(&format!("{SUPPORTED_JOURNAL_VERSIONS:?}")),
            "message must name found vs supported: {msg}"
        );
    }

    #[test]
    fn non_journal_file_is_corrupt() {
        let dir = tmp_dir("journal-corrupt");
        let path = dir.join("j.vcwal");
        fs::write(&path, b"definitely not a journal").expect("write");
        assert!(matches!(
            read_journal::<u64>(&path),
            Err(JournalError::Corrupt { .. })
        ));
    }
}
