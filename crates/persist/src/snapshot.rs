//! Snapshot files and the on-disk store layout.
//!
//! A persistence directory holds two kinds of files, both named by the
//! event sequence numbers they cover (zero-padded so lexicographic
//! order is numeric order):
//!
//! ```text
//! snapshot-00000000000000000042.vcsnap   state after applying seq ≤ 42
//! journal-00000000000000000043.vcwal     records with seq ≥ 43
//! ```
//!
//! ## Snapshot format
//!
//! ```text
//! "VCSN" ver:u16 rsv:u16 len:u32 crc:u32 payload
//! payload = seq:u64 ++ state
//! ```
//!
//! Snapshots are written **atomically**: the bytes go to a temporary
//! file which is `fsync`ed and then renamed into place (rename is
//! atomic on POSIX filesystems), and the directory is `fsync`ed so the
//! new name itself is durable. A crash mid-write leaves at worst a
//! stale `.tmp` file, never a half-visible snapshot.
//!
//! ## Compaction
//!
//! A snapshot at seq `N` supersedes every journal record with
//! seq ≤ `N` and every older snapshot. [`compact`] deletes those,
//! bounding the store at one snapshot plus the journal tail written
//! since it.

use crate::codec::{decode_exact, encode_to_vec, CodecError, Decode, Encode};
use crate::crc::crc32;
use crate::vfs::{RealVfs, Vfs};
use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"VCSN";
/// Snapshot format version (kept in lock-step with the journal: a v6
/// snapshot's tail journal replays under v6 semantics). v6 snapshots
/// carry the interleaved session/agent growth log, the per-agent
/// drained flags, and the region table (elastic capacity); v5 added
/// the re-admission queue (entries, per-session backoff epochs) and
/// the displacement/readmission counters; v4 added the admission
/// tier/refusal counters and the worker pool's WAIT-timer state; v3
/// added the online-registered session definitions, which v2 lacked.
pub const SNAPSHOT_VERSION: u16 = 6;
/// The snapshot versions this build can load; decode is gated on this
/// explicit set (see the journal's twin constant).
pub const SUPPORTED_SNAPSHOT_VERSIONS: &[u16] = &[SNAPSHOT_VERSION];

const SNAPSHOT_PREFIX: &str = "snapshot-";
const SNAPSHOT_SUFFIX: &str = ".vcsnap";
const JOURNAL_PREFIX: &str = "journal-";
const JOURNAL_SUFFIX: &str = ".vcwal";

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error.
    Io(io::Error),
    /// Not a snapshot, truncated, or failed its CRC.
    Corrupt(String),
    /// Written by a format version outside
    /// [`SUPPORTED_SNAPSHOT_VERSIONS`].
    Version {
        /// The version found in the file header.
        found: u16,
        /// The versions this build can load.
        supported: &'static [u16],
    },
    /// CRC-valid payload failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
            Self::Corrupt(reason) => write!(f, "snapshot corrupt: {reason}"),
            Self::Version { found, supported } => write!(
                f,
                "snapshot format version {found} unsupported (this build supports {supported:?})"
            ),
            Self::Codec(e) => write!(f, "snapshot payload undecodable: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// The canonical snapshot path for sequence number `seq`.
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{seq:020}{SNAPSHOT_SUFFIX}"))
}

/// The canonical journal path for a journal starting at `first_seq`.
pub fn journal_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("{JOURNAL_PREFIX}{first_seq:020}{JOURNAL_SUFFIX}"))
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes the rename itself durable. Some
    // filesystems refuse to sync a directory handle; that only weakens
    // durability of the *name*, not file contents, so ignore it.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Writes state covering all events with sequence number ≤ `seq`
/// atomically, returning the snapshot path.
///
/// # Errors
///
/// Any filesystem error.
pub fn write_snapshot<S: Encode>(dir: &Path, seq: u64, state: &S) -> io::Result<PathBuf> {
    write_snapshot_with(dir, seq, state, &RealVfs)
}

/// [`write_snapshot`] through an explicit [`Vfs`] so storage faults
/// (failed sync, torn write, refused rename) can be injected into the
/// snapshot path. A faulted write fails cleanly here — at worst a stale
/// `.tmp` is left behind, never a half-visible snapshot — and the
/// caller decides whether that degrades anything (the journal is the
/// durability path; snapshots only bound replay length).
///
/// # Errors
///
/// Any filesystem error.
pub fn write_snapshot_with<S: Encode>(
    dir: &Path,
    seq: u64,
    state: &S,
    vfs: &dyn Vfs,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let payload = encode_to_vec(&(seq, StateRef(state)));
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("snapshot under 4 GiB")
            .to_le_bytes(),
    );
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let tmp = dir.join(format!("{SNAPSHOT_PREFIX}{seq:020}.tmp"));
    let path = snapshot_path(dir, seq);
    let mut file = vfs.create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    vfs.rename(&tmp, &path)?;
    fsync_dir(dir)?;
    Ok(path)
}

/// Loads one snapshot file, returning `(seq, state)`.
///
/// # Errors
///
/// See [`SnapshotError`].
pub fn load_snapshot<S: Decode>(path: &Path) -> Result<(u64, S), SnapshotError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 16 {
        return Err(SnapshotError::Corrupt("shorter than the header".into()));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if !SUPPORTED_SNAPSHOT_VERSIONS.contains(&version) {
        return Err(SnapshotError::Version {
            found: version,
            supported: SUPPORTED_SNAPSHOT_VERSIONS,
        });
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let payload = bytes
        .get(16..16 + len)
        .ok_or_else(|| SnapshotError::Corrupt("truncated payload".into()))?;
    if crc32(payload) != crc {
        return Err(SnapshotError::Corrupt("CRC mismatch".into()));
    }
    decode_exact::<(u64, S)>(payload).map_err(SnapshotError::Codec)
}

/// Finds and loads the newest snapshot that validates, skipping
/// corrupt ones (a crash can tear at most the in-flight `.tmp`, but
/// defense in depth costs one extra load attempt). Returns `None` for
/// an empty or snapshot-less directory.
///
/// # Errors
///
/// Only filesystem errors; corrupt snapshots are skipped, not fatal.
pub fn latest_snapshot<S: Decode>(dir: &Path) -> Result<Option<(u64, S)>, SnapshotError> {
    let mut seqs = list_seqs(dir, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX)?;
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    for seq in seqs {
        if let Ok((file_seq, state)) = load_snapshot::<S>(&snapshot_path(dir, seq)) {
            return Ok(Some((file_seq, state)));
        }
    }
    Ok(None)
}

/// All journal files of `dir` as `(first_seq, path)`, ascending.
///
/// # Errors
///
/// Any filesystem error.
pub fn journal_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, io::Error> {
    let mut seqs = list_seqs(dir, JOURNAL_PREFIX, JOURNAL_SUFFIX).map_err(io_of)?;
    seqs.sort_unstable();
    Ok(seqs
        .into_iter()
        .map(|s| (s, journal_path(dir, s)))
        .collect())
}

fn io_of(e: SnapshotError) -> io::Error {
    match e {
        SnapshotError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}

fn list_seqs(dir: &Path, prefix: &str, suffix: &str) -> Result<Vec<u64>, SnapshotError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(seq) = entry
            .file_name()
            .to_str()
            .and_then(|n| parse_seq(n, prefix, suffix))
        {
            out.push(seq);
        }
    }
    Ok(out)
}

/// Deletes everything superseded by the snapshot at `snapshot_seq`:
/// older snapshots, journal files starting at or before `snapshot_seq`
/// (their records all have seq ≤ `snapshot_seq` under the
/// rotate-on-checkpoint discipline), and stale `.tmp` files. Returns
/// the number of files removed.
///
/// # Errors
///
/// Any filesystem error.
pub fn compact(dir: &Path, snapshot_seq: u64) -> io::Result<usize> {
    let mut removed = 0;
    for seq in list_seqs(dir, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX).map_err(io_of)? {
        if seq < snapshot_seq {
            fs::remove_file(snapshot_path(dir, seq))?;
            removed += 1;
        }
    }
    for seq in list_seqs(dir, JOURNAL_PREFIX, JOURNAL_SUFFIX).map_err(io_of)? {
        if seq <= snapshot_seq {
            fs::remove_file(journal_path(dir, seq))?;
            removed += 1;
        }
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.starts_with(SNAPSHOT_PREFIX) && n.ends_with(".tmp"))
        {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    fsync_dir(dir)?;
    Ok(removed)
}

/// Encode-by-reference adapter so `(seq, state)` can be encoded
/// without cloning the state.
struct StateRef<'a, S: Encode>(&'a S);

impl<S: Encode> Encode for StateRef<'_, S> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-persist")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = tmp_dir("snap-round-trip");
        let state = vec![(3u32, 1.25f64), (9, -0.0)];
        write_snapshot(&dir, 42, &state).expect("write");
        let (seq, back): (u64, Vec<(u32, f64)>) =
            load_snapshot(&snapshot_path(&dir, 42)).expect("load");
        assert_eq!(seq, 42);
        assert_eq!(back, state);
    }

    #[test]
    fn latest_snapshot_skips_corrupt_files() {
        let dir = tmp_dir("snap-latest");
        write_snapshot(&dir, 5, &vec![1u32]).expect("write");
        write_snapshot(&dir, 9, &vec![2u32]).expect("write");
        // Corrupt the newest: recovery must fall back to seq 5.
        let newest = snapshot_path(&dir, 9);
        let mut bytes = fs::read(&newest).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).expect("write");
        let (seq, state): (u64, Vec<u32>) =
            latest_snapshot(&dir).expect("scan").expect("found one");
        assert_eq!(seq, 5);
        assert_eq!(state, vec![1]);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp_dir("snap-empty");
        assert!(latest_snapshot::<Vec<u32>>(&dir).expect("scan").is_none());
        let missing = dir.join("nowhere");
        assert!(latest_snapshot::<Vec<u32>>(&missing)
            .expect("missing dir is empty")
            .is_none());
    }

    #[test]
    fn compact_removes_superseded_files() {
        let dir = tmp_dir("snap-compact");
        write_snapshot(&dir, 3, &vec![1u32]).expect("write");
        write_snapshot(&dir, 8, &vec![2u32]).expect("write");
        fs::write(journal_path(&dir, 1), b"x").expect("write");
        fs::write(journal_path(&dir, 4), b"x").expect("write");
        fs::write(journal_path(&dir, 9), b"x").expect("write");
        fs::write(dir.join("snapshot-00000000000000000099.tmp"), b"x").expect("write");
        let removed = compact(&dir, 8).expect("compact");
        assert_eq!(removed, 4); // snapshot-3, journal-1, journal-4, tmp
        assert!(snapshot_path(&dir, 8).exists());
        assert!(journal_path(&dir, 9).exists());
        assert!(!journal_path(&dir, 4).exists());
    }

    #[test]
    fn version_mismatch_is_detected() {
        let dir = tmp_dir("snap-version");
        write_snapshot(&dir, 1, &vec![1u32]).expect("write");
        let path = snapshot_path(&dir, 1);
        let mut bytes = fs::read(&path).expect("read");
        bytes[4] = 0xFF; // clobber the version field
        fs::write(&path, &bytes).expect("write");
        let err = load_snapshot::<Vec<u32>>(&path).expect_err("version must be refused");
        assert!(matches!(err, SnapshotError::Version { found: 0xFF, .. }));
        // The message names both sides of the mismatch.
        let msg = err.to_string();
        assert!(msg.contains("255") && msg.contains(&format!("{SUPPORTED_SNAPSHOT_VERSIONS:?}")));
    }
}
