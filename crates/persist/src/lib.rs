//! `vc-persist` — durability for the orchestrator control plane.
//!
//! The paper's dispatcher is a long-lived process: Algorithm 1 sessions
//! WAIT/HOP continuously while conferences arrive and depart, so the
//! control-plane state (assignments, ledger reservations, counters) is
//! the product of an unbounded event history. This crate makes that
//! state survive a crash with two complementary artifacts:
//!
//! * a **write-ahead event journal** ([`journal`]) — every fleet
//!   mutation is appended as a CRC-checked, length-prefixed frame
//!   *before* the caller observes its effect as durable; appends are
//!   buffered and fsynced in batches (see [`journal::FsyncPolicy`]);
//! * periodic **snapshots** ([`snapshot`]) — the full control-plane
//!   state written atomically (temp file + rename), superseding the
//!   journal prefix so the log can be **compacted**.
//!
//! Both writers perform file I/O through an injectable storage layer
//! ([`vfs`]): the real filesystem by default, or a fault plane
//! (`vc-chaos`) that injects fsync errors, torn writes, and `ENOSPC`
//! at exact byte offsets. On a storage fault the journal retries with
//! capped backoff, then **degrades** instead of panicking — appends
//! keep buffering in memory and the condition surfaces through
//! telemetry until healed (see [`journal::Durability`]).
//!
//! Recovery loads the latest valid snapshot, replays the journal tail
//! (tolerating a torn final record — the expected artifact of a crash
//! mid-append), and hands the reconstructed state back for re-audit.
//!
//! Everything is serialized with a **hand-rolled, versioned binary
//! codec** ([`codec`]): the workspace builds offline and the vendored
//! `serde` derive is a deliberate no-op (see `vendor/README.md`), so
//! durability cannot lean on it. The codec is little-endian,
//! length-prefixed, and exact: `f64` round-trips through its bit
//! pattern, so a recovered objective equals the pre-crash objective to
//! the last bit.
//!
//! This crate only knows about `vc-model`/`vc-core` types plus its own
//! framing; the fleet-specific record types and the recovery path
//! (`Fleet::recover`) live in `vc-orchestrator::persist`, which builds
//! on the generic machinery here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod journal;
pub mod snapshot;
pub mod vfs;

pub use codec::{decode_exact, encode_to_vec, CodecError, Decode, Encode, Reader};
pub use crc::crc32;
pub use journal::{
    read_journal, Durability, FsyncPolicy, JournalError, JournalWriter, RetryPolicy, TailStatus,
    JOURNAL_MAGIC, JOURNAL_VERSION, SUPPORTED_JOURNAL_VERSIONS,
};
pub use snapshot::{
    compact, journal_files, journal_path, latest_snapshot, load_snapshot, snapshot_path,
    write_snapshot, write_snapshot_with, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
    SUPPORTED_SNAPSHOT_VERSIONS,
};
pub use vfs::{real_vfs, FaultFile, RealVfs, Vfs};
