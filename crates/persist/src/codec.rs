//! The hand-rolled binary codec: [`Encode`] / [`Decode`] plus impls for
//! primitives, containers, and the model/core state types.
//!
//! Format rules (all multi-byte values little-endian):
//!
//! * integers are fixed-width (`u8`/`u16`/`u32`/`u64`); `usize` travels
//!   as `u64` and is range-checked on decode;
//! * `f64` is its IEEE-754 bit pattern — encode ∘ decode is the
//!   identity on every value, including `-0.0`, infinities and NaNs, so
//!   recovered objectives equal pre-crash objectives *bitwise*;
//! * `bool` is one byte, `0` or `1`; any other byte is rejected;
//! * sequences are a `u32` length prefix followed by the elements;
//!   enums are a one-byte tag followed by the variant's fields;
//! * decoding is *exact*: [`decode_exact`] rejects trailing bytes, and
//!   every truncation of a valid encoding fails with
//!   [`CodecError::UnexpectedEof`] (property-tested in
//!   `tests/persist_recovery.rs`).
//!
//! There is deliberately no self-description and no schema evolution
//! within a version: compatibility is handled one level up by the
//! journal/snapshot container version fields.

use std::error::Error;
use std::fmt;
use vc_core::{Decision, TaskId};
use vc_model::{
    AgentDef, AgentId, AgentSpec, Capacity, DownstreamDemand, ReprId, SessionDef, SessionId,
    UserDef, UserId,
};

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value did.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// An enum tag (or `bool` byte) had no meaning.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length prefix exceeds what the buffer could possibly hold.
    Oversize {
        /// The type being decoded.
        what: &'static str,
        /// The claimed element count.
        len: u64,
    },
    /// [`decode_exact`] decoded a value but bytes were left over.
    Trailing {
        /// Leftover byte count.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected EOF: needed {needed} bytes, {remaining} left")
            }
            Self::BadTag { what, tag } => write!(f, "bad tag {tag:#04x} decoding {what}"),
            Self::Oversize { what, len } => {
                write!(f, "length prefix {len} decoding {what} exceeds the buffer")
            }
            Self::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after an exact decode")
            }
        }
    }
}

impl Error for CodecError {}

/// A cursor over an immutable byte buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes"))
    }
}

/// Serialization into a growable byte buffer.
pub trait Encode {
    /// Appends the value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Deserialization from a [`Reader`].
pub trait Decode: Sized {
    /// Reads one value.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`]; on error the reader position is unspecified.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value into a fresh buffer.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value that must consume the entire buffer.
///
/// # Errors
///
/// Any [`CodecError`], including [`CodecError::Trailing`] when bytes
/// remain after the value.
pub fn decode_exact<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError::Trailing {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

macro_rules! int_codec {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
            }

            impl Decode for $ty {
                fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                    Ok(<$ty>::from_le_bytes(r.array()?))
                }
            }
        )*
    };
}

int_codec!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| CodecError::Oversize {
            what: "usize",
            len: v,
        })
    }
}

impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        u32::try_from(self.len())
            .expect("string length exceeds u32::MAX")
            .encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u32::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadTag {
            what: "String (invalid UTF-8)",
            tag: 0,
        })
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        u32::try_from(self.len())
            .expect("sequence length exceeds u32::MAX")
            .encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u32::decode(r)? as usize;
        // Every element costs at least one byte, so a length prefix
        // beyond the remaining bytes is corruption — refuse it before
        // allocating.
        if len > r.remaining() {
            return Err(CodecError::Oversize {
                what: "Vec",
                len: len as u64,
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

macro_rules! id_codec {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, out: &mut Vec<u8>) {
                    (u32::try_from(self.index()).expect("dense id fits u32")).encode(out);
                }
            }

            impl Decode for $ty {
                fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                    Ok(<$ty>::new(u32::decode(r)?))
                }
            }
        )*
    };
}

id_codec!(AgentId, SessionId, UserId, ReprId, TaskId);

impl Encode for Decision {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Decision::User(u, a) => {
                out.push(0);
                u.encode(out);
                a.encode(out);
            }
            Decision::Task(t, a) => {
                out.push(1);
                t.encode(out);
                a.encode(out);
            }
        }
    }
}

impl Decode for Decision {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(Decision::User(UserId::decode(r)?, AgentId::decode(r)?)),
            1 => Ok(Decision::Task(TaskId::decode(r)?, AgentId::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "Decision",
                tag,
            }),
        }
    }
}

impl Encode for UserDef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.upstream.encode(out);
        self.downstream.default_repr().encode(out);
        // BTreeMap iterates ascending — a canonical encoding.
        let overrides: Vec<(UserId, ReprId)> = self
            .downstream
            .overrides()
            .iter()
            .map(|(&u, &r)| (u, r))
            .collect();
        overrides.encode(out);
        self.agent_delays_ms.encode(out);
        self.site_index.encode(out);
    }
}

impl Decode for UserDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let upstream = ReprId::decode(r)?;
        let default = ReprId::decode(r)?;
        let overrides = Vec::<(UserId, ReprId)>::decode(r)?;
        let mut downstream = DownstreamDemand::uniform(default);
        for (u, rep) in overrides {
            downstream = downstream.with_override(u, rep);
        }
        Ok(Self {
            upstream,
            downstream,
            agent_delays_ms: Vec::decode(r)?,
            site_index: Option::decode(r)?,
        })
    }
}

impl Encode for SessionDef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.users.encode(out);
    }
}

impl Decode for SessionDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            users: Vec::decode(r)?,
        })
    }
}

impl Encode for Capacity {
    fn encode(&self, out: &mut Vec<u8>) {
        self.upload_mbps.encode(out);
        self.download_mbps.encode(out);
        self.transcode_slots.encode(out);
    }
}

impl Decode for Capacity {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            upload_mbps: f64::decode(r)?,
            download_mbps: f64::decode(r)?,
            transcode_slots: u32::decode(r)?,
        })
    }
}

impl Encode for AgentSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name().to_string().encode(out);
        self.capacity().encode(out);
        self.speed_factor().encode(out);
        self.price_per_mbps().encode(out);
        self.price_per_task().encode(out);
    }
}

impl Decode for AgentSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = String::decode(r)?;
        let capacity = Capacity::decode(r)?;
        let speed_factor = f64::decode(r)?;
        let price_per_mbps = f64::decode(r)?;
        let price_per_task = f64::decode(r)?;
        // The builder asserts positivity; a corrupt frame (including a
        // NaN, which fails this comparison) must decode to an error,
        // never a panic.
        if speed_factor.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CodecError::BadTag {
                what: "AgentSpec (non-positive speed factor)",
                tag: 0,
            });
        }
        Ok(AgentSpec::builder(name)
            .capacity(capacity)
            .speed_factor(speed_factor)
            .price_per_mbps(price_per_mbps)
            .price_per_task(price_per_task)
            .build())
    }
}

impl Encode for AgentDef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.spec.encode(out);
        self.inter_agent_ms.encode(out);
        self.user_delays_ms.encode(out);
    }
}

impl Decode for AgentDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            spec: AgentSpec::decode(r)?,
            inter_agent_ms: Vec::decode(r)?,
            user_delays_ms: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_exact::<T>(&bytes).expect("decodes"), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f64);
        round_trip(-0.0f64);
        round_trip(f64::INFINITY);
        assert!(decode_exact::<f64>(&encode_to_vec(&f64::NAN))
            .expect("NaN decodes")
            .is_nan());
    }

    #[test]
    fn f64_round_trip_is_bitwise() {
        for v in [1.0 / 3.0, 1e-300, f64::MIN_POSITIVE, -f64::EPSILON] {
            let back: f64 = decode_exact(&encode_to_vec(&v)).expect("decodes");
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip((UserId::new(3), AgentId::new(1)));
        round_trip(vec![(SessionId::new(0), 2.5f64), (SessionId::new(9), -1.0)]);
    }

    #[test]
    fn ids_and_decisions_round_trip() {
        round_trip(AgentId::new(7));
        round_trip(SessionId::new(0));
        round_trip(UserId::new(u32::MAX));
        round_trip(TaskId::new(12));
        round_trip(Decision::User(UserId::new(4), AgentId::new(2)));
        round_trip(Decision::Task(TaskId::new(4), AgentId::new(0)));
    }

    #[test]
    fn bad_bool_and_bad_tag_rejected() {
        assert_eq!(
            decode_exact::<bool>(&[2]),
            Err(CodecError::BadTag {
                what: "bool",
                tag: 2
            })
        );
        assert!(matches!(
            decode_exact::<Decision>(&[9, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn every_truncation_fails() {
        let bytes = encode_to_vec(&vec![
            (UserId::new(1), AgentId::new(2)),
            (UserId::new(3), AgentId::new(4)),
        ]);
        for cut in 0..bytes.len() {
            assert!(
                decode_exact::<Vec<(UserId, AgentId)>>(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn oversize_length_prefix_rejected_before_allocating() {
        let mut bytes = Vec::new();
        u32::MAX.encode(&mut bytes); // claims 4 billion elements, has none
        assert!(matches!(
            decode_exact::<Vec<u64>>(&bytes),
            Err(CodecError::Oversize { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&5u32);
        bytes.push(0);
        assert_eq!(
            decode_exact::<u32>(&bytes),
            Err(CodecError::Trailing { remaining: 1 })
        );
    }
}
