//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Transcoding placement rule** — the Sec. IV-B rule of thumb vs
//!    always-source vs always-destination (initial assignment quality);
//! 2. **AgRank resource awareness** — PageRank damping 0.85 (residuals in
//!    the fixed point) vs 1.0 (the paper's literal power iteration, which
//!    forgets the residual initialization);
//! 3. **β schedule** — constant β = 400 vs linear annealing 20 → 800 over
//!    the same hop budget.

use crate::util::{mean, par_map_seeds};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::admission::{admit_all, AdmissionPolicy};
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::{Alg1Config, Alg1Engine};
use vc_algo::nearest::nearest_assignment;
use vc_algo::placement;
use vc_core::{Assignment, SystemState, UapProblem};
use vc_cost::CostModel;
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// A labeled metric pair.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Mean inter-agent traffic (Mbps).
    pub traffic: f64,
    /// Mean conferencing delay (ms).
    pub delay: f64,
}

/// Ablation 1: transcoding placement rules under Nrst user placement.
pub fn placement_rules(scenarios: usize, base_seed: u64) -> Vec<AblationRow> {
    let seeds: Vec<u64> = (0..scenarios as u64).map(|i| base_seed + i).collect();
    let rows = par_map_seeds(&seeds, |seed| {
        let instance = large_scale_instance(&LargeScaleConfig {
            seed,
            ..LargeScaleConfig::default()
        });
        let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
        let user_agent: Vec<_> = problem
            .instance()
            .user_ids()
            .map(|u| problem.instance().delays().nearest_agent(u))
            .collect();
        [
            placement::rule_of_thumb(&problem, &user_agent),
            placement::always_source(&problem, &user_agent),
            placement::always_destination(&problem, &user_agent),
        ]
        .map(|tasks| {
            let asg = Assignment::new(&problem, user_agent.clone(), tasks);
            let state = SystemState::new(problem.clone(), asg);
            (state.total_traffic_mbps(), state.mean_delay_ms())
        })
    });
    ["rule of thumb", "always source", "always destination"]
        .iter()
        .enumerate()
        .map(|(i, label)| AblationRow {
            label: (*label).into(),
            traffic: mean(&rows.iter().map(|r| r[i].0).collect::<Vec<_>>()),
            delay: mean(&rows.iter().map(|r| r[i].1).collect::<Vec<_>>()),
        })
        .collect()
}

/// Ablation 2: AgRank damping (resource-aware vs oblivious ranking),
/// measured as admission success under scarce bandwidth.
pub fn agrank_damping(scenarios: usize, base_seed: u64) -> Vec<(f64, f64)> {
    let seeds: Vec<u64> = (0..scenarios as u64).map(|i| base_seed + i).collect();
    let dampings = [0.85, 1.0];
    dampings
        .iter()
        .map(|&damping| {
            let successes = par_map_seeds(&seeds, |seed| {
                let instance = large_scale_instance(&LargeScaleConfig {
                    mean_bandwidth_mbps: Some(1000.0),
                    seed,
                    ..LargeScaleConfig::default()
                });
                let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
                let mut config = AgRankConfig::paper(2);
                config.damping = damping;
                admit_all(problem, &AdmissionPolicy::AgRank(config)).success
            });
            let pct =
                100.0 * successes.iter().filter(|s| **s).count() as f64 / scenarios.max(1) as f64;
            (damping, pct)
        })
        .collect()
}

/// Ablation 3: constant β vs annealed β over the same duration.
pub fn beta_schedule(scenarios: usize, duration_s: f64, base_seed: u64) -> Vec<AblationRow> {
    let seeds: Vec<u64> = (0..scenarios as u64).map(|i| base_seed + i).collect();
    let rows = par_map_seeds(&seeds, |seed| {
        let instance = large_scale_instance(&LargeScaleConfig {
            seed,
            ..LargeScaleConfig::default()
        });
        let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
        let engine = Alg1Engine::new(Alg1Config::paper(400.0));
        let mut constant = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let mut rng = StdRng::seed_from_u64(seed);
        engine.run(&mut constant, duration_s, &mut rng);
        let mut annealed = SystemState::new(problem.clone(), nearest_assignment(&problem));
        let mut rng = StdRng::seed_from_u64(seed);
        engine.run_annealed(&mut annealed, duration_s, 20.0, 800.0, &mut rng);
        [
            (constant.total_traffic_mbps(), constant.mean_delay_ms()),
            (annealed.total_traffic_mbps(), annealed.mean_delay_ms()),
        ]
    });
    ["constant beta=400", "annealed beta 20→800"]
        .iter()
        .enumerate()
        .map(|(i, label)| AblationRow {
            label: (*label).into(),
            traffic: mean(&rows.iter().map(|r| r[i].0).collect::<Vec<_>>()),
            delay: mean(&rows.iter().map(|r| r[i].1).collect::<Vec<_>>()),
        })
        .collect()
}

/// Runs and prints all three ablations.
pub fn print_all(scenarios: usize, duration_s: f64, base_seed: u64) {
    println!("Ablation 1 — transcoding placement rule (Nrst users, initial assignment)");
    println!("{:<24} {:>14} {:>12}", "rule", "traffic Mbps", "delay ms");
    for row in placement_rules(scenarios, base_seed) {
        println!(
            "{:<24} {:>14.0} {:>12.1}",
            row.label, row.traffic, row.delay
        );
    }

    println!("\nAblation 2 — AgRank damping (1000 Mbps mean bandwidth, admission success)");
    println!("{:<24} {:>14}", "damping", "success %");
    for (damping, pct) in agrank_damping(scenarios, base_seed) {
        println!("{:<24} {:>13.0}%", damping, pct);
    }

    println!("\nAblation 3 — β schedule over {duration_s} simulated seconds");
    println!(
        "{:<24} {:>14} {:>12}",
        "schedule", "traffic Mbps", "delay ms"
    );
    for row in beta_schedule(scenarios, duration_s, base_seed) {
        println!(
            "{:<24} {:>14.0} {:>12.1}",
            row.label, row.traffic, row.delay
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_rules_produce_three_distinct_rows() {
        let rows = placement_rules(2, 500);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.traffic > 0.0);
            assert!(r.delay > 0.0);
        }
    }

    #[test]
    fn resource_aware_damping_admits_at_least_as_many() {
        let results = agrank_damping(4, 510);
        let aware = results[0].1;
        let oblivious = results[1].1;
        assert!(
            aware >= oblivious - 1e-9,
            "resource-aware {aware}% vs oblivious {oblivious}%"
        );
    }

    #[test]
    fn beta_schedules_both_converge() {
        let rows = beta_schedule(1, 60.0, 520);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.traffic.is_finite());
        }
    }
}
