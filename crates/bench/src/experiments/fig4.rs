//! Fig. 4 — evolution of traffic and delay over 200 s under Alg. 1 with
//! β ∈ {200, 400}, initialized by Nrst.

use super::prototype_nrst_state;
use crate::util::print_series_table;
use vc_algo::markov::Alg1Config;
use vc_sim::{ConferenceSim, SimConfig, SimReport};

/// The experiment output: one report per β.
#[derive(Debug)]
pub struct Fig4Result {
    /// `(β, report)` pairs.
    pub runs: Vec<(f64, SimReport)>,
}

/// Runs both β settings over the same workload and seed.
pub fn run(duration_s: f64, seed: u64) -> Fig4Result {
    let runs = [200.0, 400.0]
        .into_iter()
        .map(|beta| {
            let state = prototype_nrst_state(seed);
            let mut config = SimConfig::paper_default(duration_s, seed);
            config.alg1 = Alg1Config::paper(beta);
            (beta, ConferenceSim::new(state, config).run())
        })
        .collect();
    Fig4Result { runs }
}

/// Prints the two series side by side (10-second grid).
pub fn print(result: &Fig4Result) {
    println!("Fig. 4 — Alg. 1 from the Nrst initial assignment (prototype scale)");
    println!("\n(a) inter-agent traffic (Mbps)");
    let traffic: Vec<(String, &vc_sim::TimeSeries)> = result
        .runs
        .iter()
        .map(|(b, r)| (format!("beta={b}"), &r.traffic))
        .collect();
    let traffic_refs: Vec<(&str, &vc_sim::TimeSeries)> =
        traffic.iter().map(|(l, s)| (l.as_str(), *s)).collect();
    print_series_table(&traffic_refs, 10.0);
    println!("\n(b) conferencing delay (ms)");
    let delay: Vec<(String, &vc_sim::TimeSeries)> = result
        .runs
        .iter()
        .map(|(b, r)| (format!("beta={b}"), &r.delay))
        .collect();
    let delay_refs: Vec<(&str, &vc_sim::TimeSeries)> =
        delay.iter().map(|(l, s)| (l.as_str(), *s)).collect();
    print_series_table(&delay_refs, 10.0);
    for (beta, r) in &result.runs {
        println!(
            "beta={beta}: traffic {:.1} → {:.1} Mbps, delay {:.1} → {:.1} ms, {} hops",
            r.traffic.first_value().unwrap_or(0.0),
            r.traffic.last_value().unwrap_or(0.0),
            r.delay.first_value().unwrap_or(0.0),
            r.delay.last_value().unwrap_or(0.0),
            r.hops.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg1_reduces_traffic_from_nrst() {
        let r = run(120.0, 4);
        for (beta, report) in &r.runs {
            let first = report.traffic.first_value().unwrap();
            let last = report.traffic.last_value().unwrap();
            assert!(
                last < first,
                "beta {beta}: traffic did not fall ({first} → {last})"
            );
        }
    }

    #[test]
    fn both_betas_start_identically() {
        let r = run(30.0, 4);
        assert_eq!(
            r.runs[0].1.traffic.first_value(),
            r.runs[1].1.traffic.first_value()
        );
    }
}
