//! Chaos experiment (extension): deterministic fault storms against
//! the persistent fleet, a mid-storm crash/recovery, and injected
//! `fsync` faults. Emits `BENCH_chaos.json`.
//!
//! Each row drives one fleet scale through the same gauntlet:
//!
//! 1. a fault-free twin establishes the baseline admitted fraction;
//! 2. a persistent fleet (journal on a fault-injecting VFS) rides a
//!    seeded agent-flap storm that forces whole-session displacements
//!    into the self-healing re-admission queue;
//! 3. `fsync` starts failing mid-storm — the journal must degrade to
//!    buffered appends (no control-plane error) and heal once the
//!    fault clears;
//! 4. the process "crashes" mid-storm and recovers from the format-v5
//!    store; an uncrashed control twin drives the identical plan and
//!    the two must finish **bitwise** equal (placements, Φ, counters,
//!    queue entries and their backoff schedule);
//! 5. after the storm the queue must drain and every displaced session
//!    must be live again — the recovered admitted fraction may trail
//!    the fault-free baseline by at most one point.
//!
//! Every quantity here is virtual-clock deterministic given the seed,
//! so the regression gate (`experiments -- check chaos`) compares the
//! fractions exactly and forbids the `parity`/`healed` booleans from
//! flipping.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_chaos::{FaultKind, FaultPlan, FaultyVfs, StorageFault, StorageFaultKind, StormConfig};
use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_model::{AgentId, AgentSpec, Capacity, InstanceBuilder, ReprLadder, SessionId};
use vc_orchestrator::persist::PersistConfig;
use vc_orchestrator::{
    AdmitOutcome, Fleet, FleetConfig, PlacementPolicy, ReadmitConfig, ReoptPool,
};
use vc_persist::journal::{FsyncPolicy, RetryPolicy};

/// One fleet-scale measurement.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Sessions in the universe (the row key).
    pub sessions: usize,
    /// Agents in the universe (one transcode slot each — the scarce
    /// resource that forces displacement when a task holder dies).
    pub agents: usize,
    /// Storm events applied (fail + restore).
    pub storm_events: usize,
    /// Whole-session displacements into the re-admission queue.
    pub displaced: usize,
    /// Sessions the queue re-admitted.
    pub readmitted: usize,
    /// Sessions dropped after exhausting their retry budget (must be 0
    /// for `healed`).
    pub dropped: usize,
    /// Single-decision evacuation moves that found a feasible target.
    pub evacuations: usize,
    /// Live fraction of the fault-free twin at the horizon.
    pub baseline_admitted_fraction: f64,
    /// Live fraction of the crashed/recovered storm fleet at the
    /// horizon.
    pub recovered_admitted_fraction: f64,
    /// `recovered ≥ baseline − 0.01` (the acceptance bound).
    pub within_one_point: bool,
    /// Crashed/recovered run finished bitwise equal to the uncrashed
    /// control twin (state, queue, Φ bits).
    pub parity: bool,
    /// Queue drained, nothing dropped, and every pre-storm session is
    /// live again at the horizon.
    pub healed: bool,
    /// Virtual seconds from the last storm event until the queue
    /// emptied (0.1 s resolution).
    pub queue_drain_s: f64,
    /// Journal records replayed by the mid-storm recovery.
    pub replayed: usize,
    /// The injected fsync fault drove the journal into buffered mode.
    pub degraded_observed: bool,
    /// Virtual seconds the journal dwelt in degraded (buffered) mode
    /// before healing restored synchronous durability.
    pub degraded_dwell_s: f64,
    /// Healing restored synchronous durability before the crash.
    pub durability_healed: bool,
    /// fsync errors the fault injector actually delivered.
    pub fsync_errors: u64,
    /// Conservation-audit discrepancies at the horizon (must be 0).
    pub conservation_violations: usize,
}

/// The whole run.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// Every row finished bitwise equal to its uncrashed twin.
    pub parity: bool,
    /// Every row drained its queue and re-admitted everything.
    pub healed: bool,
    /// Every row degraded under the fsync fault and healed back.
    pub durability_healed: bool,
    /// Session-weighted baseline admitted fraction across rows.
    pub baseline_admitted_fraction: f64,
    /// Session-weighted recovered admitted fraction across rows.
    pub recovered_admitted_fraction: f64,
    /// Aggregate recovered fraction within one point of baseline.
    pub within_one_point: bool,
    /// Total audit discrepancies across rows (must be 0).
    pub conservation_violations: usize,
    /// One row per fleet scale.
    pub rows: Vec<ChaosRow>,
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/chaos-bench")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `n` agents with one transcode slot each; `2n` sessions, half of
/// them transcoding (hi→lo). Transcode slots — not bandwidth — are the
/// scarce resource, so killing a task-holding agent strands a decision
/// with no feasible alternative and displaces the whole session, while
/// the restore frees the slot again for healing.
fn chaos_universe(n: usize) -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    for a in 0..n {
        b.add_agent(
            AgentSpec::builder(format!("agent-{a}"))
                .capacity(Capacity::new(200.0, 200.0, 1))
                .build(),
        );
    }
    for i in 0..2 * n {
        let s = b.add_session();
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().expect("valid universe"),
        CostModel::paper_default(),
    ))
}

fn fleet_config(seed: u64, n_agents: usize) -> FleetConfig {
    FleetConfig {
        // Neighborhood = the whole fleet: with one transcode slot per
        // agent the tasks form a bijection, and a narrower AgRank
        // window can hide the one agent whose slot is still free.
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(n_agents)),
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 2,
        readmit: Some(ReadmitConfig {
            seed,
            // Dense retries with a deep budget: the storm flaps agents
            // every few seconds and the drain bound wants the queue to
            // resolve within the virtual horizon.
            cap_backoff_s: 4.0,
            max_attempts: 32,
            ..ReadmitConfig::default()
        }),
        ..FleetConfig::default()
    }
}

fn persist_config(dir: &std::path::Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        stay_batch: 1,
    }
}

/// Admits every session (queueing capacity refusals) and registers a
/// WAIT worker for each admitted one.
fn warm_up(fleet: &Fleet, pool: &ReoptPool, sessions: usize) {
    for i in 0..sessions {
        if matches!(
            fleet.admit_or_queue(SessionId::from(i)),
            AdmitOutcome::Admitted
        ) {
            pool.register(fleet, SessionId::from(i), 0.0);
        }
    }
}

/// Applies the plan's events in `[from_us, to_us)`, interleaving WAIT
/// hops and due re-admission retries through `ReoptPool::tick_until`.
fn drive_window(fleet: &Fleet, pool: &ReoptPool, plan: &FaultPlan, from_us: u64, to_us: u64) {
    for ev in plan.window(from_us, to_us) {
        pool.tick_until(fleet, ev.t_us as f64 / 1e6);
        fleet.set_clock_us(ev.t_us);
        match ev.kind {
            FaultKind::FailAgent(a) => {
                fleet.fail_agent(AgentId::new(a));
            }
            FaultKind::RestoreAgent(a) => {
                fleet.restore_agent(AgentId::new(a));
            }
        }
    }
    pool.tick_until(fleet, to_us as f64 / 1e6);
    fleet.set_clock_us(to_us);
}

fn run_scale(n_agents: usize, seed: u64) -> ChaosRow {
    let problem = chaos_universe(n_agents);
    let sessions = problem.instance().num_sessions();
    let pool_seed = seed;
    let config = || fleet_config(pool_seed, n_agents);
    let plan = FaultPlan::storm(&StormConfig {
        seed: seed.wrapping_add(n_agents as u64),
        agents: (0..n_agents as u32).collect(),
        start_s: 2.0,
        period_s: 6.0,
        epochs: 4,
    });
    // One past the last event: `FaultPlan::window` is half-open, and
    // the storm's final restore must actually fire.
    let end_us = plan.end_us() + 1;
    let horizon_us = end_us + 180_000_000;
    // Crash in the middle of the storm, 100 ms past an event, so the
    // recovery replays a history with live displacements in flight.
    let cut_us = plan.events()[plan.events().len() / 2].t_us + 100_000;

    // Fault-free twin: the baseline admitted fraction.
    let baseline = Fleet::new(problem.clone(), config());
    let baseline_pool = ReoptPool::new(pool_seed);
    warm_up(&baseline, &baseline_pool, sessions);
    baseline_pool.tick_until(&baseline, horizon_us as f64 / 1e6);
    let baseline_fraction = baseline.live_count() as f64 / sessions as f64;

    // Storm fleet on a fault-injecting VFS, plus an uncrashed control
    // twin driven in lockstep over the identical plan.
    let dir = scratch_dir(&format!("store-{n_agents}"));
    let vfs = FaultyVfs::new();
    let fleet = Fleet::with_persistence_on(
        problem.clone(),
        config(),
        persist_config(&dir),
        Arc::new(vfs.clone()),
        RetryPolicy::immediate(3),
    )
    .expect("persistent fleet");
    // Armed past the warm-up's appends so the fault trips mid-storm;
    // more consecutive failures than the per-append retry budget, so
    // the journal must degrade rather than ride out the fault.
    vfs.inject(StorageFault {
        path_contains: ".vcwal".into(),
        at_byte: 1024,
        kind: StorageFaultKind::FsyncErr { times: 6 },
    });
    let pool = ReoptPool::new(pool_seed);
    let control = Fleet::new(problem.clone(), config());
    let control_pool = ReoptPool::new(pool_seed);
    for (f, p) in [(&fleet, &pool), (&control, &control_pool)] {
        warm_up(f, p, sessions);
    }
    // Drive to the crash point one storm event at a time, sampling for
    // the moment the fsync fault pushes the journal into buffered mode
    // (both twins step the identical schedule).
    let mut degraded_at_us = None;
    let mut prev = 0u64;
    for ev in plan.window(0, cut_us) {
        for (f, p) in [(&fleet, &pool), (&control, &control_pool)] {
            drive_window(f, p, &plan, prev, ev.t_us + 1);
        }
        prev = ev.t_us + 1;
        if degraded_at_us.is_none() && fleet.durability_degraded() {
            degraded_at_us = Some(ev.t_us);
        }
    }
    for (f, p) in [(&fleet, &pool), (&control, &control_pool)] {
        drive_window(f, p, &plan, prev, cut_us);
    }
    if degraded_at_us.is_none() && fleet.durability_degraded() {
        degraded_at_us = Some(cut_us);
    }
    let degraded_observed = fleet.durability_degraded();
    // The armed fault burns out against heal probes; once clear, the
    // journal must return to synchronous durability.
    while vfs.pending() > 0 {
        let _ = fleet.heal_journal();
    }
    let durability_healed = fleet.heal_journal() && !fleet.durability_degraded();
    let fsync_errors = vfs.fsync_errors();

    fleet.journal_timers(&pool); // durability boundary
    let pre_crash = fleet.durable_state();
    drop(fleet); // crash mid-storm

    let (recovered, report) =
        Fleet::recover(persist_config(&dir), problem, config()).expect("recovery");
    let mut parity = recovered.durable_state() == pre_crash;
    let restored = ReoptPool::new(pool_seed);
    restored.restore_timers(&recovered, &report.timers);
    recovered.set_clock_us(cut_us);

    // Finish the storm on both twins, then step past its end in 100 ms
    // increments to time the queue drain (identical schedules keep the
    // twins bitwise comparable).
    for (f, p) in [(&recovered, &restored), (&control, &control_pool)] {
        drive_window(f, p, &plan, cut_us, end_us);
    }
    let mut drained_at_us = if recovered.readmit_queue_len() == 0 {
        Some(end_us)
    } else {
        None
    };
    let mut t = end_us;
    while t < horizon_us {
        t = (t + 100_000).min(horizon_us);
        restored.tick_until(&recovered, t as f64 / 1e6);
        recovered.set_clock_us(t);
        control_pool.tick_until(&control, t as f64 / 1e6);
        control.set_clock_us(t);
        if drained_at_us.is_none() && recovered.readmit_queue_len() == 0 {
            drained_at_us = Some(t);
        }
    }
    recovered.record_timers(&restored);
    control.record_timers(&control_pool);
    parity = parity
        && recovered.durable_state() == control.durable_state()
        && recovered.readmit_entries() == control.readmit_entries()
        && recovered.objective().to_bits() == control.objective().to_bits();

    let c = recovered.counters();
    let displaced = c.displaced.load(Ordering::Relaxed);
    let readmitted = c.readmit_admitted.load(Ordering::Relaxed);
    let dropped = c.readmit_dropped.load(Ordering::Relaxed);
    let evacuations = c.evacuations.load(Ordering::Relaxed);
    let pre_storm = baseline.live_sessions();
    let post = recovered.live_sessions();
    let healed = dropped == 0
        && recovered.readmit_queue_len() == 0
        && displaced >= 1
        && readmitted >= 1
        && pre_storm.iter().all(|s| post.contains(s))
        && recovered.live_count() >= baseline.live_count();
    let recovered_fraction = recovered.live_count() as f64 / sessions as f64;
    ChaosRow {
        sessions,
        agents: n_agents,
        storm_events: plan.events().len(),
        displaced,
        readmitted,
        dropped,
        evacuations,
        baseline_admitted_fraction: baseline_fraction,
        recovered_admitted_fraction: recovered_fraction,
        within_one_point: recovered_fraction >= baseline_fraction - 0.01,
        parity,
        healed,
        queue_drain_s: (drained_at_us.unwrap_or(horizon_us) - end_us) as f64 / 1e6,
        replayed: report.replayed,
        degraded_observed,
        degraded_dwell_s: degraded_at_us.map_or(0.0, |t| (cut_us - t) as f64 / 1e6),
        durability_healed,
        fsync_errors,
        conservation_violations: recovered.audit().len() + control.audit().len(),
    }
}

/// Runs the gauntlet at each agent scale (sessions = 2 × agents).
pub fn run(scales: &[usize], seed: u64) -> ChaosResult {
    let rows: Vec<ChaosRow> = scales.iter().map(|&n| run_scale(n, seed)).collect();
    let total_sessions: usize = rows.iter().map(|r| r.sessions).sum();
    let weighted = |f: fn(&ChaosRow) -> f64| {
        rows.iter().map(|r| f(r) * r.sessions as f64).sum::<f64>() / total_sessions.max(1) as f64
    };
    let baseline = weighted(|r| r.baseline_admitted_fraction);
    let recovered = weighted(|r| r.recovered_admitted_fraction);
    ChaosResult {
        parity: rows.iter().all(|r| r.parity),
        healed: rows.iter().all(|r| r.healed),
        durability_healed: rows
            .iter()
            .all(|r| r.degraded_observed && r.durability_healed),
        baseline_admitted_fraction: baseline,
        recovered_admitted_fraction: recovered,
        within_one_point: recovered >= baseline - 0.01,
        conservation_violations: rows.iter().map(|r| r.conservation_violations).sum(),
        rows,
    }
}

/// Serializes the result as the `BENCH_chaos.json` document
/// (hand-rolled: the vendored serde is a no-op shim).
pub fn to_json(result: &ChaosResult) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        concat!(
            "{{\n  \"experiment\": \"chaos\",\n  \"cpus\": {},\n",
            "  \"parity\": {},\n  \"healed\": {},\n",
            "  \"durability_healed\": {},\n  \"within_one_point\": {},\n",
            "  \"baseline_admitted_fraction\": {:.4},\n",
            "  \"recovered_admitted_fraction\": {:.4},\n",
            "  \"conservation_violations\": {},\n",
            "  \"rows\": [\n"
        ),
        cpus,
        result.parity,
        result.healed,
        result.durability_healed,
        result.within_one_point,
        result.baseline_admitted_fraction,
        result.recovered_admitted_fraction,
        result.conservation_violations,
    );
    for (i, r) in result.rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"sessions\": {}, \"agents\": {}, \"storm_events\": {}, ",
                "\"displaced\": {}, \"readmitted\": {}, \"dropped\": {}, ",
                "\"evacuations\": {}, ",
                "\"baseline_admitted_fraction\": {:.4}, ",
                "\"recovered_admitted_fraction\": {:.4}, ",
                "\"within_one_point\": {}, \"parity\": {}, \"healed\": {}, ",
                "\"queue_drain_s\": {:.1}, \"replayed\": {}, ",
                "\"degraded_observed\": {}, \"degraded_dwell_s\": {:.1}, ",
                "\"durability_healed\": {}, ",
                "\"fsync_errors\": {}, \"conservation_violations\": {}}}{}\n"
            ),
            r.sessions,
            r.agents,
            r.storm_events,
            r.displaced,
            r.readmitted,
            r.dropped,
            r.evacuations,
            r.baseline_admitted_fraction,
            r.recovered_admitted_fraction,
            r.within_one_point,
            r.parity,
            r.healed,
            r.queue_drain_s,
            r.replayed,
            r.degraded_observed,
            r.degraded_dwell_s,
            r.durability_healed,
            r.fsync_errors,
            r.conservation_violations,
            if i + 1 == result.rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the rows and writes `BENCH_chaos.json` into the working
/// directory.
pub fn print(result: &ChaosResult) {
    println!("Chaos plane — storm / crash / recover / heal at each fleet scale");
    println!(
        "{:>9} {:>7} {:>7} {:>10} {:>8} {:>8} {:>8} {:>9} {:>7} {:>7} {:>8}",
        "sessions",
        "agents",
        "events",
        "displaced",
        "readmit",
        "dropped",
        "base",
        "recovered",
        "parity",
        "healed",
        "drain s"
    );
    for r in &result.rows {
        println!(
            "{:>9} {:>7} {:>7} {:>10} {:>8} {:>8} {:>8.3} {:>9.3} {:>7} {:>7} {:>8.1}",
            r.sessions,
            r.agents,
            r.storm_events,
            r.displaced,
            r.readmitted,
            r.dropped,
            r.baseline_admitted_fraction,
            r.recovered_admitted_fraction,
            r.parity,
            r.healed,
            r.queue_drain_s,
        );
    }
    println!(
        "\naggregate: parity {}, healed {}, durability healed {}, \
         admitted fraction {:.4} (baseline {:.4}, within one point: {})",
        result.parity,
        result.healed,
        result.durability_healed,
        result.recovered_admitted_fraction,
        result.baseline_admitted_fraction,
        result.within_one_point,
    );
    let json = to_json(result);
    match std::fs::write("BENCH_chaos.json", &json) {
        Ok(()) => println!("\nwrote BENCH_chaos.json"),
        Err(e) => eprintln!("\ncould not write BENCH_chaos.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_scale_survives_the_gauntlet() {
        let result = run(&[3], 2015);
        assert_eq!(result.rows.len(), 1);
        let r = &result.rows[0];
        assert!(r.parity, "crashed/recovered twin diverged");
        assert!(r.healed, "queue failed to heal: {r:?}");
        assert!(r.degraded_observed && r.durability_healed);
        assert!(r.within_one_point);
        assert_eq!(result.conservation_violations, 0);
        let json = to_json(&result);
        assert!(json.contains("\"experiment\": \"chaos\""));
        assert!(json.contains("\"parity\": true"));
        assert!(json.contains("\"healed\": true"));
    }
}
