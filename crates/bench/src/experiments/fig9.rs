//! Fig. 9 — percentage of successfully initialized scenarios under
//! capacity limits: (a) sweeping mean bandwidth with unlimited
//! transcoding, (b) sweeping mean transcoding slots with unlimited
//! bandwidth; policies Nrst, AgRank#2, AgRank#3.

use crate::util::par_map_seeds;
use std::sync::Arc;
use vc_algo::admission::{admit_all, AdmissionPolicy};
use vc_algo::agrank::AgRankConfig;
use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// The three policies of the figure, in plot order.
pub const POLICIES: [&str; 3] = ["AgRank#3", "AgRank#2", "Nrst"];

/// One sweep point: capacity value and success rate (%) per policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept mean capacity (Mbps or slots).
    pub capacity: f64,
    /// Success rate (%) for `[AgRank#3, AgRank#2, Nrst]`.
    pub success_pct: [f64; 3],
}

fn policies() -> [AdmissionPolicy; 3] {
    [
        AdmissionPolicy::AgRank(AgRankConfig::paper(3)),
        AdmissionPolicy::AgRank(AgRankConfig::paper(2)),
        AdmissionPolicy::Nearest,
    ]
}

fn sweep(
    points: &[f64],
    scenarios: usize,
    base_seed: u64,
    make_config: impl Fn(f64, u64) -> LargeScaleConfig + Sync,
) -> Vec<SweepPoint> {
    points
        .iter()
        .map(|&capacity| {
            let seeds: Vec<u64> = (0..scenarios as u64).map(|i| base_seed + i).collect();
            let successes = par_map_seeds(&seeds, |seed| {
                let instance = large_scale_instance(&make_config(capacity, seed));
                let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
                let mut out = [false; 3];
                for (i, policy) in policies().iter().enumerate() {
                    out[i] = admit_all(problem.clone(), policy).success;
                }
                out
            });
            let mut pct = [0.0; 3];
            for s in &successes {
                for i in 0..3 {
                    if s[i] {
                        pct[i] += 1.0;
                    }
                }
            }
            for p in &mut pct {
                *p *= 100.0 / scenarios as f64;
            }
            SweepPoint {
                capacity,
                success_pct: pct,
            }
        })
        .collect()
}

/// Fig. 9(a): bandwidth sweep (unlimited transcoding capacity).
pub fn run_bandwidth(points: &[f64], scenarios: usize, base_seed: u64) -> Vec<SweepPoint> {
    sweep(points, scenarios, base_seed, |capacity, seed| {
        LargeScaleConfig {
            mean_bandwidth_mbps: Some(capacity),
            mean_transcode_slots: None,
            seed,
            ..LargeScaleConfig::default()
        }
    })
}

/// Fig. 9(b): transcoding sweep (unlimited bandwidth capacity).
pub fn run_transcode(points: &[f64], scenarios: usize, base_seed: u64) -> Vec<SweepPoint> {
    sweep(points, scenarios, base_seed, |capacity, seed| {
        LargeScaleConfig {
            mean_bandwidth_mbps: None,
            mean_transcode_slots: Some(capacity),
            seed,
            ..LargeScaleConfig::default()
        }
    })
}

/// Prints one sweep as the paper's percent-success table.
pub fn print(title: &str, unit: &str, points: &[SweepPoint]) {
    println!("{title}");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        unit, POLICIES[0], POLICIES[1], POLICIES[2]
    );
    for p in points {
        println!(
            "{:<22.0} {:>9.0}% {:>9.0}% {:>9.0}%",
            p.capacity, p.success_pct[0], p.success_pct[1], p.success_pct[2]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_ordering_matches_paper() {
        // At a mid-transition bandwidth the paper's ordering holds:
        // AgRank#3 ≥ AgRank#2 ≥ Nrst.
        let pts = run_bandwidth(&[1000.0], 6, 50);
        let p = &pts[0];
        assert!(p.success_pct[0] >= p.success_pct[1]);
        assert!(p.success_pct[1] >= p.success_pct[2]);
    }

    #[test]
    fn success_is_monotone_in_capacity() {
        let pts = run_bandwidth(&[800.0, 1600.0], 6, 60);
        for i in 0..3 {
            assert!(
                pts[1].success_pct[i] >= pts[0].success_pct[i],
                "policy {i} not monotone"
            );
        }
    }

    #[test]
    fn unlimited_transcode_sweep_runs() {
        let pts = run_transcode(&[40.0], 4, 70);
        assert_eq!(pts.len(), 1);
        for pct in pts[0].success_pct {
            assert!((0.0..=100.0).contains(&pct));
        }
    }
}
