//! Observability-overhead experiment (extension): proves the `vc-obs`
//! plane costs ≤ 2 % of hop throughput, and emits
//! `BENCH_obs_overhead.json` (the CI gate reads its `within_budget`
//! field).
//!
//! Methodology — resolving a ≤ 2 % signal on a noisy 1-CPU container:
//!
//! * **Twin fleets in lockstep.** Two identical fleets (same seed,
//!   same admissions, same deterministic WAIT/HOP schedule) advance
//!   through the *same* virtual windows side by side; per window, one
//!   fleet records ([`ObsPlane::set_enabled`](vc_obs::ObsPlane::set_enabled))
//!   and the other doesn't, and the roles swap every pair. Each
//!   configuration therefore measures **exactly the same hop work**
//!   (a control with observability off in both fleets showed the hop
//!   mix of *different* virtual windows differs deterministically by
//!   up to ~10 % — alternating windows between configurations, the
//!   obvious design, measures that instead of the plane), and each
//!   configuration runs half its windows on each fleet, cancelling
//!   per-process allocator-layout bias (fresh-fleet-per-round designs
//!   varied ±30 % from layout alone). The twin windows are adjacent
//!   in wall time, so they share machine-noise epochs.
//! * **Many short windows, median of per-window wall ratios.** On this
//!   class of host, the CPU cost of *identical* work varies by ±25 %
//!   between windows a second apart (frequency shifts, neighbour cache
//!   thrash), so a handful of long windows cannot resolve a 2 % signal
//!   under any estimator. Instead the run makes ~100 window pairs of a
//!   few tens of milliseconds each: a noise burst then spans several
//!   *consecutive* windows and slows both configurations equally, and
//!   the burst's edge windows — the only skewed ratios — drop out of
//!   the **median** of the per-window enabled-vs-disabled time ratios.
//!   Windows this short are timed with the wall clock (nanosecond
//!   resolution; the `/proc` CPU clock ticks at 10 ms, useless below
//!   ~1 s) — preemption slices hit either twin of a pair with equal
//!   probability and land in the median's discarded tails.
//! * **Aggregate rates on the CPU clock.** The hops-per-second rates
//!   reported alongside sum CPU time (`/proc/self/stat` utime+stime)
//!   across all windows per configuration, so preemption by other
//!   tenants does not deflate the throughput numbers. Falls back to
//!   wall time where `/proc` is unavailable.
//! * **Sequential sampling.** A reading over budget extends the run
//!   with more window pairs (bounded by [`MAX_EXTENSIONS`]) and
//!   re-takes the median over everything gathered: a noise epoch that
//!   skewed one batch washes out, while a genuine regression stays
//!   over budget under any amount of data.
//! * **Two enabled arms.** Window pairs alternate (in groups of two,
//!   so each arm still runs both role orders) between plain
//!   observability and observability **with lifecycle tracing and one
//!   SLO-watchdog observation per window** — the full PR-7 plane. Both
//!   arms report a median overhead (`overhead_fraction`,
//!   `overhead_fraction_traced`) and both must clear the same 2 %
//!   budget.

use std::sync::Arc;
use std::time::Instant;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_model::SessionId;
use vc_obs::Site;
use vc_orchestrator::{Fleet, FleetConfig, PlacementPolicy, ReoptPool};
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// The overhead budget the tentpole commits to: enabled-vs-disabled
/// throughput loss on the hop path must stay within 2 %.
pub const OVERHEAD_BUDGET: f64 = 0.02;

/// How many times an over-budget reading may extend the run with
/// another batch of pairs before the verdict stands (sequential
/// sampling — see [`run`]).
pub const MAX_EXTENSIONS: usize = 3;

/// The whole run.
#[derive(Debug, Clone)]
pub struct ObsOverheadResult {
    /// Live sessions throughout the run.
    pub sessions: usize,
    /// Mean hops per measurement segment.
    pub hops_per_segment: usize,
    /// Measurement segment pairs actually run (one disabled + one
    /// enabled each), including any over-budget extensions ([`run`]).
    pub rounds: usize,
    /// Whether the aggregate rates were timed with the process CPU
    /// clock (false: wall-clock fallback). Per-window ratios always
    /// use the wall clock — see the module docs.
    pub cpu_clock: bool,
    /// Per-segment hop rates with observability disabled.
    pub disabled_hops_per_s: Vec<f64>,
    /// Per-segment hop rates with observability enabled.
    pub enabled_hops_per_s: Vec<f64>,
    /// Aggregate disabled rate: total hops / total CPU seconds.
    pub rate_disabled: f64,
    /// Aggregate enabled rate: total hops / total CPU seconds.
    pub rate_enabled: f64,
    /// `max(0, 1 − median_w(t_disabled,w / t_enabled,w))` over the
    /// per-window twin wall-time ratios — the robust overhead estimate
    /// (plain-observability windows: spans + flight recorder, tracing
    /// off).
    pub overhead_fraction: f64,
    /// Whether `overhead_fraction ≤` [`OVERHEAD_BUDGET`].
    pub within_budget: bool,
    /// The same median over the windows where the enabled twin also
    /// ran lifecycle tracing and a per-window SLO-watchdog observation.
    pub overhead_fraction_traced: f64,
    /// Whether `overhead_fraction_traced ≤` [`OVERHEAD_BUDGET`].
    pub within_budget_traced: bool,
    /// Median fleet-hop latency (µs) over all enabled segments.
    pub hop_p50_us: f64,
    /// p99 fleet-hop latency (µs) over all enabled segments.
    pub hop_p99_us: f64,
}

/// Process CPU time (user + system) in seconds, from `/proc/self/stat`
/// (USER_HZ = 100 ticks); `None` off Linux.
fn cpu_time_s() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14 (utime) and 15 (stime), counting from 1; the comm field
    // may itself contain spaces, so index from the closing paren.
    let rest = stat.get(stat.rfind(')')? + 2..)?;
    let mut it = rest.split_ascii_whitespace();
    let utime: f64 = it.nth(11)?.parse().ok()?;
    let stime: f64 = it.next()?.parse().ok()?;
    Some((utime + stime) / 100.0)
}

/// A segment clock: CPU time when available, wall time otherwise.
struct SegClock {
    cpu: bool,
    wall: Instant,
    cpu_s: f64,
}

impl SegClock {
    fn start() -> Self {
        let cpu_s = cpu_time_s();
        Self {
            cpu: cpu_s.is_some(),
            wall: Instant::now(),
            cpu_s: cpu_s.unwrap_or(0.0),
        }
    }

    /// Seconds since `start`, on whichever clock `start` resolved.
    fn elapsed_s(&self) -> f64 {
        if self.cpu {
            cpu_time_s().unwrap_or(self.cpu_s) - self.cpu_s
        } else {
            self.wall.elapsed().as_secs_f64()
        }
    }

    /// Wall seconds since `start` (nanosecond resolution; the only
    /// clock fine enough for the short per-window ratios).
    fn wall_s(&self) -> f64 {
        self.wall.elapsed().as_secs_f64()
    }
}

fn build_problem(sessions: usize, seed: u64) -> Arc<UapProblem> {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: sessions * 3,
        max_session_size: 3,
        // Roomy capacities, as in hop_bench: the hop path, not
        // admission contention, is what the segments measure.
        mean_bandwidth_mbps: Some(40_000.0 * sessions as f64 / 1_000.0),
        mean_transcode_slots: Some(3_000.0 * sessions as f64 / 1_000.0),
        seed,
        ..LargeScaleConfig::default()
    });
    Arc::new(UapProblem::new(
        instance,
        vc_cost::CostModel::paper_default(),
    ))
}

/// One twin: a fleet plus its deterministic worker pool.
fn build_twin(problem: &Arc<UapProblem>, seed: u64, warmup_s: f64) -> (Fleet, ReoptPool) {
    let fleet = Fleet::new(
        problem.clone(),
        FleetConfig {
            placement: PlacementPolicy::Nearest,
            alg1: Alg1Config {
                mean_countdown_s: 1.0,
                ..Alg1Config::paper(400.0)
            },
            ledger_shards: 8,
            ..FleetConfig::default()
        },
    );
    let pool = ReoptPool::new(seed);
    for i in 0..problem.instance().num_sessions() {
        fleet
            .admit(SessionId::from(i))
            .expect("capacities are generous");
        pool.register(&fleet, SessionId::from(i), 0.0);
    }
    // Warmup: fault in the heap, reach the steady-state hop schedule.
    fleet.obs().set_enabled(true);
    pool.tick_until(&fleet, warmup_s);
    (fleet, pool)
}

/// Runs `rounds` (rounded up to even) twin-fleet segment pairs of
/// `segment_s` virtual seconds each over `sessions_target`-session
/// fleets (plus an untimed enabled warmup stretch per fleet).
///
/// Sequential sampling: a reading over budget extends the run with
/// another `rounds` pairs (up to [`MAX_EXTENSIONS`] times) and
/// recomputes the median over everything gathered. A machine-noise
/// epoch that skews one batch washes out under more data; a genuine
/// overhead regression stays over budget no matter how many pairs are
/// added.
pub fn run(sessions_target: usize, segment_s: f64, rounds: usize, seed: u64) -> ObsOverheadResult {
    let problem = build_problem(sessions_target, seed);
    // A multiple of 4: pairs alternate plain/traced in groups of two,
    // and within each group the enabled role runs once on each twin —
    // every (arm, twin) cell gets the same number of windows.
    let rounds = (rounds.max(1) + 3) & !3;
    let warmup_s = segment_s.max(20.0);
    let twins = [
        build_twin(&problem, seed, warmup_s),
        build_twin(&problem, seed, warmup_s),
    ];
    let n = problem.instance().num_sessions();

    let mut disabled = Vec::with_capacity(rounds);
    let mut enabled = Vec::with_capacity(rounds);
    let mut ratios_plain = Vec::with_capacity(rounds / 2);
    let mut ratios_traced = Vec::with_capacity(rounds / 2);
    let (mut hops_dis, mut hops_en) = (0usize, 0usize);
    let (mut time_dis, mut time_en) = (0f64, 0f64);
    let mut cpu_clock = true;
    let mut t_virtual = warmup_s;
    let mut overhead_fraction = 0.0;
    let mut overhead_fraction_traced = 0.0;
    // The watchdog whose per-window `observe` the traced arm pays for.
    // Default SLO budgets are far above this workload's healthy tails,
    // so it never fires mid-measurement.
    let watchdog = vc_obs::Watchdog::new(vc_obs::SloSpec::default());
    // Median per-window speed ratio: 1.0 = no cost, 0.98 = 2 % slower
    // enabled. Robust to interference spikes landing in individual
    // windows.
    let median_overhead = |ratios: &[f64]| {
        let mut sorted = ratios.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mid = sorted.len() / 2;
        let median_ratio = if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        };
        (1.0 - median_ratio).max(0.0)
    };
    for batch in 0..=MAX_EXTENSIONS {
        for pair in 0..rounds {
            // Both twins cross the same virtual window; roles swap per
            // pair, and the enabled arm alternates plain/traced in
            // groups of two so each arm sees both role orders.
            let on_first = pair % 2 == 1;
            let traced = (pair / 2) % 2 == 0;
            t_virtual += segment_s;
            let mut window_hops = [0usize; 2];
            let (mut t_off_w, mut t_on_w) = (0f64, 0f64);
            for (i, (fleet, pool)) in twins.iter().enumerate() {
                let on = (i == 0) == on_first;
                fleet.obs().set_enabled(on);
                fleet.obs().set_trace_enabled(on && traced);
                let clock = SegClock::start();
                let hops = pool.tick_until(fleet, t_virtual);
                if on && traced {
                    // The traced arm pays the watchdog's sampling cost
                    // inside the timed window, at the cadence a
                    // telemetry sampler would run it.
                    let _ = watchdog.observe(fleet.obs(), Some(1.0));
                }
                // Aggregates on the CPU clock, the window ratio on the
                // wall clock (see the module docs).
                let elapsed = clock.elapsed_s().max(1e-9);
                let wall = clock.wall_s().max(1e-9);
                cpu_clock &= clock.cpu;
                window_hops[i] = hops;
                let rate = hops as f64 / elapsed;
                if on {
                    hops_en += hops;
                    time_en += elapsed;
                    t_on_w = wall;
                    enabled.push(rate);
                } else {
                    hops_dis += hops;
                    time_dis += elapsed;
                    t_off_w = wall;
                    disabled.push(rate);
                }
            }
            assert_eq!(
                window_hops[0], window_hops[1],
                "twin fleets must execute identical work per virtual window"
            );
            let ratio = t_off_w / t_on_w.max(1e-9);
            if traced {
                ratios_traced.push(ratio);
            } else {
                ratios_plain.push(ratio);
            }
        }
        overhead_fraction = median_overhead(&ratios_plain);
        overhead_fraction_traced = median_overhead(&ratios_traced);
        if overhead_fraction <= OVERHEAD_BUDGET && overhead_fraction_traced <= OVERHEAD_BUDGET {
            break;
        }
        if batch < MAX_EXTENSIONS {
            eprintln!(
                "obs_overhead: plain {:.2}% / traced {:.2}% over {} pairs exceeds the {:.0}% budget — extending the run",
                overhead_fraction * 100.0,
                overhead_fraction_traced * 100.0,
                ratios_plain.len() + ratios_traced.len(),
                OVERHEAD_BUDGET * 100.0,
            );
        }
    }
    let pairs = ratios_plain.len() + ratios_traced.len();
    // Both twins recorded enabled windows; merge their hop histograms.
    let mut hop_hist = twins[0].0.obs().snapshot(Site::Hop);
    hop_hist.merge(&twins[1].0.obs().snapshot(Site::Hop));
    let summary = hop_hist.summary();
    let rate_disabled = hops_dis as f64 / time_dis.max(1e-9);
    let rate_enabled = hops_en as f64 / time_en.max(1e-9);
    ObsOverheadResult {
        sessions: n,
        hops_per_segment: (hops_dis + hops_en) / (2 * pairs),
        rounds: pairs,
        cpu_clock,
        disabled_hops_per_s: disabled,
        enabled_hops_per_s: enabled,
        rate_disabled,
        rate_enabled,
        overhead_fraction,
        within_budget: overhead_fraction <= OVERHEAD_BUDGET,
        overhead_fraction_traced,
        within_budget_traced: overhead_fraction_traced <= OVERHEAD_BUDGET,
        hop_p50_us: summary.p50_ns as f64 / 1e3,
        hop_p99_us: summary.p99_ns as f64 / 1e3,
    }
}

/// Serializes the result as the `BENCH_obs_overhead.json` document
/// (hand-rolled: the vendored serde is a no-op shim).
pub fn to_json(result: &ObsOverheadResult) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let join = |xs: &[f64]| {
        xs.iter()
            .map(|x| format!("{x:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        concat!(
            "{{\n  \"experiment\": \"obs_overhead\",\n  \"cpus\": {},\n",
            "  \"sessions\": {},\n  \"hops_per_segment\": {},\n  \"rounds\": {},\n",
            "  \"cpu_clock\": {},\n",
            "  \"disabled_hops_per_s\": [{}],\n  \"enabled_hops_per_s\": [{}],\n",
            "  \"rate_disabled\": {:.1},\n  \"rate_enabled\": {:.1},\n",
            "  \"overhead_fraction\": {:.4},\n  \"budget_fraction\": {:.2},\n",
            "  \"within_budget\": {},\n",
            "  \"overhead_fraction_traced\": {:.4},\n  \"within_budget_traced\": {},\n",
            "  \"hop_p50_us\": {:.1},\n  \"hop_p99_us\": {:.1}\n}}\n"
        ),
        cpus,
        result.sessions,
        result.hops_per_segment,
        result.rounds,
        result.cpu_clock,
        join(&result.disabled_hops_per_s),
        join(&result.enabled_hops_per_s),
        result.rate_disabled,
        result.rate_enabled,
        result.overhead_fraction,
        OVERHEAD_BUDGET,
        result.within_budget,
        result.overhead_fraction_traced,
        result.within_budget_traced,
        result.hop_p50_us,
        result.hop_p99_us,
    )
}

/// Prints the segments and writes `BENCH_obs_overhead.json` into the
/// working directory.
pub fn print(result: &ObsOverheadResult) {
    println!(
        "Observability overhead — {} sessions, ~{} hops/segment, {} segment pair(s), {} clock",
        result.sessions,
        result.hops_per_segment,
        result.rounds,
        if result.cpu_clock { "CPU" } else { "wall" },
    );
    println!(
        "{:>10} {:>16} {:>16}",
        "pair", "disabled hop/s", "enabled hop/s"
    );
    let shown = result.rounds.min(12);
    for i in 0..shown {
        println!(
            "{:>10} {:>16.0} {:>16.0}",
            i + 1,
            result.disabled_hops_per_s[i],
            result.enabled_hops_per_s[i],
        );
    }
    if shown < result.rounds {
        println!(
            "{:>10} ({} more pairs in BENCH_obs_overhead.json)",
            "…",
            result.rounds - shown
        );
    }
    println!(
        "\naggregate disabled {:.0} hop/s, enabled {:.0} hop/s → overhead {:.2}% (budget {:.0}%) — {}",
        result.rate_disabled,
        result.rate_enabled,
        result.overhead_fraction * 100.0,
        OVERHEAD_BUDGET * 100.0,
        if result.within_budget {
            "WITHIN BUDGET"
        } else {
            "OVER BUDGET"
        },
    );
    println!(
        "with lifecycle tracing + watchdog: overhead {:.2}% — {}",
        result.overhead_fraction_traced * 100.0,
        if result.within_budget_traced {
            "WITHIN BUDGET"
        } else {
            "OVER BUDGET"
        },
    );
    println!(
        "enabled-segment hop latency: p50 {:.1} µs, p99 {:.1} µs",
        result.hop_p50_us, result.hop_p99_us
    );
    let json = to_json(result);
    match std::fs::write("BENCH_obs_overhead.json", &json) {
        Ok(()) => println!("\nwrote BENCH_obs_overhead.json"),
        Err(e) => eprintln!("\ncould not write BENCH_obs_overhead.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_execute_work_and_report_percentiles() {
        let result = run(40, 2.0, 2, 11);
        assert!(result.hops_per_segment > 0);
        // Sequential sampling may extend a noisy run, so `rounds` reports the
        // pairs actually executed (the request rounds up to a multiple of 4 —
        // both arms on both twins — bounded by the extension cap).
        assert!(result.rounds >= 4 && result.rounds <= 4 * (1 + MAX_EXTENSIONS));
        assert_eq!(result.disabled_hops_per_s.len(), result.rounds);
        assert_eq!(result.enabled_hops_per_s.len(), result.rounds);
        assert!(result.rate_disabled > 0.0 && result.rate_enabled > 0.0);
        // Enabled segments populate the plane's hop histogram.
        assert!(result.hop_p50_us > 0.0 && result.hop_p99_us >= result.hop_p50_us);
        let json = to_json(&result);
        assert!(json.contains("\"obs_overhead\""));
        assert!(json.contains("\"within_budget\""));
        assert!(json.contains("\"budget_fraction\": 0.02"));
        assert!(json.contains("\"overhead_fraction_traced\""));
        assert!(json.contains("\"within_budget_traced\""));
    }

    #[test]
    fn cpu_clock_reads_monotonically_on_linux() {
        if let Some(t0) = cpu_time_s() {
            // Burn a little CPU; the clock must not go backwards.
            let mut acc = 0u64;
            for i in 0..2_000_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            assert!(acc != 42);
            assert!(cpu_time_s().unwrap() >= t0);
        }
    }
}
