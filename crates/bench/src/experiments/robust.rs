//! Sec. IV-A.4 — robustness of Alg. 1 to noisy objective measurements:
//! the achieved cost degrades gracefully (bounded by Δmax, Theorem 1)
//! as the quantized measurement error grows.

use super::prototype_nrst_state;
use crate::util::mean;
use rand::{rngs::StdRng, SeedableRng};
use vc_algo::markov::{Alg1Config, Alg1Engine};
use vc_markov::perturb::NoiseSpec;

/// Outcome at one noise level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisePoint {
    /// The error bound Δ on observed Φ values.
    pub delta: f64,
    /// Mean final inter-agent traffic (Mbps) across repetitions.
    pub traffic_mbps: f64,
    /// Mean final conferencing delay (ms).
    pub delay_ms: f64,
    /// Mean final objective.
    pub objective: f64,
}

/// Runs Alg. 1 under each noise level, averaged over `repeats` seeds.
pub fn run(deltas: &[f64], duration_s: f64, repeats: u64) -> Vec<NoisePoint> {
    deltas
        .iter()
        .map(|&delta| {
            let mut traffic = Vec::new();
            let mut delay = Vec::new();
            let mut phi = Vec::new();
            for seed in 0..repeats {
                let mut state = prototype_nrst_state(2015);
                let engine = Alg1Engine::new(Alg1Config {
                    beta: 400.0,
                    mean_countdown_s: 10.0,
                    noise: if delta > 0.0 {
                        Some(NoiseSpec::uniform(delta, 3))
                    } else {
                        None
                    },
                });
                let mut rng = StdRng::seed_from_u64(seed);
                engine.run(&mut state, duration_s, &mut rng);
                traffic.push(state.total_traffic_mbps());
                delay.push(state.mean_delay_ms());
                phi.push(state.objective());
            }
            NoisePoint {
                delta,
                traffic_mbps: mean(&traffic),
                delay_ms: mean(&delay),
                objective: mean(&phi),
            }
        })
        .collect()
}

/// Prints the degradation table.
pub fn print(points: &[NoisePoint]) {
    println!("Robustness — Alg. 1 under quantized measurement noise (prototype scale)");
    println!(
        "{:>8} {:>14} {:>12} {:>12}",
        "delta", "traffic Mbps", "delay ms", "objective"
    );
    for p in points {
        println!(
            "{:>8.1} {:>14.2} {:>12.1} {:>12.1}",
            p.delta, p.traffic_mbps, p.delay_ms, p.objective
        );
    }
    println!("\nTheorem 1: the expected objective under noise exceeds the clean one by ≤ Δmax.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_degrades_gracefully() {
        let pts = run(&[0.0, 50.0], 150.0, 2);
        // Moderate noise must not blow the objective up catastrophically —
        // within Δmax plus stochastic slack of the clean run.
        let clean = pts[0].objective;
        let noisy = pts[1].objective;
        assert!(
            noisy < clean * 1.8 + 50.0,
            "objective exploded under noise: {clean} → {noisy}"
        );
    }
}
