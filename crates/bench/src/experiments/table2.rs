//! Table II — impact of the design parameters α on Alg. 1 at Internet
//! scale: 100 random scenarios, {Nrst, AgRank} initialization × {initial,
//! delay-only (α2 = 0), balanced (α1 = α2), traffic-only (α1 = 0)}.

use crate::util::{mean, par_map_seeds};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::agrank::{agrank_assignment, AgRankConfig};
use vc_algo::markov::{Alg1Config, Alg1Engine};
use vc_algo::nearest::nearest_assignment;
use vc_core::{Assignment, SystemState, UapProblem};
use vc_cost::{CostModel, ObjectiveWeights};
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Number of random scenarios (paper: 100).
    pub scenarios: usize,
    /// Simulated seconds of Alg. 1 per run.
    pub duration_s: f64,
    /// β of Alg. 1.
    pub beta: f64,
    /// First scenario seed.
    pub base_seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            scenarios: 100,
            duration_s: 400.0,
            beta: 400.0,
            base_seed: 1000,
        }
    }
}

/// Traffic/delay of one configuration in one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Total inter-agent traffic (Mbps).
    pub traffic: f64,
    /// Mean conferencing delay (ms).
    pub delay: f64,
}

/// Column labels, in order: initial assignment, then Alg. 1 under the
/// three α configurations.
pub const COLUMNS: [&str; 4] = ["Init", "a2=0 (delay)", "a1=a2", "a1=0 (traffic)"];

/// Per-scenario metrics for one initialization policy: `[Init, delay-only,
/// balanced, traffic-only]`.
pub type PolicyRow = [Metrics; 4];

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// One row per scenario, Nrst initialization.
    pub nrst: Vec<PolicyRow>,
    /// One row per scenario, AgRank (nngbr = 2) initialization.
    pub agrank: Vec<PolicyRow>,
}

fn weight_configs() -> [ObjectiveWeights; 3] {
    [
        ObjectiveWeights::delay_only(),
        ObjectiveWeights::balanced(),
        ObjectiveWeights::traffic_only(),
    ]
}

fn measure(state: &SystemState) -> Metrics {
    Metrics {
        traffic: state.total_traffic_mbps(),
        delay: state.mean_delay_ms(),
    }
}

fn run_policy(base: &UapProblem, init: &Assignment, config: &Table2Config, seed: u64) -> PolicyRow {
    let init_metrics = {
        let state = SystemState::new(Arc::new(base.clone()), init.clone());
        measure(&state)
    };
    let mut row = [init_metrics; 4];
    for (i, weights) in weight_configs().into_iter().enumerate() {
        let problem = Arc::new(base.with_cost(CostModel::paper_default().with_weights(weights)));
        let mut state = SystemState::new(problem, init.clone());
        let engine = Alg1Engine::new(Alg1Config {
            beta: config.beta,
            mean_countdown_s: 10.0,
            noise: None,
        });
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(i as u64));
        engine.run(&mut state, config.duration_s, &mut rng);
        row[i + 1] = measure(&state);
    }
    row
}

/// Runs all scenarios (in parallel across threads).
pub fn run(config: &Table2Config) -> Table2Result {
    let seeds: Vec<u64> = (0..config.scenarios as u64)
        .map(|i| config.base_seed + i)
        .collect();
    let rows = par_map_seeds(&seeds, |seed| {
        let instance = large_scale_instance(&LargeScaleConfig {
            seed,
            ..LargeScaleConfig::default()
        });
        let base = UapProblem::new(instance, CostModel::paper_default());
        let nrst_init = nearest_assignment(&base);
        let agrank_init = agrank_assignment(&base, &AgRankConfig::paper(2));
        (
            run_policy(&base, &nrst_init, config, seed),
            run_policy(&base, &agrank_init, config, seed ^ 0x5eed),
        )
    });
    let (nrst, agrank) = rows.into_iter().unzip();
    Table2Result { nrst, agrank }
}

/// Mean metrics per column.
pub fn column_means(rows: &[PolicyRow]) -> [Metrics; 4] {
    let mut out = [Metrics {
        traffic: 0.0,
        delay: 0.0,
    }; 4];
    for (c, slot) in out.iter_mut().enumerate() {
        slot.traffic = mean(&rows.iter().map(|r| r[c].traffic).collect::<Vec<_>>());
        slot.delay = mean(&rows.iter().map(|r| r[c].delay).collect::<Vec<_>>());
    }
    out
}

/// Prints the paper-style table plus the headline relative reductions.
pub fn print(result: &Table2Result) {
    println!("Table II — impact of the design parameter α on Alg. 1");
    println!(
        "{:<8} {:<8} {:>10} {:>14} {:>10} {:>16}",
        "Init", "Metric", COLUMNS[0], COLUMNS[1], COLUMNS[2], COLUMNS[3]
    );
    let nrst = column_means(&result.nrst);
    let agrank = column_means(&result.agrank);
    for (label, cols) in [("Nrst", &nrst), ("AgRank", &agrank)] {
        println!(
            "{:<8} {:<8} {:>10.0} {:>14.0} {:>10.0} {:>16.0}",
            label, "Traffic", cols[0].traffic, cols[1].traffic, cols[2].traffic, cols[3].traffic
        );
        println!(
            "{:<8} {:<8} {:>10.0} {:>14.0} {:>10.0} {:>16.0}",
            "", "Delay", cols[0].delay, cols[1].delay, cols[2].delay, cols[3].delay
        );
    }
    let t0 = nrst[0].traffic;
    let d0 = nrst[0].delay;
    println!("\nvs the Nrst initial assignment (α1 = α2 column):");
    println!(
        "  Nrst init + Alg.1:   traffic −{:.0}%, delay {:+.0}%  (paper: −42%, −10%)",
        100.0 * (1.0 - nrst[2].traffic / t0),
        100.0 * (nrst[2].delay / d0 - 1.0)
    );
    println!(
        "  AgRank init + Alg.1: traffic −{:.0}%, delay {:+.0}%  (paper: −77%, −2%)",
        100.0 * (1.0 - agrank[2].traffic / t0),
        100.0 * (agrank[2].delay / d0 - 1.0)
    );
    println!(
        "  AgRank init alone:   traffic −{:.0}%, delay {:+.0}%  (paper: −73%, +6%)",
        100.0 * (1.0 - agrank[0].traffic / t0),
        100.0 * (agrank[0].delay / d0 - 1.0)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Table2Result {
        run(&Table2Config {
            scenarios: 2,
            duration_s: 30.0,
            beta: 400.0,
            base_seed: 7,
        })
    }

    #[test]
    fn shapes_are_consistent() {
        let r = tiny();
        assert_eq!(r.nrst.len(), 2);
        assert_eq!(r.agrank.len(), 2);
    }

    #[test]
    fn traffic_only_config_minimizes_traffic_hardest() {
        let r = tiny();
        let nrst = column_means(&r.nrst);
        // Every optimized column improves on the initial traffic, and the
        // traffic-weighted columns improve on the delay-only one. (The
        // traffic-only vs balanced ordering needs long runs and many
        // scenarios to stabilize — asserted at full scale in the
        // integration suite, not in this 30-second smoke test.)
        for c in 1..4 {
            assert!(nrst[c].traffic <= nrst[0].traffic + 1e-6);
        }
        assert!(nrst[3].traffic <= nrst[1].traffic + 1e-6);
    }

    #[test]
    fn agrank_init_beats_nrst_init_on_traffic() {
        let r = tiny();
        let nrst = column_means(&r.nrst);
        let agrank = column_means(&r.agrank);
        assert!(agrank[0].traffic < nrst[0].traffic);
    }
}
