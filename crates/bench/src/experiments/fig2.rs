//! Fig. 2 — the motivating example, quantified.
//!
//! Reports (a) the nearest assignment, (b) the paper's proposed single
//! change (user 4 \[HK\] from Singapore to Tokyo, everyone else pinned),
//! and (c) the exact optimum, each with inter-agent traffic and mean
//! conferencing delay.

use std::sync::Arc;
use vc_algo::brute_force;
use vc_algo::nearest::nearest_assignment;
use vc_core::{Decision, SystemState, UapProblem};
use vc_cost::CostModel;
use vc_model::{AgentId, UserId};

/// One labeled operating point of the Fig. 2 scenario.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Row label.
    pub label: &'static str,
    /// Total inter-agent traffic (Mbps).
    pub traffic_mbps: f64,
    /// Mean conferencing delay (ms).
    pub delay_ms: f64,
    /// Objective value.
    pub objective: f64,
    /// Agent serving user 4 \[HK\].
    pub user4_agent: String,
}

/// The experiment output.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// The three operating points: Nrst, Nrst + (user4→Tokyo), optimum.
    pub points: Vec<OperatingPoint>,
}

/// Runs the experiment.
pub fn run() -> Fig2Result {
    let problem = Arc::new(UapProblem::new(
        vc_net::fig2::instance(),
        CostModel::paper_default(),
    ));
    let user4 = UserId::new(3);
    let inst = problem.instance();
    let point = |label, state: &SystemState| OperatingPoint {
        label,
        traffic_mbps: state.total_traffic_mbps(),
        delay_ms: state.mean_delay_ms(),
        objective: state.objective(),
        user4_agent: inst
            .agent(state.assignment().agent_of_user(user4))
            .name()
            .to_string(),
    };

    let nrst = SystemState::new(problem.clone(), nearest_assignment(&problem));
    let mut moved = nrst.clone();
    moved.apply_unchecked(Decision::User(user4, AgentId::new(1))); // Tokyo
    let (opt_asg, _) = brute_force::optimal(&problem, 10_000)
        .expect("fig2 space enumerable")
        .expect("fig2 feasible");
    let opt = SystemState::new(problem.clone(), opt_asg);

    Fig2Result {
        points: vec![
            point("Nrst (user 4 on Singapore)", &nrst),
            point("user 4 moved to Tokyo", &moved),
            point("exact optimum", &opt),
        ],
    }
}

/// Prints the paper-style comparison.
pub fn print(result: &Fig2Result) {
    println!("Fig. 2 — nearest assignment is neither delay- nor cost-optimal");
    println!(
        "{:<30} {:>14} {:>12} {:>12} {:>16}",
        "assignment", "traffic Mbps", "delay ms", "objective", "user4 agent"
    );
    for p in &result.points {
        println!(
            "{:<30} {:>14.1} {:>12.1} {:>12.1} {:>16}",
            p.label, p.traffic_mbps, p.delay_ms, p.objective, p.user4_agent
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_user4_to_tokyo_improves_both_metrics() {
        let r = run();
        let nrst = &r.points[0];
        let moved = &r.points[1];
        assert!(moved.traffic_mbps < nrst.traffic_mbps);
        assert!(moved.delay_ms < nrst.delay_ms);
        assert_eq!(nrst.user4_agent, "ec2-singapore");
        assert_eq!(moved.user4_agent, "ec2-tokyo");
    }

    #[test]
    fn optimum_dominates_nearest() {
        let r = run();
        assert!(r.points[2].objective <= r.points[0].objective);
    }
}
