//! Sec. V-A migration micro-experiment: instant teardown freezes 2–3
//! frames of a 30 fps stream; the dual-feed trick avoids the freeze at
//! ~13.2 Kb of redundant 240p traffic.

use vc_sim::streaming::{simulate_migration, InterruptionReport, StreamingConfig};

/// One grid point of the migration experiment.
#[derive(Debug, Clone)]
pub struct MigrationPoint {
    /// Switch-over window (ms).
    pub switch_ms: f64,
    /// Without dual-feed.
    pub teardown: InterruptionReport,
    /// With dual-feed.
    pub dual_feed: InterruptionReport,
}

/// Runs the grid of switch-over windows.
pub fn run(switch_windows_ms: &[f64]) -> Vec<MigrationPoint> {
    switch_windows_ms
        .iter()
        .map(|&switch_ms| {
            let config = StreamingConfig {
                switch_ms,
                ..StreamingConfig::paper_default()
            };
            MigrationPoint {
                switch_ms,
                teardown: simulate_migration(&config, false),
                dual_feed: simulate_migration(&config, true),
            }
        })
        .collect()
}

/// Prints the comparison table.
pub fn print(points: &[MigrationPoint]) {
    println!("Migration interruption — 30 fps 240p stream, migration mid-call");
    println!(
        "{:>10} | {:>14} {:>12} | {:>14} {:>12} {:>14}",
        "switch ms", "frozen frames", "max gap ms", "frozen frames", "max gap ms", "redundant Kb"
    );
    println!(
        "{:>10} | {:>27} | {:>43}",
        "", "instant teardown", "dual-feed overlap"
    );
    for p in points {
        println!(
            "{:>10.0} | {:>14} {:>12.1} | {:>14} {:>12.1} {:>14.1}",
            p.switch_ms,
            p.teardown.frozen_frames,
            p.teardown.max_gap_ms,
            p.dual_feed.frozen_frames,
            p.dual_feed.max_gap_ms,
            p.dual_feed.redundant_kb
        );
    }
    println!("\npaper: 2–3 frozen frames at 30 fps without the trick; ~13.2 Kb overhead with it (30 ms window)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_feed_never_freezes() {
        for p in run(&[20.0, 50.0, 80.0, 110.0]) {
            assert_eq!(p.dual_feed.frozen_frames, 0);
            assert!(p.teardown.frozen_frames >= p.dual_feed.frozen_frames);
        }
    }

    #[test]
    fn paper_operating_point() {
        let pts = run(&[30.0]);
        assert!((pts[0].dual_feed.redundant_kb - 13.2).abs() < 1e-9);
    }
}
