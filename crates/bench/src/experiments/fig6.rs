//! Fig. 6 — Alg. 1 initialized by AgRank (nngbr = 2): better starting
//! point and faster convergence than the Nrst initialization of Fig. 4.

use super::{prototype_nrst_state, prototype_problem};
use crate::util::print_series_table;
use vc_algo::agrank::{agrank_assignment, AgRankConfig};
use vc_core::SystemState;
use vc_sim::{ConferenceSim, SimConfig, SimReport};

/// The experiment output.
#[derive(Debug)]
pub struct Fig6Result {
    /// The AgRank-initialized run.
    pub agrank_run: SimReport,
    /// Initial traffic/delay under Nrst on the same workload, for the
    /// paper's "15 Mbps vs 22 Mbps" comparison.
    pub nrst_initial_traffic: f64,
    /// Initial mean delay under Nrst.
    pub nrst_initial_delay: f64,
}

/// Runs the AgRank-initialized simulation.
pub fn run(duration_s: f64, seed: u64) -> Fig6Result {
    let problem = prototype_problem(seed);
    let assignment = agrank_assignment(&problem, &AgRankConfig::paper(2));
    let state = SystemState::new(problem, assignment);
    let config = SimConfig::paper_default(duration_s, seed);
    let agrank_run = ConferenceSim::new(state, config).run();
    let nrst = prototype_nrst_state(seed);
    Fig6Result {
        agrank_run,
        nrst_initial_traffic: nrst.total_traffic_mbps(),
        nrst_initial_delay: nrst.mean_delay_ms(),
    }
}

/// Prints the series plus the initial-point comparison.
pub fn print(result: &Fig6Result) {
    println!("Fig. 6 — Alg. 1 (β = 400) from the AgRank (nngbr = 2) initial assignment");
    print_series_table(
        &[
            ("traffic Mbps", &result.agrank_run.traffic),
            ("delay ms", &result.agrank_run.delay),
        ],
        5.0,
    );
    println!(
        "\ninitial traffic: AgRank {:.1} Mbps vs Nrst {:.1} Mbps (paper: 15 vs 22)",
        result.agrank_run.traffic.first_value().unwrap_or(0.0),
        result.nrst_initial_traffic
    );
    println!(
        "initial delay:   AgRank {:.1} ms vs Nrst {:.1} ms (paper: similar)",
        result.agrank_run.delay.first_value().unwrap_or(0.0),
        result.nrst_initial_delay
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrank_starts_with_less_traffic_than_nrst() {
        let r = run(20.0, 4);
        let agrank_initial = r.agrank_run.traffic.first_value().unwrap();
        assert!(
            agrank_initial < r.nrst_initial_traffic,
            "AgRank {agrank_initial} vs Nrst {}",
            r.nrst_initial_traffic
        );
    }

    #[test]
    fn alg1_still_improves_on_agrank_start() {
        let r = run(120.0, 4);
        let first = r.agrank_run.traffic.first_value().unwrap();
        let last = r.agrank_run.traffic.last_value().unwrap();
        assert!(last <= first, "traffic {first} → {last}");
    }
}
