//! Elastic-capacity experiment (extension): online agent growth,
//! region drain, and crash/recovery parity over a journaled fleet.
//! Emits `BENCH_elastic.json`.
//!
//! A persistent fleet starts from the 7-agent `large_scale_instance`
//! seed with every seed session admitted, then **doubles its agent
//! pool per tier** online (`Fleet::register_agent` into alternating
//! `east`/`west` regions) while a depart/re-admit churn keeps the
//! ledger hot between tiers. Per tier the run records registration
//! throughput and latency percentiles; across tiers it derives the
//! headline boolean:
//!
//! * `register_cost_sublinear` — the median per-register cost of the
//!   last tier must stay under half of what a pool-proportional
//!   (linear) scaling of the first tier's cost would predict. This is
//!   what the ledger's append-only extension and the FREEZE problem's
//!   amortized copy-on-extend buy: registering into a 16× pool must
//!   not cost 16× per agent.
//! * `drain_completed` — every `east` agent drains to zero reserved
//!   capacity, stays refused by `restore_agent`, and the fleet audits
//!   clean afterwards.
//! * `parity` — after a post-drain crash, `Fleet::recover` rebuilds a
//!   durable state bitwise equal to the pre-crash capture (the v6
//!   journal replays the grown agent universe, regions and drains).

use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_model::{AgentDef, AgentId, AgentSpec, Capacity, SessionId};
use vc_obs::LatencyHist;
use vc_orchestrator::persist::PersistConfig;
use vc_orchestrator::{Fleet, FleetConfig, PlacementPolicy};
use vc_persist::journal::FsyncPolicy;
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// One growth-tier measurement (the pool doubles per tier).
#[derive(Debug, Clone)]
pub struct ElasticTier {
    /// Agent-pool size at the end of the tier.
    pub agents: usize,
    /// Mean pool size the tier's registrations ran against.
    pub mean_pool: f64,
    /// Agents registered in this tier.
    pub registered: usize,
    /// Registrations per second.
    pub registers_per_s: f64,
    /// Mean per-register latency (µs).
    pub mean_register_us: f64,
    /// Median per-register latency (µs).
    pub register_p50_us: f64,
    /// p99 per-register latency (µs).
    pub register_p99_us: f64,
    /// Live sessions after the tier's churn.
    pub live_sessions: usize,
    /// Conservation-audit discrepancies at the tier boundary (must
    /// be 0).
    pub conservation_violations: usize,
}

/// The whole run.
#[derive(Debug, Clone)]
pub struct ElasticResult {
    /// Sessions in the closed-world seed (all admitted up front).
    pub seed_sessions: usize,
    /// Users in the seed.
    pub seed_users: usize,
    /// Agents in the seed (the `large_scale_instance` seven).
    pub seed_agents: usize,
    /// Agents after the last tier.
    pub final_agents: usize,
    /// Mean-pool ratio between the last and first tiers.
    pub pool_growth: f64,
    /// Whole-run registration throughput (every register over the sum
    /// of all per-tier register time — the gated aggregate; per-tier
    /// rates integrate too little wall-clock time to gate).
    pub registers_per_s: f64,
    /// Last-tier median register cost over first-tier median register
    /// cost (medians, not means: a single scheduler blip in the
    /// 7-register first tier must not decide the boolean below).
    pub register_cost_ratio: f64,
    /// `register_cost_ratio <= pool_growth / 2` — per-register cost
    /// grows clearly slower than the pool.
    pub register_cost_sublinear: bool,
    /// Agents drained (every `east` registration).
    pub drained_agents: usize,
    /// User/task moves the drains forced.
    pub drain_moves: usize,
    /// Every drained agent at zero reserved capacity, `restore_agent`
    /// refused, audit clean.
    pub drain_completed: bool,
    /// `Fleet::recover` wall time (ms).
    pub recover_ms: f64,
    /// Journal records replayed by the recovery.
    pub replayed: usize,
    /// Recovered durable state bitwise equal to the pre-crash capture.
    pub parity: bool,
    /// Total audit discrepancies across every checkpoint of the run.
    pub conservation_violations: usize,
    /// One entry per growth tier.
    pub tiers: Vec<ElasticTier>,
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/persist-bench")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 8,
        ..FleetConfig::default()
    }
}

fn persist_config(dir: &std::path::Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        // Buffered appends: the experiment measures registration cost,
        // not fsync latency (the persist experiment measures that).
        fsync: FsyncPolicy::Batch(1024),
        stay_batch: 64,
    }
}

/// A registrable definition against a pool of `num_agents` agents and
/// `num_users` users, deterministically varied by `(tier, i)`.
fn late_def(tier: usize, i: usize, num_agents: usize, num_users: usize) -> AgentDef {
    let bw = 150.0 + (i % 5) as f64 * 25.0;
    AgentDef {
        spec: AgentSpec::builder(format!("el-{tier}-{i}"))
            .capacity(Capacity::new(bw, bw, 4 + (i % 4) as u32))
            .build(),
        inter_agent_ms: (0..num_agents)
            .map(|k| 20.0 + ((k * 7 + i * 3 + tier * 11) % 40) as f64)
            .collect(),
        user_delays_ms: (0..num_users)
            .map(|u| 6.0 + ((u * 5 + i) % 29) as f64)
            .collect(),
    }
}

/// Runs the experiment: the seed's 7-agent pool doubles `tiers` times
/// online (7 → 7·2^tiers agents), then region `east` drains and the
/// fleet crash-recovers.
pub fn run(seed_users: usize, tiers: usize, seed: u64) -> ElasticResult {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: seed_users,
        max_session_size: 5,
        // Generous but finite seed capacity: growth and drain, not
        // admission feasibility, are what the experiment measures.
        mean_bandwidth_mbps: Some(10_000.0),
        mean_transcode_slots: Some(500.0),
        seed,
        ..LargeScaleConfig::default()
    });
    let seed_sessions = instance.num_sessions();
    let seed_user_count = instance.num_users();
    let seed_agents = instance.num_agents();
    let problem = Arc::new(UapProblem::new(
        instance,
        vc_cost::CostModel::paper_default(),
    ));
    // Warm the registration path on a throwaway fleet so the first
    // timed tier (only 7 registers) isn't paying one-time lazy-init
    // costs — check mode runs this after memory-heavy experiments.
    {
        let warm = Fleet::new(problem.clone(), fleet_config());
        for i in 0..8 {
            let def = late_def(999, i, warm.num_agents(), seed_user_count);
            warm.register_agent(&def, "warmup")
                .expect("warmup register");
        }
    }
    let store = scratch_dir(&format!("elastic-{seed_users}-{tiers}"));
    let fleet = Fleet::with_persistence(problem.clone(), fleet_config(), persist_config(&store))
        .expect("persistent fleet");
    for i in 0..seed_sessions {
        fleet
            .admit(SessionId::from(i))
            .expect("seed capacities are generous");
    }

    let mut conservation_violations = 0usize;
    let mut east: Vec<AgentId> = Vec::new();
    let mut tier_rows = Vec::new();
    let mut total_register_time = Duration::ZERO;
    let mut total_registered = 0usize;
    for t in 0..tiers {
        let pool_start = fleet.num_agents();
        let batch = pool_start; // doubling ladder
        let mut tier_time = Duration::ZERO;
        let mut hist = LatencyHist::new();
        for i in 0..batch {
            let def = late_def(t, i, fleet.num_agents(), seed_user_count);
            let region = if (total_registered + i).is_multiple_of(2) {
                "east"
            } else {
                "west"
            };
            let t0 = Instant::now();
            let a = fleet
                .register_agent(&def, region)
                .expect("well-formed definition");
            let dt = t0.elapsed();
            tier_time += dt;
            hist.record(dt.as_nanos() as u64);
            if region == "east" {
                east.push(a);
            }
        }
        total_register_time += tier_time;
        total_registered += batch;
        // Depart/re-admit churn: the next tier registers against a
        // ledger whose holds were re-placed over the grown pool.
        for k in 0..8.min(seed_sessions) {
            let s = SessionId::from((t * 8 + k) % seed_sessions);
            fleet.depart(s);
            fleet.admit(s).expect("re-admit against a bigger pool");
        }
        let violations = fleet.audit().len();
        conservation_violations += violations;
        let n = batch as f64;
        let summary = hist.summary();
        tier_rows.push(ElasticTier {
            agents: fleet.num_agents(),
            mean_pool: (pool_start + fleet.num_agents()) as f64 / 2.0,
            registered: batch,
            registers_per_s: n / tier_time.as_secs_f64().max(1e-12),
            mean_register_us: tier_time.as_secs_f64() * 1e6 / n,
            register_p50_us: summary.p50_ns as f64 / 1e3,
            register_p99_us: summary.p99_ns as f64 / 1e3,
            live_sessions: fleet.live_count(),
            conservation_violations: violations,
        });
    }
    let final_agents = fleet.num_agents();
    let (pool_growth, register_cost_ratio) = match (tier_rows.first(), tier_rows.last()) {
        (Some(first), Some(last)) if tier_rows.len() >= 2 => (
            last.mean_pool / first.mean_pool,
            last.register_p50_us / first.register_p50_us.max(1e-9),
        ),
        _ => (1.0, 1.0),
    };
    let register_cost_sublinear = register_cost_ratio <= pool_growth / 2.0;

    // Drain every `east` agent: refuse-new-holds-then-evacuate.
    let mut drain_moves = 0usize;
    for &a in &east {
        let (moves, forced) = fleet.drain_agent(a);
        drain_moves += moves + forced;
    }
    let totals = fleet.ledger().reserved_totals();
    let mut drain_completed = true;
    for &a in &east {
        let idle = totals.download[a.index()] == 0.0
            && totals.upload[a.index()] == 0.0
            && totals.transcode[a.index()] == 0;
        drain_completed &= idle && fleet.is_agent_drained(a) && !fleet.restore_agent(a);
    }
    let post_drain_violations = fleet.audit().len();
    conservation_violations += post_drain_violations;
    drain_completed &= post_drain_violations == 0;

    // Crash after the drains; recovery must replay the grown universe.
    fleet.commit_journal().expect("commit tail");
    let before = fleet.durable_state();
    drop(fleet); // crash
    let t0 = Instant::now();
    let (recovered, report) = Fleet::recover(persist_config(&store), problem, fleet_config())
        .expect("recover the elastic store");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let recovered_violations = recovered.audit().len();
    conservation_violations += recovered_violations;
    let parity = recovered.durable_state() == before
        && recovered.num_agents() == final_agents
        && recovered_violations == 0;

    ElasticResult {
        seed_sessions,
        seed_users: seed_user_count,
        seed_agents,
        final_agents,
        pool_growth,
        registers_per_s: total_registered as f64 / total_register_time.as_secs_f64().max(1e-12),
        register_cost_ratio,
        register_cost_sublinear,
        drained_agents: east.len(),
        drain_moves,
        drain_completed,
        recover_ms,
        replayed: report.replayed,
        parity,
        conservation_violations,
        tiers: tier_rows,
    }
}

/// Serializes the result as the `BENCH_elastic.json` document
/// (hand-rolled: the vendored serde is a no-op shim). The per-tier
/// array is named `tiers`, not `rows`, so the regression gate compares
/// only the whole-run aggregates — a single tier integrates too little
/// wall-clock time to gate.
pub fn to_json(result: &ElasticResult) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        concat!(
            "{{\n  \"experiment\": \"elastic\",\n  \"cpus\": {},\n",
            "  \"seed_sessions\": {},\n  \"seed_users\": {},\n",
            "  \"seed_agents\": {},\n  \"final_agents\": {},\n",
            "  \"pool_growth\": {:.2},\n",
            "  \"registers_per_s\": {:.1},\n",
            "  \"register_cost_ratio\": {:.3},\n",
            "  \"register_cost_sublinear\": {},\n",
            "  \"drained_agents\": {},\n  \"drain_moves\": {},\n",
            "  \"drain_completed\": {},\n",
            "  \"recover_ms\": {:.2},\n  \"replayed\": {},\n",
            "  \"parity\": {},\n",
            "  \"conservation_violations\": {},\n",
            "  \"tiers\": [\n"
        ),
        cpus,
        result.seed_sessions,
        result.seed_users,
        result.seed_agents,
        result.final_agents,
        result.pool_growth,
        result.registers_per_s,
        result.register_cost_ratio,
        result.register_cost_sublinear,
        result.drained_agents,
        result.drain_moves,
        result.drain_completed,
        result.recover_ms,
        result.replayed,
        result.parity,
        result.conservation_violations,
    );
    for (i, r) in result.tiers.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"agents\": {}, \"mean_pool\": {:.1}, \"registered\": {}, ",
                "\"registers_per_s\": {:.1}, \"mean_register_us\": {:.2}, ",
                "\"register_p50_us\": {:.2}, \"register_p99_us\": {:.2}, ",
                "\"live_sessions\": {}, \"conservation_violations\": {}}}{}\n"
            ),
            r.agents,
            r.mean_pool,
            r.registered,
            r.registers_per_s,
            r.mean_register_us,
            r.register_p50_us,
            r.register_p99_us,
            r.live_sessions,
            r.conservation_violations,
            if i + 1 == result.tiers.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the tiers and writes `BENCH_elastic.json` into the working
/// directory.
pub fn print(result: &ElasticResult) {
    println!(
        "Elastic capacity — {} seed agents grown to {} ({}× mean pool), {} sessions live",
        result.seed_agents, result.final_agents, result.pool_growth, result.seed_sessions
    );
    println!(
        "{:>8} {:>10} {:>12} {:>13} {:>12} {:>12} {:>6} {:>11}",
        "agents",
        "registered",
        "register/s",
        "register µs",
        "p50 µs",
        "p99 µs",
        "live",
        "violations"
    );
    for r in &result.tiers {
        println!(
            "{:>8} {:>10} {:>12.0} {:>13.2} {:>12.2} {:>12.2} {:>6} {:>11}",
            r.agents,
            r.registered,
            r.registers_per_s,
            r.mean_register_us,
            r.register_p50_us,
            r.register_p99_us,
            r.live_sessions,
            r.conservation_violations,
        );
    }
    println!(
        concat!(
            "\naggregate {:.0} register/s; last/first cost ratio {:.2} over a {:.1}× pool ",
            "(sublinear: {})\ndrained {} agents ({} moves, completed: {}); ",
            "recovered {} records in {:.1} ms (parity: {})"
        ),
        result.registers_per_s,
        result.register_cost_ratio,
        result.pool_growth,
        result.register_cost_sublinear,
        result.drained_agents,
        result.drain_moves,
        result.drain_completed,
        result.replayed,
        result.recover_ms,
        result.parity,
    );
    let json = to_json(result);
    match std::fs::write("BENCH_elastic.json", &json) {
        Ok(()) => println!("\nwrote BENCH_elastic.json"),
        Err(e) => eprintln!("\ncould not write BENCH_elastic.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_grows_drains_and_recovers() {
        let result = run(40, 3, 7);
        assert_eq!(result.seed_agents, 7);
        assert_eq!(result.final_agents, 7 * 8, "three doublings of 7");
        assert_eq!(result.tiers.len(), 3);
        assert_eq!(result.conservation_violations, 0);
        assert!(result.drain_completed, "east region failed to drain");
        assert!(result.parity, "recovered durable state diverged");
        assert!(result.drained_agents > 0);
        assert!(result.registers_per_s > 0.0);
        for t in &result.tiers {
            assert!(t.registers_per_s > 0.0);
            assert!(t.register_p99_us >= t.register_p50_us);
            assert_eq!(t.conservation_violations, 0);
        }
        let json = to_json(&result);
        assert!(json.contains("\"elastic\""));
        assert!(json.contains("\"register_cost_sublinear\""));
        assert!(json.contains("\"parity\""));
    }
}
