//! Control-plane experiment (extension): replays a dynamic
//! arrival/departure trace through the `vc-orchestrator` fleet — AgRank
//! admission against the sharded capacity ledger plus background Alg. 1
//! re-optimization — against the nearest-admission baseline, and prints
//! the fleet time series.

use crate::util::print_series_table;
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_model::AgentId;
use vc_orchestrator::{
    FleetConfig, FleetReport, Orchestrator, OrchestratorConfig, PlacementPolicy,
};
use vc_workloads::{dynamic_trace, large_scale_instance, DynamicTraceConfig, LargeScaleConfig};

/// Baseline + orchestrated runs over one trace.
#[derive(Debug)]
pub struct OrchestratorResult {
    /// Nearest admission, no re-optimization.
    pub baseline: FleetReport,
    /// AgRank admission + background workers.
    pub orchestrated: FleetReport,
    /// Virtual horizon (s).
    pub duration_s: f64,
}

/// Runs the fleet comparison for `duration_s` virtual seconds.
pub fn run(duration_s: f64, seed: u64) -> OrchestratorResult {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: 400,
        max_session_size: 4,
        mean_bandwidth_mbps: Some(2_500.0),
        mean_transcode_slots: Some(150.0),
        seed,
        ..LargeScaleConfig::default()
    });
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
    let trace = dynamic_trace(
        problem.instance().num_sessions(),
        &DynamicTraceConfig {
            horizon_s: duration_s,
            warm_sessions: problem.instance().num_sessions() * 4 / 5,
            mean_interarrival_s: Some(2.0),
            mean_holding_s: duration_s * 6.0,
            failures: vec![(duration_s * 0.5, AgentId::new(2))],
            restores: vec![],
            seed,
        },
    );
    let run_one = |placement: PlacementPolicy, reoptimize: bool| {
        Orchestrator::new(
            problem.clone(),
            OrchestratorConfig {
                fleet: FleetConfig {
                    placement,
                    alg1: Alg1Config {
                        mean_countdown_s: 5.0,
                        ..Alg1Config::paper(400.0)
                    },
                    ledger_shards: 4,
                    ..FleetConfig::default()
                },
                sample_period_s: 1.0,
                seed,
                reoptimize,
            },
        )
        .run_trace(&trace, duration_s)
    };
    OrchestratorResult {
        baseline: run_one(PlacementPolicy::Nearest, false),
        orchestrated: run_one(PlacementPolicy::AgRank(AgRankConfig::paper(3)), true),
        duration_s,
    }
}

/// Prints the fleet series and the final comparison.
pub fn print(result: &OrchestratorResult) {
    println!(
        "Orchestrator — dynamic fleet, agent a2 fails at t = {:.0} s",
        result.duration_s * 0.5
    );
    print_series_table(
        &[
            (
                "live sessions",
                result.orchestrated.telemetry.live_sessions_series(),
            ),
            (
                "phi/session nrst",
                result.baseline.telemetry.mean_session_objective_series(),
            ),
            (
                "phi/session orch",
                result
                    .orchestrated
                    .telemetry
                    .mean_session_objective_series(),
            ),
            (
                "traffic orch Mbps",
                result.orchestrated.telemetry.traffic_series(),
            ),
            (
                "max util orch",
                result.orchestrated.telemetry.max_utilization_series(),
            ),
        ],
        (result.duration_s / 12.0).max(1.0),
    );
    let b = &result.baseline.final_snapshot;
    let o = &result.orchestrated.final_snapshot;
    println!("\n{:<28} {:>12} {:>12}", "final", "nearest", "orchestrated");
    println!("{:<28} {:>12} {:>12}", "admitted", b.admitted, o.admitted);
    println!("{:<28} {:>12} {:>12}", "rejected", b.rejected, o.rejected);
    println!(
        "{:<28} {:>12.3} {:>12.3}",
        "admission success rate", b.admission_success_rate, o.admission_success_rate
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "migrations", b.migrations, o.migrations
    );
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "mean objective / session", b.mean_session_objective, o.mean_session_objective
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "inter-agent traffic (Mbps)", b.traffic_mbps, o.traffic_mbps
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "conservation violations",
        result.baseline.telemetry.total_conservation_violations(),
        result
            .orchestrated
            .telemetry
            .total_conservation_violations()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_improves_and_conserves() {
        let result = run(20.0, 3);
        assert!(result.orchestrated.final_snapshot.admitted > 50);
        assert_eq!(
            result
                .orchestrated
                .telemetry
                .total_conservation_violations(),
            0
        );
        assert!(
            result.orchestrated.final_snapshot.mean_session_objective
                <= result.baseline.final_snapshot.mean_session_objective
        );
    }
}
