//! Persistence experiment (extension): journal-append cost, snapshot /
//! checkpoint cost, and crash-recovery latency as the fleet grows.
//!
//! For each fleet size the run admits that many live sessions through
//! the real control plane with a write-ahead journal attached, then
//! measures (a) the buffered append path in isolation (the per-event
//! cost every fleet mutation pays), (b) one fsync'd commit of the
//! batch, (c) a full checkpoint (snapshot + journal rotation +
//! compaction), and (d) `Fleet::recover` over the resulting store —
//! snapshot load plus journal-tail replay plus the conservation
//! re-audit.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_model::SessionId;
use vc_orchestrator::persist::{FleetOp, PersistConfig};
use vc_orchestrator::{Fleet, FleetConfig, PlacementPolicy};
use vc_persist::journal::{FsyncPolicy, JournalWriter};
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// One fleet-size measurement.
#[derive(Debug, Clone)]
pub struct PersistRow {
    /// Live sessions when the store was measured.
    pub live_sessions: usize,
    /// Mean buffered journal-append latency (ns/event).
    pub append_ns: f64,
    /// Appends measured for `append_ns`.
    pub append_events: usize,
    /// One fsync'd commit of the whole append batch (ms).
    pub commit_ms: f64,
    /// Full checkpoint: snapshot write + journal rotation + compaction (ms).
    pub checkpoint_ms: f64,
    /// Snapshot file size after the checkpoint (bytes).
    pub snapshot_bytes: u64,
    /// `Fleet::recover`: snapshot load + tail replay + re-audit (ms).
    pub recover_ms: f64,
    /// Journal records replayed by the recovery.
    pub replayed: usize,
    /// Recovered-vs-crashed objective difference (must be 0.0).
    pub objective_delta: f64,
}

/// All rows of one run.
#[derive(Debug, Clone)]
pub struct PersistResult {
    /// One row per fleet size.
    pub rows: Vec<PersistRow>,
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/persist-bench")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

fn run_size(target: usize, seed: u64) -> PersistRow {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: target * 3,
        max_session_size: 3,
        seed,
        ..LargeScaleConfig::default()
    });
    let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
    let num_sessions = problem.instance().num_sessions();
    let store = scratch_dir(&format!("store-{target}"));
    let fleet = Fleet::with_persistence(
        problem.clone(),
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
            alg1: Alg1Config::paper(400.0),
            ledger_shards: 8,
            ..FleetConfig::default()
        },
        PersistConfig {
            dir: store.clone(),
            fsync: FsyncPolicy::Batch(1024),
            stay_batch: 64,
        },
    )
    .expect("persistent fleet");
    let mut live = 0usize;
    for i in 0..num_sessions {
        if live >= target {
            break;
        }
        if fleet.admit(SessionId::from(i)).is_ok() {
            live += 1;
        }
    }
    assert_eq!(live, target, "universe too small for the target fleet");

    // (a) The buffered append path in isolation, on a standalone
    // journal over records shaped like this fleet's real events.
    // One state materialization for all sample placements (`with_state`
    // re-evaluates every live session, so it must not sit in a loop).
    let placements: Vec<(SessionId, vc_orchestrator::fleet::Placement)> = fleet.with_state(|st| {
        (0..16.min(target))
            .map(|i| {
                let s = SessionId::from(i);
                (s, vc_orchestrator::fleet::placement_of(st, s))
            })
            .collect()
    });
    let mut sample_ops: Vec<FleetOp> = Vec::new();
    for (s, (users, tasks)) in placements {
        sample_ops.push(FleetOp::Admit {
            session: s,
            users,
            tasks,
            tier: vc_algo::admission::AdmissionTier::Enumeration,
            repair_steps: 0,
        });
        sample_ops.push(FleetOp::Stay { session: s });
    }
    let append_events = 20_000usize;
    let mut writer = JournalWriter::<FleetOp>::create(
        store.join("append-bench.scratch"),
        FsyncPolicy::Manual,
        1,
    )
    .expect("scratch journal");
    let t0 = Instant::now();
    for i in 0..append_events {
        writer
            .append(&sample_ops[i % sample_ops.len()])
            .expect("buffered append");
    }
    let append_ns = t0.elapsed().as_nanos() as f64 / append_events as f64;
    // (b) One fsync'd commit of everything appended above.
    let t0 = Instant::now();
    writer.commit().expect("commit");
    let commit_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(writer);
    let _ = std::fs::remove_file(store.join("append-bench.scratch"));

    // (c) A real checkpoint of the live fleet.
    let t0 = Instant::now();
    let seq = fleet.checkpoint().expect("checkpoint");
    let checkpoint_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot_bytes = std::fs::metadata(vc_persist::snapshot_path(&store, seq))
        .map(|m| m.len())
        .unwrap_or(0);

    // Post-checkpoint activity so recovery has a journal tail to
    // replay: a depart/re-admit churn across 10% of the fleet.
    for i in 0..(target / 10).max(1) {
        let s = SessionId::from(i);
        fleet.depart(s);
        fleet.admit(s).expect("re-admit");
    }
    fleet.commit_journal().expect("commit tail");
    let objective_before = fleet.objective();
    drop(fleet); // crash

    // (d) Recovery over the store: snapshot + tail + audit.
    let t0 = Instant::now();
    let (recovered, report) = Fleet::recover(
        PersistConfig {
            dir: store,
            fsync: FsyncPolicy::Batch(1024),
            stay_batch: 64,
        },
        problem,
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
            alg1: Alg1Config::paper(400.0),
            ledger_shards: 8,
            ..FleetConfig::default()
        },
    )
    .expect("recover");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(recovered.audit().is_empty(), "recovered fleet failed audit");
    PersistRow {
        live_sessions: recovered.live_count(),
        append_ns,
        append_events,
        commit_ms,
        checkpoint_ms,
        snapshot_bytes,
        recover_ms,
        replayed: report.replayed,
        objective_delta: (recovered.objective() - objective_before).abs(),
    }
}

/// Runs the persistence measurements across fleet sizes.
pub fn run(seed: u64) -> PersistResult {
    PersistResult {
        rows: [100usize, 300, 1000]
            .iter()
            .map(|&target| run_size(target, seed))
            .collect(),
    }
}

/// Prints the measurement table.
pub fn print(result: &PersistResult) {
    println!("Persistence — journal append, checkpoint, and crash recovery vs fleet size");
    println!(
        "{:>8} {:>12} {:>11} {:>13} {:>14} {:>11} {:>9} {:>10}",
        "live",
        "append ns",
        "commit ms",
        "checkpoint ms",
        "snapshot KiB",
        "recover ms",
        "replayed",
        "|Δφ|"
    );
    for r in &result.rows {
        println!(
            "{:>8} {:>12.0} {:>11.2} {:>13.2} {:>14.1} {:>11.2} {:>9} {:>10.1e}",
            r.live_sessions,
            r.append_ns,
            r.commit_ms,
            r.checkpoint_ms,
            r.snapshot_bytes as f64 / 1024.0,
            r.recover_ms,
            r.replayed,
            r.objective_delta,
        );
    }
    let worst = result
        .rows
        .iter()
        .map(|r| r.append_ns)
        .fold(0.0f64, f64::max);
    println!(
        "\nbuffered journal append worst case: {:.2} µs/event (target ≤ 10 µs)",
        worst / 1e3
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_round_trips_through_the_store() {
        let row = run_size(40, 7);
        assert_eq!(row.live_sessions, 40);
        assert!(row.replayed > 0, "no journal tail was replayed");
        assert_eq!(row.objective_delta, 0.0, "recovered objective differs");
    }
}
