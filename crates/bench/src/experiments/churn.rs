//! Failure injection (extension): an agent fails mid-run, its users and
//! tasks are evacuated immediately, Alg. 1 re-optimizes around the hole,
//! and the agent's recovery lets the optimizer pull sessions back.

use super::prototype_nrst_state;
use crate::util::print_series_table;
use vc_model::AgentId;
use vc_sim::{ChurnEvent, ConferenceSim, SimConfig, SimReport};

/// When the failure hits (s).
pub const FAIL_AT_S: f64 = 60.0;
/// When the agent recovers (s).
pub const RECOVER_AT_S: f64 = 140.0;

/// Runs the prototype workload with agent 0 failing and recovering.
pub fn run(duration_s: f64, seed: u64) -> SimReport {
    let state = prototype_nrst_state(seed);
    let agent = AgentId::new(0);
    ConferenceSim::new(state, SimConfig::paper_default(duration_s, seed))
        .with_churn(vec![
            ChurnEvent {
                time_s: FAIL_AT_S,
                agent,
                up: false,
            },
            ChurnEvent {
                time_s: RECOVER_AT_S,
                agent,
                up: true,
            },
        ])
        .run()
}

/// Prints the series and the evacuation summary.
pub fn print(report: &SimReport) {
    println!(
        "Failure injection — agent a0 fails at t = {FAIL_AT_S} s, recovers at t = {RECOVER_AT_S} s"
    );
    print_series_table(
        &[
            ("traffic Mbps", &report.traffic),
            ("delay ms", &report.delay),
        ],
        10.0,
    );
    for &(t, agent, moved, forced) in &report.evacuations {
        println!("\nevacuation at t = {t:.0} s: {moved} migrations off {agent} ({forced} forced)");
    }
    println!(
        "final state feasible: {} | {} total hops",
        report.final_state.is_feasible(),
        report.hops.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_triggers_evacuation_and_system_recovers() {
        let report = run(200.0, 2015);
        assert_eq!(report.evacuations.len(), 1);
        let (_, _, moved, _) = report.evacuations[0];
        assert!(moved > 0);
        assert!(report.final_state.is_feasible());
        assert!(report.final_state.is_agent_available(AgentId::new(0)));
    }
}
