//! Theorem 1 and Eqs. (10)/(12)/(13), measured — the paper *proves* the
//! bounds; here we verify them numerically on an exactly enumerable
//! instance (the Fig. 3 space: 2 users, 1 task, 2 agents → 8 states).

use std::sync::Arc;
use vc_algo::brute_force;
use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_markov::mixing::total_variation;
use vc_markov::perturb::{measured_gaps, perturbed_gap_bound, NoiseSpec};
use vc_markov::{expected_energy, gibbs, Ctmc, StateGraph};
use vc_model::{AgentSpec, InstanceBuilder, ReprLadder};

/// One row of the verification table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapRow {
    /// Inverse temperature β.
    pub beta: f64,
    /// Perturbation bound Δ.
    pub delta: f64,
    /// TV distance between the CTMC's exact stationary law and Gibbs.
    pub stationary_tv: f64,
    /// Measured clean gap `Φavg − Φmin` (Eq. 12 LHS).
    pub clean_gap: f64,
    /// The paper's clean bound `(U+θsum)·logL / β`.
    pub clean_bound: f64,
    /// Measured perturbed gap `Φ̄avg − Φmin` (Eq. 13 LHS).
    pub perturbed_gap: f64,
    /// The perturbed bound `(U+θsum)·logL/β + Δmax`.
    pub perturbed_bound: f64,
}

/// Builds the Fig. 3 instance: 1 session, 2 users, 1 transcoding task,
/// 2 agents — all 8 assignments feasible.
pub fn fig3_problem() -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let r360 = ladder.by_name("360p").expect("ladder has 360p").id();
    let r480 = ladder.by_name("480p").expect("ladder has 480p").id();
    let r720 = ladder.by_name("720p").expect("ladder has 720p").id();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(AgentSpec::builder("l1").build());
    b.add_agent(AgentSpec::builder("l2").speed_factor(1.6).build());
    let s = b.add_session();
    b.add_user(s, r720, r360);
    b.add_user(s, r360, r480); // demands 480p of u0's 720p → one task
    b.symmetric_delays(|_, _| 35.0, |l, u| 12.0 + 9.0 * ((l + u) % 2) as f64);
    Arc::new(UapProblem::new(
        b.build().unwrap(),
        CostModel::paper_default(),
    ))
}

/// The exact feasible graph of the Fig. 3 instance.
pub fn fig3_graph() -> StateGraph {
    let problem = fig3_problem();
    let (graph, _) = brute_force::feasible_graph(&problem, 1_000).expect("8 states");
    graph
}

/// Runs the verification across β and Δ grids.
pub fn run(betas: &[f64], deltas: &[f64]) -> Vec<GapRow> {
    let problem = fig3_problem();
    let graph = fig3_graph();
    // The paper's bound uses (U+θ_sum)·log L, an upper bound on log|F|.
    let log_f_bound = problem.log_state_space();
    let mut rows = Vec::new();
    for &beta in betas {
        let ctmc = Ctmc::new(graph.clone(), beta, 1.0);
        let stationary_tv = total_variation(&ctmc.stationary_exact(), &ctmc.target());
        for &delta in deltas {
            // State-dependent noise (Δ_f alternates between Δ and 0, and
            // the noisy states' error is biased low): with identical
            // symmetric noise on every state δ_f cancels out of Eq. (11)
            // and p̄ = p*, hiding the effect Theorem 1 bounds.
            let noise: Vec<NoiseSpec> = (0..graph.len())
                .map(|i| {
                    if i % 2 == 1 && delta > 0.0 {
                        NoiseSpec::new(delta, 1, vec![0.6, 0.3, 0.1])
                    } else {
                        NoiseSpec::noiseless()
                    }
                })
                .collect();
            let (clean_gap, perturbed_gap) = measured_gaps(&graph, beta, &noise);
            // perturbed_gap_bound uses ln|F|; report the paper's looser
            // (U+θsum)logL/β + Δmax form.
            let _ = perturbed_gap_bound(graph.len(), beta, &noise);
            rows.push(GapRow {
                beta,
                delta,
                stationary_tv,
                clean_gap,
                clean_bound: log_f_bound / beta,
                perturbed_gap,
                perturbed_bound: log_f_bound / beta + delta,
            });
        }
    }
    rows
}

/// Sanity numbers for the β → ∞ limit: the Gibbs law concentrates on the
/// optimum.
pub fn concentration(beta: f64) -> (f64, f64) {
    let graph = fig3_graph();
    let p = gibbs(graph.energies(), beta);
    let (i_min, phi_min) = graph.min_energy();
    (p[i_min], expected_energy(&p, graph.energies()) - phi_min)
}

/// Prints the verification table.
pub fn print(rows: &[GapRow]) {
    println!("Theorem 1 / Eqs. (10)(12)(13) — measured gaps vs analytical bounds");
    println!("(Fig. 3 space: 8 feasible states; bounds use (U+θsum)·logL)");
    println!(
        "{:>8} {:>8} {:>14} {:>12} {:>12} {:>14} {:>14}",
        "beta", "delta", "stationaryTV", "gap", "bound(12)", "gap-pert", "bound(13)"
    );
    for r in rows {
        println!(
            "{:>8.3} {:>8.2} {:>14.2e} {:>12.4} {:>12.4} {:>14.4} {:>14.4}",
            r.beta,
            r.delta,
            r.stationary_tv,
            r.clean_gap,
            r.clean_bound,
            r.perturbed_gap,
            r.perturbed_bound
        );
    }
    let (p_opt, gap) = concentration(50.0);
    println!("\nβ = 50 concentration check: p*(optimum) = {p_opt:.4}, residual gap = {gap:.4}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_on_every_row() {
        let rows = run(&[1.0, 10.0, 100.0], &[0.0, 5.0]);
        for r in &rows {
            assert!(r.clean_gap >= -1e-9, "negative gap at β={}", r.beta);
            assert!(
                r.clean_gap <= r.clean_bound + 1e-9,
                "eq 12 violated at β={}: {} > {}",
                r.beta,
                r.clean_gap,
                r.clean_bound
            );
            assert!(
                r.perturbed_gap <= r.perturbed_bound + 1e-9,
                "eq 13 violated at β={}, Δ={}",
                r.beta,
                r.delta
            );
        }
    }

    #[test]
    fn exact_stationary_matches_gibbs() {
        let rows = run(&[5.0], &[0.0]);
        assert!(rows[0].stationary_tv < 1e-8);
    }

    #[test]
    fn gibbs_concentrates_at_high_beta() {
        let (p_opt, gap) = concentration(200.0);
        assert!(p_opt > 0.99);
        assert!(gap < 0.1);
    }

    #[test]
    fn fig3_space_is_the_paper_cube() {
        let g = fig3_graph();
        assert_eq!(g.len(), 8);
        assert!(g.is_connected());
    }
}
