//! Fig. 10 — the impact of `n_ngbr` on AgRank's initial assignment:
//! traffic falls as the candidate sets widen; with `n_ngbr = L` whole
//! sessions collapse onto single agents and delay suffers.

use crate::util::{mean, par_map_seeds};
use std::sync::Arc;
use vc_algo::agrank::{agrank_assignment, AgRankConfig};
use vc_core::{SystemState, UapProblem};
use vc_cost::CostModel;
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NngbrPoint {
    /// The candidate-set size.
    pub n_ngbr: usize,
    /// Mean inter-agent traffic (Mbps) across scenarios.
    pub traffic_mbps: f64,
    /// Mean conferencing delay (ms) across scenarios.
    pub delay_ms: f64,
}

/// Evaluates AgRank's initial assignment for each `n_ngbr`.
pub fn run(nngbrs: &[usize], scenarios: usize, base_seed: u64) -> Vec<NngbrPoint> {
    let seeds: Vec<u64> = (0..scenarios as u64).map(|i| base_seed + i).collect();
    let per_seed = par_map_seeds(&seeds, |seed| {
        let instance = large_scale_instance(&LargeScaleConfig {
            seed,
            ..LargeScaleConfig::default()
        });
        let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
        nngbrs
            .iter()
            .map(|&n| {
                let asg = agrank_assignment(&problem, &AgRankConfig::paper(n));
                let state = SystemState::new(problem.clone(), asg);
                (state.total_traffic_mbps(), state.mean_delay_ms())
            })
            .collect::<Vec<_>>()
    });
    nngbrs
        .iter()
        .enumerate()
        .map(|(i, &n_ngbr)| NngbrPoint {
            n_ngbr,
            traffic_mbps: mean(&per_seed.iter().map(|r| r[i].0).collect::<Vec<_>>()),
            delay_ms: mean(&per_seed.iter().map(|r| r[i].1).collect::<Vec<_>>()),
        })
        .collect()
}

/// Prints the sweep.
pub fn print(points: &[NngbrPoint]) {
    println!("Fig. 10 — impact of n_ngbr on AgRank's initial assignment");
    println!("{:>8} {:>16} {:>12}", "n_ngbr", "traffic Mbps", "delay ms");
    for p in points {
        println!(
            "{:>8} {:>16.0} {:>12.1}",
            p.n_ngbr, p.traffic_mbps, p.delay_ms
        );
    }
    println!("\n(n_ngbr = 1 is exactly Nrst; n_ngbr = L collapses each session onto one agent)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nngbr_one_has_highest_traffic() {
        let pts = run(&[1, 4, 7], 3, 90);
        assert!(pts[0].traffic_mbps > pts[1].traffic_mbps);
        assert!(pts[1].traffic_mbps >= pts[2].traffic_mbps);
    }

    #[test]
    fn full_collapse_raises_delay_over_moderate_nngbr() {
        let pts = run(&[2, 7], 3, 91);
        // The paper: with n_ngbr = L users "suffer from long conferencing
        // delays" relative to moderate candidate sets.
        assert!(
            pts[1].delay_ms > pts[0].delay_ms - 20.0,
            "expected collapse delay {} to be comparable-or-worse than {}",
            pts[1].delay_ms,
            pts[0].delay_ms
        );
    }
}
