//! One module per paper table/figure (see DESIGN.md's experiment index).

pub mod ablation;
pub mod admission_parity;
pub mod chaos;
pub mod churn;
pub mod elastic;
pub mod fig10;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hop_bench;
pub mod migration;
pub mod obs_overhead;
pub mod open_world;
pub mod orchestrator;
pub mod persist;
pub mod robust;
pub mod table2;
pub mod theorem1;

use std::sync::Arc;
use vc_algo::nearest::nearest_assignment;
use vc_core::{SystemState, UapProblem};
use vc_cost::CostModel;
use vc_workloads::{prototype_instance, PrototypeConfig};

/// The prototype problem (Sec. V-A) under the paper's default cost model.
pub fn prototype_problem(seed: u64) -> Arc<UapProblem> {
    let instance = prototype_instance(&PrototypeConfig {
        seed,
        ..PrototypeConfig::default()
    });
    Arc::new(UapProblem::new(instance, CostModel::paper_default()))
}

/// Prototype state bootstrapped with the nearest policy.
pub fn prototype_nrst_state(seed: u64) -> SystemState {
    let p = prototype_problem(seed);
    let asg = nearest_assignment(&p);
    SystemState::new(p, asg)
}
