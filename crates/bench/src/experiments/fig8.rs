//! Fig. 8 — box plots of conferencing delay across scenarios, for the
//! initial assignments and each α configuration (reported as five-number
//! summaries).

use super::table2::{self, Table2Config, Table2Result};
use vc_sim::BoxStats;

/// A labeled delay distribution.
#[derive(Debug, Clone)]
pub struct DelayBox {
    /// Configuration label.
    pub label: String,
    /// Five-number summary of mean conferencing delay across scenarios.
    pub stats: BoxStats,
}

/// Summarizes a Table II result into the Fig. 8 box statistics.
pub fn from_table2(result: &Table2Result) -> Vec<DelayBox> {
    let mut out = Vec::new();
    for (init, rows) in [("Nrst", &result.nrst), ("AgRank", &result.agrank)] {
        for (c, col) in table2::COLUMNS.iter().enumerate() {
            let delays: Vec<f64> = rows.iter().map(|r| r[c].delay).collect();
            out.push(DelayBox {
                label: format!("{init} / {col}"),
                stats: BoxStats::from_values(&delays),
            });
        }
    }
    out
}

/// Runs Table II and reports the box statistics.
pub fn run(config: &Table2Config) -> Vec<DelayBox> {
    from_table2(&table2::run(config))
}

/// Prints the five-number summaries.
pub fn print(boxes: &[DelayBox]) {
    println!("Fig. 8 — conferencing delay distribution across scenarios (ms)");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "configuration", "min", "q1", "median", "q3", "max", "mean"
    );
    for b in boxes {
        println!(
            "{:<28} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            b.label, b.stats.min, b.stats.q1, b.stats.median, b.stats.q3, b.stats.max, b.stats.mean
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_boxes_with_ordered_quartiles() {
        let boxes = run(&Table2Config {
            scenarios: 3,
            duration_s: 20.0,
            beta: 400.0,
            base_seed: 11,
        });
        assert_eq!(boxes.len(), 8);
        for b in &boxes {
            assert!(b.stats.min <= b.stats.q1);
            assert!(b.stats.q1 <= b.stats.median);
            assert!(b.stats.median <= b.stats.q3);
            assert!(b.stats.q3 <= b.stats.max);
        }
    }
}
