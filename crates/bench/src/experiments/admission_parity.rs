//! Admission-parity experiment (extension): one admission engine for
//! the fleet and the Fig. 9 experiments — measured, and emitted as
//! `BENCH_admission.json`.
//!
//! For each fleet size (≈1k and ≈12k sessions by default) over a
//! capacity-contended Internet-scale universe, three admitters run over
//! the same arrival order:
//!
//! * **fleet engine** — `Fleet::admit` under `AdmissionMode::Engine`
//!   (the shared enumeration → repair → ranked-fallback search against
//!   live ledger residuals), timed per admission;
//! * **fleet legacy** — `Fleet::admit` under
//!   `AdmissionMode::LegacyRanked` (the control plane's historical
//!   walk), timed per admission;
//! * **offline `admit_all`** — the Fig. 9 driver of the same engine
//!   over a closed-world state.
//!
//! The headline claim is **parity**: the fleet engine's admitted
//! session set equals the offline set exactly (the `parity` field must
//! read `true`), while the legacy walk under-admits — the gap the
//! engine closes. Conservation audits run after every fleet, and must
//! be clean.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;
use vc_algo::admission::{admit_all, AdmissionPolicy};
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_model::SessionId;
use vc_obs::Site;
use vc_orchestrator::{AdmissionMode, Fleet, FleetConfig, PlacementPolicy};
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// One fleet-size measurement.
#[derive(Debug, Clone)]
pub struct AdmissionRow {
    /// Sessions in the universe.
    pub sessions: usize,
    /// Users across those sessions.
    pub users: usize,
    /// Agents.
    pub agents: usize,
    /// Sessions the engine-mode fleet admitted.
    pub engine_admitted: usize,
    /// Engine-mode admitted fraction.
    pub engine_fraction: f64,
    /// Mean engine admit latency (µs, admissions and refusals alike).
    pub engine_mean_us: f64,
    /// Median engine admit latency (µs), from the fleet's `vc-obs`
    /// plane (all engine-tier sites plus refusals, merged).
    pub engine_p50_us: f64,
    /// p99 engine admit latency (µs), same source.
    pub engine_p99_us: f64,
    /// Enumeration-tier admissions.
    pub engine_enumeration: usize,
    /// Repair-tier admissions.
    pub engine_repair: usize,
    /// Ranked-fallback-tier admissions.
    pub engine_fallback: usize,
    /// Repair moves applied across all admissions.
    pub engine_repair_steps: usize,
    /// Sessions the legacy-mode fleet admitted.
    pub legacy_admitted: usize,
    /// Legacy-mode admitted fraction.
    pub legacy_fraction: f64,
    /// Mean legacy admit latency (µs).
    pub legacy_mean_us: f64,
    /// Median legacy admit latency (µs), from the legacy fleet's
    /// `vc-obs` plane (`admit_legacy` + refusals).
    pub legacy_p50_us: f64,
    /// p99 legacy admit latency (µs), same source.
    pub legacy_p99_us: f64,
    /// Sessions the offline `admit_all` admitted.
    pub offline_admitted: usize,
    /// Offline admitted fraction.
    pub offline_fraction: f64,
    /// Whether the engine fleet's admitted set equals the offline set
    /// exactly (the PR's correctness claim; must be `true`).
    pub parity: bool,
    /// Conservation-audit discrepancies after both fleet runs (must
    /// be 0).
    pub conservation_violations: usize,
}

/// All rows of one run.
#[derive(Debug, Clone)]
pub struct AdmissionParityResult {
    /// One row per fleet size.
    pub rows: Vec<AdmissionRow>,
}

/// A capacity-contended universe: tight enough that even the engine
/// refuses a meaningful share of arrivals (~7–8 %; the legacy walk
/// refuses ~25 %), so refusal accounting, the engine/legacy gap, and
/// the parity claim are all exercised. Sessions here are small (≤ 3
/// users), so every accepted placement comes from the enumeration
/// tier; the repair/fallback tiers are exercised by the engine's unit
/// tests, which force a zero combo cap.
fn build_problem(target_sessions: usize, seed: u64) -> Arc<UapProblem> {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: target_sessions * 3,
        max_session_size: 3,
        // Scale capacity with the fleet but keep it scarce: the Fig. 9
        // transition regime, not the roomy hop-bench one.
        mean_bandwidth_mbps: Some(7_000.0 * target_sessions as f64 / 1_000.0),
        mean_transcode_slots: Some(450.0 * target_sessions as f64 / 1_000.0),
        seed,
        ..LargeScaleConfig::default()
    });
    Arc::new(UapProblem::new(
        instance,
        vc_cost::CostModel::paper_default(),
    ))
}

fn config(admission: AdmissionMode) -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
        admission,
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 8,
        ..FleetConfig::default()
    }
}

/// Drives one fleet over all sessions in id order, timing each admit.
/// Returns `(admitted set, per-admit latencies µs)`.
fn drive(fleet: &Fleet) -> (BTreeSet<SessionId>, Vec<f64>) {
    let n = fleet.problem().instance().num_sessions();
    let mut admitted = BTreeSet::new();
    let mut latencies = Vec::with_capacity(n);
    for i in 0..n {
        let s = SessionId::new(i as u32);
        let t0 = Instant::now();
        let ok = fleet.admit(s).is_ok();
        latencies.push(t0.elapsed().as_nanos() as f64 / 1e3);
        if ok {
            admitted.insert(s);
        }
    }
    (admitted, latencies)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The admit-latency histogram of one driven fleet: every engine tier
/// (or the legacy walk) merged with the refusals, so the distribution
/// covers each `Fleet::admit` call exactly once.
fn admit_summary(fleet: &Fleet) -> vc_obs::HistSummary {
    fleet
        .obs()
        .merged(&[
            Site::AdmitEnumeration,
            Site::AdmitRepair,
            Site::AdmitFallback,
            Site::AdmitLegacy,
            Site::AdmitRefused,
        ])
        .summary()
}

fn run_size(target: usize, seed: u64) -> AdmissionRow {
    let problem = build_problem(target, seed);
    let inst = problem.instance();
    let n = inst.num_sessions();

    let engine_fleet = Fleet::new(problem.clone(), config(AdmissionMode::default()));
    let (engine_set, engine_lat) = drive(&engine_fleet);
    let engine_summary = admit_summary(&engine_fleet);
    let engine_audit = engine_fleet.audit().len();

    let legacy_fleet = Fleet::new(problem.clone(), config(AdmissionMode::LegacyRanked));
    let (legacy_set, legacy_lat) = drive(&legacy_fleet);
    let legacy_summary = admit_summary(&legacy_fleet);
    let legacy_audit = legacy_fleet.audit().len();

    let offline = admit_all(
        problem.clone(),
        &AdmissionPolicy::AgRank(AgRankConfig::paper(3)),
    );
    let offline_set: BTreeSet<SessionId> = offline.state.active_sessions().collect();

    use std::sync::atomic::Ordering::Relaxed;
    let c = engine_fleet.counters();
    AdmissionRow {
        sessions: n,
        users: inst.num_users(),
        agents: inst.num_agents(),
        engine_admitted: engine_set.len(),
        engine_fraction: engine_set.len() as f64 / n as f64,
        engine_mean_us: mean(&engine_lat),
        engine_p50_us: engine_summary.p50_ns as f64 / 1e3,
        engine_p99_us: engine_summary.p99_ns as f64 / 1e3,
        engine_enumeration: c.admitted_enumeration.load(Relaxed),
        engine_repair: c.admitted_repair.load(Relaxed),
        engine_fallback: c.admitted_fallback.load(Relaxed),
        engine_repair_steps: c.repair_steps.load(Relaxed),
        legacy_admitted: legacy_set.len(),
        legacy_fraction: legacy_set.len() as f64 / n as f64,
        legacy_mean_us: mean(&legacy_lat),
        legacy_p50_us: legacy_summary.p50_ns as f64 / 1e3,
        legacy_p99_us: legacy_summary.p99_ns as f64 / 1e3,
        offline_admitted: offline_set.len(),
        offline_fraction: offline_set.len() as f64 / n as f64,
        parity: engine_set == offline_set,
        conservation_violations: engine_audit + legacy_audit,
    }
}

/// Runs the experiment across fleet sizes (target session counts).
pub fn run(sizes: &[usize], seed: u64) -> AdmissionParityResult {
    AdmissionParityResult {
        rows: sizes.iter().map(|&t| run_size(t, seed)).collect(),
    }
}

/// Serializes the result as the `BENCH_admission.json` document
/// (hand-rolled: the vendored serde is a no-op shim).
pub fn to_json(result: &AdmissionParityResult) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"experiment\": \"admission_parity\",\n  \"cpus\": {cpus},\n  \"rows\": [\n"
    );
    for (i, r) in result.rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"sessions\": {}, \"users\": {}, \"agents\": {}, ",
                "\"engine_admitted\": {}, \"engine_fraction\": {:.4}, ",
                "\"engine_mean_us\": {:.1}, \"engine_p50_us\": {:.1}, \"engine_p99_us\": {:.1}, ",
                "\"engine_enumeration\": {}, \"engine_repair\": {}, ",
                "\"engine_fallback\": {}, \"engine_repair_steps\": {}, ",
                "\"legacy_admitted\": {}, \"legacy_fraction\": {:.4}, ",
                "\"legacy_mean_us\": {:.1}, \"legacy_p50_us\": {:.1}, \"legacy_p99_us\": {:.1}, ",
                "\"offline_admitted\": {}, \"offline_fraction\": {:.4}, ",
                "\"parity\": {}, \"conservation_violations\": {}}}{}\n"
            ),
            r.sessions,
            r.users,
            r.agents,
            r.engine_admitted,
            r.engine_fraction,
            r.engine_mean_us,
            r.engine_p50_us,
            r.engine_p99_us,
            r.engine_enumeration,
            r.engine_repair,
            r.engine_fallback,
            r.engine_repair_steps,
            r.legacy_admitted,
            r.legacy_fraction,
            r.legacy_mean_us,
            r.legacy_p50_us,
            r.legacy_p99_us,
            r.offline_admitted,
            r.offline_fraction,
            r.parity,
            r.conservation_violations,
            if i + 1 == result.rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the rows and writes `BENCH_admission.json` into the working
/// directory.
pub fn print(result: &AdmissionParityResult) {
    println!("Admission parity — fleet engine vs legacy ranked walk vs offline admit_all");
    println!(
        "{:>9} {:>7} {:>8}/{:<8} {:>8}/{:<8} {:>8}/{:<8} {:>7}",
        "sessions", "agents", "engine", "frac", "legacy", "frac", "offline", "frac", "parity"
    );
    for r in &result.rows {
        println!(
            "{:>9} {:>7} {:>8}/{:<8.4} {:>8}/{:<8.4} {:>8}/{:<8.4} {:>7}",
            r.sessions,
            r.agents,
            r.engine_admitted,
            r.engine_fraction,
            r.legacy_admitted,
            r.legacy_fraction,
            r.offline_admitted,
            r.offline_fraction,
            r.parity,
        );
    }
    println!("\nEngine admit latency (vc-obs percentiles) and search-tier mix");
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>12} {:>8} {:>9} {:>13} {:>11}",
        "sessions",
        "mean µs",
        "p50 µs",
        "p99 µs",
        "enumeration",
        "repair",
        "fallback",
        "repair steps",
        "violations"
    );
    for r in &result.rows {
        println!(
            "{:>9} {:>10.1} {:>10.1} {:>10.1} {:>12} {:>8} {:>9} {:>13} {:>11}",
            r.sessions,
            r.engine_mean_us,
            r.engine_p50_us,
            r.engine_p99_us,
            r.engine_enumeration,
            r.engine_repair,
            r.engine_fallback,
            r.engine_repair_steps,
            r.conservation_violations,
        );
    }
    println!("\nLegacy admit latency (for comparison)");
    for r in &result.rows {
        println!(
            "{:>9} sessions: mean {:.1} µs, p50 {:.1} µs, p99 {:.1} µs",
            r.sessions, r.legacy_mean_us, r.legacy_p50_us, r.legacy_p99_us
        );
    }
    let json = to_json(result);
    match std::fs::write("BENCH_admission.json", &json) {
        Ok(()) => println!("\nwrote BENCH_admission.json"),
        Err(e) => eprintln!("\ncould not write BENCH_admission.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_has_parity_and_clean_audits() {
        let result = run(&[60], 11);
        assert_eq!(result.rows.len(), 1);
        let r = &result.rows[0];
        assert!(r.sessions >= 40, "universe lost sessions: {}", r.sessions);
        assert!(r.parity, "engine fleet diverged from offline admit_all");
        assert_eq!(r.conservation_violations, 0);
        assert!(
            r.engine_admitted >= r.legacy_admitted,
            "engine under-admits"
        );
        assert_eq!(
            r.engine_admitted,
            r.engine_enumeration + r.engine_repair + r.engine_fallback
        );
        // The vc-obs percentiles cover every admit call of each fleet.
        assert!(r.engine_p50_us > 0.0 && r.engine_p99_us >= r.engine_p50_us);
        assert!(r.legacy_p50_us > 0.0 && r.legacy_p99_us >= r.legacy_p50_us);
        let json = to_json(&result);
        assert!(json.contains("\"admission_parity\""));
        assert!(json.contains("\"parity\": true"));
        assert!(json.contains("\"engine_p50_us\"") && json.contains("\"legacy_p99_us\""));
    }
}
