//! Hop-throughput experiment (extension): establishes the perf
//! trajectory of the Alg. 1 HOP hot path and emits `BENCH_hop.json`.
//!
//! Three measurements per fleet size (1k / 10k sessions by default):
//!
//! * **legacy** — the seed's candidate path, reproduced faithfully:
//!   every candidate clones the entire global `Assignment`, evaluates
//!   the session from scratch with freshly allocated buffers, and
//!   checks capacity against **all** `L` agents;
//! * **scratch** — the allocation-free path: overlay views + a reused
//!   [`EvalScratch`](vc_core::EvalScratch), sparse touched-agent
//!   capacity checks, commit by buffer swap;
//! * **concurrent** — the orchestrator fleet under the sharded FREEZE:
//!   [`ReoptPool::run_wall`] racing 1 vs 4 OS threads, hops committing
//!   through the ledger's checked `try_swap`, followed by a
//!   conservation audit.
//!
//! Allocations are counted by the `experiments` binary's counting
//! global allocator, surfaced through [`vc_obs::allocs_now`] (the
//! binary registers its counter with
//! [`vc_obs::register_alloc_counter`]; library tests, which have no
//! counting allocator, read 0 allocations). Per-hop latency
//! percentiles come from `vc-obs` histograms: the serial scratch loop
//! records into a local [`LatencyHist`], the concurrent fleet reads
//! its own plane's `hop` site.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_algo::markov::{Alg1Config, Alg1Engine, HopScratch};
use vc_core::evaluate::evaluate_session;
use vc_core::{Decision, SessionLoad, SystemState, UapProblem};
use vc_model::{AgentId, SessionId};
use vc_obs::{LatencyHist, Site};
use vc_orchestrator::{Fleet, FleetConfig, PlacementPolicy, ReoptPool};
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// Reads the process-wide allocation counter if the binary registered
/// one ([`vc_obs::register_alloc_counter`]); 0 otherwise, making every
/// allocs-per-hop figure 0 rather than garbage.
fn alloc_count() -> u64 {
    vc_obs::allocs_now().unwrap_or(0)
}

/// Exponent clamp mirroring the engine's Gibbs weights.
const MAX_EXPONENT: f64 = 600.0;

/// One fleet-size measurement.
#[derive(Debug, Clone)]
pub struct HopBenchRow {
    /// Live sessions in the measured fleet.
    pub sessions: usize,
    /// Users across those sessions.
    pub users: usize,
    /// Agents in the universe.
    pub agents: usize,
    /// Seed-path (clone-per-candidate) single-thread hop throughput.
    pub legacy_hops_per_s: f64,
    /// Heap allocations per legacy hop.
    pub legacy_allocs_per_hop: f64,
    /// Scratch-path single-thread hop throughput.
    pub scratch_hops_per_s: f64,
    /// Heap allocations per scratch hop (steady state; ~0).
    pub scratch_allocs_per_hop: f64,
    /// Median scratch-hop latency (ns), from a `vc-obs` histogram.
    pub scratch_p50_ns: u64,
    /// 99th-percentile scratch-hop latency (ns).
    pub scratch_p99_ns: u64,
    /// `scratch_hops_per_s / legacy_hops_per_s`.
    pub speedup: f64,
    /// Fleet hop throughput, 1 worker thread (sharded FREEZE).
    pub wall_1t_hops_per_s: f64,
    /// Fleet hop throughput, 4 worker threads.
    pub wall_4t_hops_per_s: f64,
    /// `wall_4t / wall_1t`.
    pub scaling_4t: f64,
    /// Median fleet-hop latency (µs) under the sharded FREEZE,
    /// 1-thread run, from the fleet's own observability plane.
    pub wall_hop_p50_us: f64,
    /// 99th-percentile fleet-hop latency (µs), 1-thread run.
    pub wall_hop_p99_us: f64,
    /// Conservation-audit discrepancies after the concurrent runs
    /// (must be 0).
    pub conservation_violations: usize,
}

/// All rows of one run.
#[derive(Debug, Clone)]
pub struct HopBenchResult {
    /// One row per fleet size.
    pub rows: Vec<HopBenchRow>,
}

fn build_problem(sessions: usize, seed: u64) -> Arc<UapProblem> {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: sessions * 3,
        max_session_size: 3,
        // Generous-but-finite capacities: every admission fits, yet the
        // ledger still has real numbers to arbitrate.
        mean_bandwidth_mbps: Some(40_000.0 * sessions as f64 / 1_000.0),
        mean_transcode_slots: Some(3_000.0 * sessions as f64 / 1_000.0),
        seed,
        ..LargeScaleConfig::default()
    });
    Arc::new(UapProblem::new(
        instance,
        vc_cost::CostModel::paper_default(),
    ))
}

/// The seed's candidate path, verbatim in shape: clone the global
/// assignment, apply the decision, evaluate the session from scratch,
/// check capacities against every agent.
fn legacy_candidate(state: &SystemState, decision: Decision) -> (SessionLoad, bool) {
    let problem = state.problem();
    let s = state.session_of(decision);
    let mut asg = state.assignment().clone();
    asg.apply(decision);
    let new_load = evaluate_session(problem, &asg, s);
    let inst = problem.instance();
    let old = state.session_load(s);
    let totals = state.totals();
    let mut feasible = new_load.max_flow_delay <= inst.d_max_ms() + 1e-6;
    if feasible {
        for l in inst.agent_ids() {
            let i = l.index();
            let cap = inst.agent(l).capacity();
            if totals.download[i] - old.download[i] + new_load.download[i]
                > cap.download_mbps + 1e-6
                || totals.upload[i] - old.upload[i] + new_load.upload[i] > cap.upload_mbps + 1e-6
                || totals.transcode[i] - old.transcode_units[i] + new_load.transcode_units[i]
                    > cap.transcode_slots
            {
                feasible = false;
                break;
            }
        }
    }
    (new_load, feasible)
}

/// One legacy hop: enumerate candidates the seed way, Gibbs-sample,
/// apply. Returns whether the session migrated.
fn legacy_hop<R: Rng>(state: &mut SystemState, s: SessionId, beta: f64, rng: &mut R) -> bool {
    let problem = state.problem().clone();
    let inst = problem.instance();
    let nl = inst.num_agents();
    let mut moves: Vec<(Decision, f64)> = Vec::new();
    let consider = |d: Decision, moves: &mut Vec<(Decision, f64)>| {
        let (load, feasible) = legacy_candidate(state, d);
        if feasible {
            moves.push((d, load.phi));
        }
    };
    for &u in inst.session(s).users().iter() {
        let current = state.assignment().agent_of_user(u);
        for l in 0..nl {
            let l = AgentId::from(l);
            if l != current {
                consider(Decision::User(u, l), &mut moves);
            }
        }
    }
    for &t in problem.tasks().of_session(s) {
        let current = state.assignment().agent_of_task(t);
        for l in 0..nl {
            let l = AgentId::from(l);
            if l != current {
                consider(Decision::Task(t, l), &mut moves);
            }
        }
    }
    if moves.is_empty() {
        return false;
    }
    let phi_now = state.session_objective(s);
    let mut exponents = vec![0.0f64];
    for &(_, phi) in &moves {
        exponents.push((0.5 * beta * (phi_now - phi)).clamp(-MAX_EXPONENT, MAX_EXPONENT));
    }
    let max_e = exponents.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = exponents.iter().map(|e| (e - max_e).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    let mut chosen = 0usize;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            chosen = i;
            break;
        }
        x -= w;
    }
    if chosen == 0 {
        return false;
    }
    // The seed's `try_apply` re-ran its clone-the-assignment candidate
    // before committing; reproduce that cost faithfully.
    let d = moves[chosen - 1].0;
    let (_, feasible) = legacy_candidate(state, d);
    if feasible {
        state.apply_unchecked(d);
    }
    feasible
}

fn run_size(
    sessions_target: usize,
    legacy_hops: usize,
    scratch_hops: usize,
    wall_ms: u64,
    seed: u64,
) -> HopBenchRow {
    let problem = build_problem(sessions_target, seed);
    let num_sessions = problem.instance().num_sessions();
    let beta = 400.0;

    // --- Serial paths over one all-active SystemState. ------------------
    let asg = vc_algo::nearest::nearest_assignment(&problem);
    let mut state = SystemState::new(problem.clone(), asg);
    let mut rng = StdRng::seed_from_u64(seed);

    // Legacy (seed) path.
    let a0 = alloc_count();
    let t0 = Instant::now();
    for i in 0..legacy_hops {
        let s = SessionId::from(i % num_sessions);
        legacy_hop(&mut state, s, beta, &mut rng);
    }
    let legacy_elapsed = t0.elapsed().as_secs_f64();
    let legacy_allocs = (alloc_count() - a0) as f64 / legacy_hops as f64;
    let legacy_rate = legacy_hops as f64 / legacy_elapsed;

    // Scratch path (same state shape, fresh bootstrap for fairness).
    let asg = vc_algo::nearest::nearest_assignment(&problem);
    let mut state = SystemState::new(problem.clone(), asg);
    let engine = Alg1Engine::new(Alg1Config::paper(beta));
    let mut scratch = HopScratch::new();
    let mut rng = StdRng::seed_from_u64(seed);
    // Warm-up sizes every reusable buffer.
    for i in 0..32.min(scratch_hops) {
        engine.hop_scratch(
            &mut state,
            SessionId::from(i % num_sessions),
            &mut rng,
            &mut scratch,
        );
    }
    let a0 = alloc_count();
    // Per-hop latency: reuse each hop's end timestamp as the next
    // start, so the histogram costs one clock read per hop on top of
    // the throughput measurement it shares timestamps with.
    let mut hist = LatencyHist::new();
    let t0 = Instant::now();
    let mut t_prev = t0;
    for i in 0..scratch_hops {
        let s = SessionId::from(i % num_sessions);
        engine.hop_scratch(&mut state, s, &mut rng, &mut scratch);
        let t = Instant::now();
        hist.record((t - t_prev).as_nanos() as u64);
        t_prev = t;
    }
    let scratch_elapsed = t0.elapsed().as_secs_f64();
    let scratch_allocs = (alloc_count() - a0) as f64 / scratch_hops as f64;
    let scratch_rate = scratch_hops as f64 / scratch_elapsed;
    let scratch_summary = hist.summary();

    // --- Concurrent fleet under the sharded FREEZE. ---------------------
    let mut wall_rates = [0.0f64; 2];
    let mut violations = 0usize;
    let mut wall_summary = vc_obs::HistSummary::default();
    for (slot, threads) in [(0usize, 1usize), (1, 4)] {
        let fleet = Fleet::new(
            problem.clone(),
            FleetConfig {
                placement: PlacementPolicy::Nearest,
                alg1: Alg1Config {
                    mean_countdown_s: 1.0,
                    ..Alg1Config::paper(beta)
                },
                ledger_shards: 8,
                ..FleetConfig::default()
            },
        );
        let pool = ReoptPool::new(seed);
        let mut admitted = 0usize;
        for i in 0..num_sessions {
            if fleet.admit(SessionId::from(i)).is_ok() {
                pool.register(&fleet, SessionId::from(i), 0.0);
                admitted += 1;
            }
        }
        assert!(
            admitted * 10 >= num_sessions * 9,
            "capacities too tight: only {admitted}/{num_sessions} admitted"
        );
        let budget = Duration::from_millis(wall_ms);
        let executed = pool.run_wall(&fleet, budget, threads);
        wall_rates[slot] = executed as f64 / budget.as_secs_f64();
        violations += fleet.audit().len();
        if threads == 1 {
            wall_summary = fleet.obs().summary(Site::Hop);
        }
    }

    HopBenchRow {
        sessions: num_sessions,
        users: problem.instance().num_users(),
        agents: problem.instance().num_agents(),
        legacy_hops_per_s: legacy_rate,
        legacy_allocs_per_hop: legacy_allocs,
        scratch_hops_per_s: scratch_rate,
        scratch_allocs_per_hop: scratch_allocs,
        scratch_p50_ns: scratch_summary.p50_ns,
        scratch_p99_ns: scratch_summary.p99_ns,
        speedup: scratch_rate / legacy_rate,
        wall_1t_hops_per_s: wall_rates[0],
        wall_4t_hops_per_s: wall_rates[1],
        scaling_4t: wall_rates[1] / wall_rates[0].max(1e-9),
        wall_hop_p50_us: wall_summary.p50_ns as f64 / 1e3,
        wall_hop_p99_us: wall_summary.p99_ns as f64 / 1e3,
        conservation_violations: violations,
    }
}

/// Runs the hop benchmark across fleet sizes. Allocation counts come
/// from the counter registered via [`vc_obs::register_alloc_counter`]
/// (the `experiments` binary installs one; without it every
/// allocs-per-hop figure reads 0).
pub fn run(sizes: &[usize], wall_ms: u64, seed: u64) -> HopBenchResult {
    HopBenchResult {
        rows: sizes
            .iter()
            .map(|&target| {
                // Bound the slow legacy loop; keep the scratch loop long
                // enough for a stable rate.
                let legacy_hops = if target >= 5_000 { 100 } else { 300 };
                let scratch_hops = 20_000;
                run_size(target, legacy_hops, scratch_hops, wall_ms, seed)
            })
            .collect(),
    }
}

/// Serializes the result as the `BENCH_hop.json` document (hand-rolled:
/// the vendored serde is a no-op shim).
pub fn to_json(result: &HopBenchResult) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out =
        format!("{{\n  \"experiment\": \"hop_bench\",\n  \"cpus\": {cpus},\n  \"rows\": [\n");
    for (i, r) in result.rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"sessions\": {}, \"users\": {}, \"agents\": {}, ",
                "\"legacy_hops_per_s\": {:.1}, \"legacy_allocs_per_hop\": {:.1}, ",
                "\"scratch_hops_per_s\": {:.1}, \"scratch_allocs_per_hop\": {:.3}, ",
                "\"scratch_p50_ns\": {}, \"scratch_p99_ns\": {}, ",
                "\"speedup\": {:.2}, ",
                "\"wall_1t_hops_per_s\": {:.1}, \"wall_4t_hops_per_s\": {:.1}, ",
                "\"scaling_4t\": {:.2}, ",
                "\"wall_hop_p50_us\": {:.1}, \"wall_hop_p99_us\": {:.1}, ",
                "\"conservation_violations\": {}}}{}\n"
            ),
            r.sessions,
            r.users,
            r.agents,
            r.legacy_hops_per_s,
            r.legacy_allocs_per_hop,
            r.scratch_hops_per_s,
            r.scratch_allocs_per_hop,
            r.scratch_p50_ns,
            r.scratch_p99_ns,
            r.speedup,
            r.wall_1t_hops_per_s,
            r.wall_4t_hops_per_s,
            r.scaling_4t,
            r.wall_hop_p50_us,
            r.wall_hop_p99_us,
            r.conservation_violations,
            if i + 1 == result.rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the rows and writes `BENCH_hop.json` into the working
/// directory.
pub fn print(result: &HopBenchResult) {
    println!("Hop throughput — legacy (clone-per-candidate) vs allocation-free scratch path");
    println!(
        "{:>9} {:>8} {:>13} {:>12} {:>13} {:>12} {:>10} {:>10} {:>8}",
        "sessions",
        "agents",
        "legacy hop/s",
        "alloc/hop",
        "scratch hop/s",
        "alloc/hop",
        "p50 ns",
        "p99 ns",
        "speedup"
    );
    for r in &result.rows {
        println!(
            "{:>9} {:>8} {:>13.0} {:>12.1} {:>13.0} {:>12.3} {:>10} {:>10} {:>7.1}x",
            r.sessions,
            r.agents,
            r.legacy_hops_per_s,
            r.legacy_allocs_per_hop,
            r.scratch_hops_per_s,
            r.scratch_allocs_per_hop,
            r.scratch_p50_ns,
            r.scratch_p99_ns,
            r.speedup,
        );
    }
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nConcurrent fleet hops (sharded FREEZE, checked ledger swaps) — {cpus} CPU(s) available"
    );
    if cpus < 4 {
        println!("  (4-thread scaling is bounded by the available cores; ~1.0x on 1 CPU means");
        println!("   zero contention collapse under oversubscription, not absent parallelism)");
    }
    println!(
        "{:>9} {:>15} {:>15} {:>9} {:>10} {:>10} {:>11}",
        "sessions", "1-thread hop/s", "4-thread hop/s", "scaling", "p50 µs", "p99 µs", "violations"
    );
    for r in &result.rows {
        println!(
            "{:>9} {:>15.0} {:>15.0} {:>8.2}x {:>10.1} {:>10.1} {:>11}",
            r.sessions,
            r.wall_1t_hops_per_s,
            r.wall_4t_hops_per_s,
            r.scaling_4t,
            r.wall_hop_p50_us,
            r.wall_hop_p99_us,
            r.conservation_violations,
        );
    }
    let json = to_json(result);
    match std::fs::write("BENCH_hop.json", &json) {
        Ok(()) => println!("\nwrote BENCH_hop.json"),
        Err(e) => eprintln!("\ncould not write BENCH_hop.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_consistent_rows() {
        let result = run(&[40], 50, 11);
        assert_eq!(result.rows.len(), 1);
        let r = &result.rows[0];
        assert!(r.sessions >= 30, "universe lost sessions: {}", r.sessions);
        assert!(r.legacy_hops_per_s > 0.0 && r.scratch_hops_per_s > 0.0);
        assert_eq!(r.conservation_violations, 0);
        // Even a tiny debug-mode run shows the clone-free path ahead.
        assert!(
            r.speedup > 1.0,
            "scratch path not faster: {:.2}x",
            r.speedup
        );
        // The vc-obs percentiles are populated and ordered.
        assert!(r.scratch_p50_ns > 0 && r.scratch_p99_ns >= r.scratch_p50_ns);
        assert!(r.wall_hop_p50_us > 0.0 && r.wall_hop_p99_us >= r.wall_hop_p50_us);
        let json = to_json(&result);
        assert!(json.contains("\"hop_bench\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"scratch_p50_ns\"") && json.contains("\"wall_hop_p99_us\""));
    }
}
