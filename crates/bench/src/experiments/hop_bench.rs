//! Hop-throughput experiment (extension): establishes the perf
//! trajectory of the Alg. 1 HOP hot path and emits `BENCH_hop.json`.
//!
//! Three measurements per fleet size (1k / 10k / 100k sessions by
//! default):
//!
//! * **legacy** — the seed's candidate path, reproduced faithfully:
//!   every candidate clones the entire global `Assignment`, evaluates
//!   the session from scratch with freshly allocated buffers, and
//!   checks capacity against **all** `L` agents;
//! * **scratch** — the allocation-free path: overlay views + a reused
//!   [`EvalScratch`](vc_core::EvalScratch), sparse touched-agent
//!   capacity checks, commit by buffer swap;
//! * **concurrent** — the orchestrator fleet under the sharded FREEZE:
//!   [`ReoptPool::run_wall`] racing 1 vs 4 OS threads, hops committing
//!   through the ledger's checked `try_swap`, followed by a
//!   conservation audit.
//!
//! The concurrent section also profiles the sharded timer-wheel
//! scheduler itself: batched registration throughput (`register_per_s`
//! — the top-level aggregate is the gated signal, per-row samples are
//! informational), per-run shard-lock acquire/conflict counters, the
//! `sched_lock_wait` p99 under 4-thread contention, and how many stale
//! (lazily cancelled) entries cascades reclaimed. The 100k-session row
//! exists specifically to exercise wakeup dispatch at a depth where
//! the old global-heap scheduler serialized; the seed's legacy hop
//! path is skipped there (`legacy_*` read 0) because clone-per-candidate
//! hops at that scale would dominate CI for no extra signal.
//!
//! Allocations are counted by the `experiments` binary's counting
//! global allocator, surfaced through [`vc_obs::allocs_now`] (the
//! binary registers its counter with
//! [`vc_obs::register_alloc_counter`]; library tests, which have no
//! counting allocator, read 0 allocations). Per-hop latency
//! percentiles come from `vc-obs` histograms: the serial scratch loop
//! records into a local [`LatencyHist`], the concurrent fleet reads
//! its own plane's `hop` site.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_algo::markov::{Alg1Config, Alg1Engine, HopScratch};
use vc_core::evaluate::evaluate_session;
use vc_core::{Decision, SessionLoad, SystemState, UapProblem};
use vc_model::{AgentId, SessionId};
use vc_obs::{LatencyHist, Site};
use vc_orchestrator::{Fleet, FleetConfig, PlacementPolicy, ReoptPool};
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// Reads the process-wide allocation counter if the binary registered
/// one ([`vc_obs::register_alloc_counter`]); 0 otherwise, making every
/// allocs-per-hop figure 0 rather than garbage.
fn alloc_count() -> u64 {
    vc_obs::allocs_now().unwrap_or(0)
}

/// Exponent clamp mirroring the engine's Gibbs weights.
const MAX_EXPONENT: f64 = 600.0;

/// One fleet-size measurement.
#[derive(Debug, Clone)]
pub struct HopBenchRow {
    /// Live sessions in the measured fleet.
    pub sessions: usize,
    /// Users across those sessions.
    pub users: usize,
    /// Agents in the universe.
    pub agents: usize,
    /// Seed-path (clone-per-candidate) single-thread hop throughput.
    /// 0 when the legacy loop was skipped (sessions ≥ 50k).
    pub legacy_hops_per_s: f64,
    /// Heap allocations per legacy hop (0 when skipped).
    pub legacy_allocs_per_hop: f64,
    /// Scratch-path single-thread hop throughput.
    pub scratch_hops_per_s: f64,
    /// Heap allocations per scratch hop (steady state; ~0).
    pub scratch_allocs_per_hop: f64,
    /// Median scratch-hop latency (ns), from a `vc-obs` histogram.
    pub scratch_p50_ns: u64,
    /// 99th-percentile scratch-hop latency (ns).
    pub scratch_p99_ns: u64,
    /// `scratch_hops_per_s / legacy_hops_per_s` (0 when legacy skipped).
    pub speedup: f64,
    /// Fleet hop throughput, 1 worker thread (sharded FREEZE).
    pub wall_1t_hops_per_s: f64,
    /// Fleet hop throughput, 4 worker threads.
    pub wall_4t_hops_per_s: f64,
    /// `wall_4t / wall_1t`.
    pub scaling_4t: f64,
    /// Median fleet-hop latency (µs) under the sharded FREEZE,
    /// 1-thread run, from the fleet's own observability plane.
    pub wall_hop_p50_us: f64,
    /// 99th-percentile fleet-hop latency (µs), 1-thread run.
    pub wall_hop_p99_us: f64,
    /// Timer-wheel shards in the wakeup scheduler.
    pub sched_shards: usize,
    /// Batched registration throughput (sessions/s, 1-thread fleet).
    /// Per-row sample; the top-level aggregate is the gated signal.
    pub register_per_s: f64,
    /// Scheduler shard-lock acquisitions during the 4-thread run.
    pub sched_lock_acquires: u64,
    /// Scheduler shard-lock conflicts (try-lock misses) during the
    /// 4-thread run — with the old global heap every cross-thread
    /// acquire conflicted; sharding should keep this near 0.
    pub sched_lock_conflicts: u64,
    /// 99th-percentile wait to acquire a contended scheduler shard
    /// lock (µs), 4-thread run. 0 when no acquire ever conflicted.
    pub sched_lock_wait_p99_us: f64,
    /// Stale (lazily cancelled) entries reclaimed by wheel cascades
    /// and slot prunes during the 4-thread run.
    pub sched_stale_reclaimed: u64,
    /// Conservation-audit discrepancies after the concurrent runs
    /// (must be 0).
    pub conservation_violations: usize,
}

/// All rows of one run.
#[derive(Debug, Clone)]
pub struct HopBenchResult {
    /// One row per fleet size.
    pub rows: Vec<HopBenchRow>,
    /// Aggregate batched-registration throughput (sessions/s) across
    /// all rows' 1-thread fleets — integrates the most wall-clock at
    /// the largest sizes, so it is the regression-gated signal (the
    /// same-named per-row samples are superseded by it).
    pub register_per_s: f64,
}

fn build_problem(sessions: usize, seed: u64) -> Arc<UapProblem> {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: sessions * 3,
        max_session_size: 3,
        // Generous-but-finite capacities: every admission fits, yet the
        // ledger still has real numbers to arbitrate.
        mean_bandwidth_mbps: Some(40_000.0 * sessions as f64 / 1_000.0),
        mean_transcode_slots: Some(3_000.0 * sessions as f64 / 1_000.0),
        seed,
        ..LargeScaleConfig::default()
    });
    Arc::new(UapProblem::new(
        instance,
        vc_cost::CostModel::paper_default(),
    ))
}

/// The seed's candidate path, verbatim in shape: clone the global
/// assignment, apply the decision, evaluate the session from scratch,
/// check capacities against every agent.
fn legacy_candidate(state: &SystemState, decision: Decision) -> (SessionLoad, bool) {
    let problem = state.problem();
    let s = state.session_of(decision);
    let mut asg = state.assignment().clone();
    asg.apply(decision);
    let new_load = evaluate_session(problem, &asg, s);
    let inst = problem.instance();
    let old = state.session_load(s);
    let totals = state.totals();
    let mut feasible = new_load.max_flow_delay <= inst.d_max_ms() + 1e-6;
    if feasible {
        for l in inst.agent_ids() {
            let i = l.index();
            let cap = inst.agent(l).capacity();
            if totals.download[i] - old.download[i] + new_load.download[i]
                > cap.download_mbps + 1e-6
                || totals.upload[i] - old.upload[i] + new_load.upload[i] > cap.upload_mbps + 1e-6
                || totals.transcode[i] - old.transcode_units[i] + new_load.transcode_units[i]
                    > cap.transcode_slots
            {
                feasible = false;
                break;
            }
        }
    }
    (new_load, feasible)
}

/// One legacy hop: enumerate candidates the seed way, Gibbs-sample,
/// apply. Returns whether the session migrated.
fn legacy_hop<R: Rng>(state: &mut SystemState, s: SessionId, beta: f64, rng: &mut R) -> bool {
    let problem = state.problem().clone();
    let inst = problem.instance();
    let nl = inst.num_agents();
    let mut moves: Vec<(Decision, f64)> = Vec::new();
    let consider = |d: Decision, moves: &mut Vec<(Decision, f64)>| {
        let (load, feasible) = legacy_candidate(state, d);
        if feasible {
            moves.push((d, load.phi));
        }
    };
    for &u in inst.session(s).users().iter() {
        let current = state.assignment().agent_of_user(u);
        for l in 0..nl {
            let l = AgentId::from(l);
            if l != current {
                consider(Decision::User(u, l), &mut moves);
            }
        }
    }
    for &t in problem.tasks().of_session(s) {
        let current = state.assignment().agent_of_task(t);
        for l in 0..nl {
            let l = AgentId::from(l);
            if l != current {
                consider(Decision::Task(t, l), &mut moves);
            }
        }
    }
    if moves.is_empty() {
        return false;
    }
    let phi_now = state.session_objective(s);
    let mut exponents = vec![0.0f64];
    for &(_, phi) in &moves {
        exponents.push((0.5 * beta * (phi_now - phi)).clamp(-MAX_EXPONENT, MAX_EXPONENT));
    }
    let max_e = exponents.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = exponents.iter().map(|e| (e - max_e).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    let mut chosen = 0usize;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            chosen = i;
            break;
        }
        x -= w;
    }
    if chosen == 0 {
        return false;
    }
    // The seed's `try_apply` re-ran its clone-the-assignment candidate
    // before committing; reproduce that cost faithfully.
    let d = moves[chosen - 1].0;
    let (_, feasible) = legacy_candidate(state, d);
    if feasible {
        state.apply_unchecked(d);
    }
    feasible
}

/// One size's row plus the 1-thread fleet's batched-registration
/// measurement `(registered sessions, elapsed seconds)` — raw inputs
/// for the top-level aggregate rate.
fn run_size(
    sessions_target: usize,
    legacy_hops: usize,
    scratch_hops: usize,
    wall_ms: u64,
    seed: u64,
) -> (HopBenchRow, usize, f64) {
    let problem = build_problem(sessions_target, seed);
    let num_sessions = problem.instance().num_sessions();
    let beta = 400.0;

    // --- Serial paths over one all-active SystemState. ------------------
    let asg = vc_algo::nearest::nearest_assignment(&problem);
    let mut state = SystemState::new(problem.clone(), asg);
    let mut rng = StdRng::seed_from_u64(seed);

    // Legacy (seed) path. Skipped (`legacy_hops == 0`) at sizes where
    // clone-per-candidate hops would dominate the whole benchmark run.
    let (legacy_rate, legacy_allocs) = if legacy_hops == 0 {
        (0.0, 0.0)
    } else {
        let a0 = alloc_count();
        let t0 = Instant::now();
        for i in 0..legacy_hops {
            let s = SessionId::from(i % num_sessions);
            legacy_hop(&mut state, s, beta, &mut rng);
        }
        let legacy_elapsed = t0.elapsed().as_secs_f64();
        (
            legacy_hops as f64 / legacy_elapsed,
            (alloc_count() - a0) as f64 / legacy_hops as f64,
        )
    };

    // Scratch path (same state shape, fresh bootstrap for fairness).
    let asg = vc_algo::nearest::nearest_assignment(&problem);
    let mut state = SystemState::new(problem.clone(), asg);
    let engine = Alg1Engine::new(Alg1Config::paper(beta));
    let mut scratch = HopScratch::new();
    let mut rng = StdRng::seed_from_u64(seed);
    // Warm-up sizes every reusable buffer.
    for i in 0..32.min(scratch_hops) {
        engine.hop_scratch(
            &mut state,
            SessionId::from(i % num_sessions),
            &mut rng,
            &mut scratch,
        );
    }
    let a0 = alloc_count();
    // Per-hop latency: reuse each hop's end timestamp as the next
    // start, so the histogram costs one clock read per hop on top of
    // the throughput measurement it shares timestamps with.
    let mut hist = LatencyHist::new();
    let t0 = Instant::now();
    let mut t_prev = t0;
    for i in 0..scratch_hops {
        let s = SessionId::from(i % num_sessions);
        engine.hop_scratch(&mut state, s, &mut rng, &mut scratch);
        let t = Instant::now();
        hist.record((t - t_prev).as_nanos() as u64);
        t_prev = t;
    }
    let scratch_elapsed = t0.elapsed().as_secs_f64();
    let scratch_allocs = (alloc_count() - a0) as f64 / scratch_hops as f64;
    let scratch_rate = scratch_hops as f64 / scratch_elapsed;
    let scratch_summary = hist.summary();

    // --- Concurrent fleet under the sharded FREEZE. ---------------------
    let mut wall_rates = [0.0f64; 2];
    let mut violations = 0usize;
    let mut wall_summary = vc_obs::HistSummary::default();
    let mut sched_shards = 0usize;
    let mut reg_sessions = 0usize;
    let mut reg_elapsed_s = 0.0f64;
    let mut lock_acquires = 0u64;
    let mut lock_conflicts = 0u64;
    let mut lock_wait_p99_us = 0.0f64;
    let mut stale_reclaimed = 0u64;
    for (slot, threads) in [(0usize, 1usize), (1, 4)] {
        let fleet = Fleet::new(
            problem.clone(),
            FleetConfig {
                placement: PlacementPolicy::Nearest,
                alg1: Alg1Config {
                    mean_countdown_s: 1.0,
                    ..Alg1Config::paper(beta)
                },
                ledger_shards: 8,
                ..FleetConfig::default()
            },
        );
        let pool = ReoptPool::new(seed);
        let admitted: Vec<SessionId> = (0..num_sessions)
            .map(SessionId::from)
            .filter(|&s| fleet.admit(s).is_ok())
            .collect();
        assert!(
            admitted.len() * 10 >= num_sessions * 9,
            "capacities too tight: only {}/{num_sessions} admitted",
            admitted.len()
        );
        // Batched registration: sessions grouped by shard, one lock
        // acquisition per shard — this is what lets 100k-session setup
        // fit a CI budget.
        let t_reg = Instant::now();
        pool.register_batch(&fleet, &admitted, 0.0);
        let reg_s = t_reg.elapsed().as_secs_f64();
        let budget = Duration::from_millis(wall_ms);
        let executed = pool.run_wall(&fleet, budget, threads);
        wall_rates[slot] = executed as f64 / budget.as_secs_f64();
        violations += fleet.audit().len();
        if threads == 1 {
            wall_summary = fleet.obs().summary(Site::Hop);
            sched_shards = pool.num_shards();
            reg_sessions = admitted.len();
            reg_elapsed_s = reg_s;
        } else {
            // Contention profile where contention is possible: the
            // 4-thread run races workers over the shard locks.
            let (acq, conf) = pool
                .shard_lock_counters()
                .iter()
                .fold((0u64, 0u64), |(a, c), &(x, y)| (a + x, c + y));
            lock_acquires = acq;
            lock_conflicts = conf;
            lock_wait_p99_us = fleet.obs().summary(Site::SchedLock).p99_ns as f64 / 1e3;
            stale_reclaimed = pool.stale_reclaimed();
        }
    }

    let row = HopBenchRow {
        sessions: num_sessions,
        users: problem.instance().num_users(),
        agents: problem.instance().num_agents(),
        legacy_hops_per_s: legacy_rate,
        legacy_allocs_per_hop: legacy_allocs,
        scratch_hops_per_s: scratch_rate,
        scratch_allocs_per_hop: scratch_allocs,
        scratch_p50_ns: scratch_summary.p50_ns,
        scratch_p99_ns: scratch_summary.p99_ns,
        speedup: if legacy_rate > 0.0 {
            scratch_rate / legacy_rate
        } else {
            0.0
        },
        wall_1t_hops_per_s: wall_rates[0],
        wall_4t_hops_per_s: wall_rates[1],
        scaling_4t: wall_rates[1] / wall_rates[0].max(1e-9),
        wall_hop_p50_us: wall_summary.p50_ns as f64 / 1e3,
        wall_hop_p99_us: wall_summary.p99_ns as f64 / 1e3,
        sched_shards,
        register_per_s: reg_sessions as f64 / reg_elapsed_s.max(1e-9),
        sched_lock_acquires: lock_acquires,
        sched_lock_conflicts: lock_conflicts,
        sched_lock_wait_p99_us: lock_wait_p99_us,
        sched_stale_reclaimed: stale_reclaimed,
        conservation_violations: violations,
    };
    (row, reg_sessions, reg_elapsed_s)
}

/// Runs the hop benchmark across fleet sizes. Allocation counts come
/// from the counter registered via [`vc_obs::register_alloc_counter`]
/// (the `experiments` binary installs one; without it every
/// allocs-per-hop figure reads 0).
pub fn run(sizes: &[usize], wall_ms: u64, seed: u64) -> HopBenchResult {
    let mut rows = Vec::with_capacity(sizes.len());
    let mut reg_total_sessions = 0usize;
    let mut reg_total_s = 0.0f64;
    for &target in sizes {
        // Bound the slow legacy loop (skip it outright at 50k+, where
        // clone-per-candidate hops would dominate CI); keep the scratch
        // loop long enough for a stable rate.
        let legacy_hops = if target >= 50_000 {
            0
        } else if target >= 5_000 {
            100
        } else {
            300
        };
        let scratch_hops = 20_000;
        let (row, reg_sessions, reg_s) = run_size(target, legacy_hops, scratch_hops, wall_ms, seed);
        reg_total_sessions += reg_sessions;
        reg_total_s += reg_s;
        rows.push(row);
    }
    HopBenchResult {
        rows,
        register_per_s: reg_total_sessions as f64 / reg_total_s.max(1e-9),
    }
}

/// Serializes the result as the `BENCH_hop.json` document (hand-rolled:
/// the vendored serde is a no-op shim).
pub fn to_json(result: &HopBenchResult) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        concat!(
            "{{\n  \"experiment\": \"hop_bench\",\n  \"cpus\": {cpus},\n",
            "  \"register_per_s\": {rps:.1},\n  \"rows\": [\n"
        ),
        cpus = cpus,
        rps = result.register_per_s,
    );
    for (i, r) in result.rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"sessions\": {}, \"users\": {}, \"agents\": {}, ",
                "\"legacy_hops_per_s\": {:.1}, \"legacy_allocs_per_hop\": {:.1}, ",
                "\"scratch_hops_per_s\": {:.1}, \"scratch_allocs_per_hop\": {:.3}, ",
                "\"scratch_p50_ns\": {}, \"scratch_p99_ns\": {}, ",
                "\"speedup\": {:.2}, ",
                "\"wall_1t_hops_per_s\": {:.1}, \"wall_4t_hops_per_s\": {:.1}, ",
                "\"scaling_4t\": {:.2}, ",
                "\"wall_hop_p50_us\": {:.1}, \"wall_hop_p99_us\": {:.1}, ",
                "\"sched_shards\": {}, \"register_per_s\": {:.1}, ",
                "\"sched_lock_acquires\": {}, \"sched_lock_conflicts\": {}, ",
                "\"sched_lock_wait_p99_us\": {:.1}, \"sched_stale_reclaimed\": {}, ",
                "\"conservation_violations\": {}}}{}\n"
            ),
            r.sessions,
            r.users,
            r.agents,
            r.legacy_hops_per_s,
            r.legacy_allocs_per_hop,
            r.scratch_hops_per_s,
            r.scratch_allocs_per_hop,
            r.scratch_p50_ns,
            r.scratch_p99_ns,
            r.speedup,
            r.wall_1t_hops_per_s,
            r.wall_4t_hops_per_s,
            r.scaling_4t,
            r.wall_hop_p50_us,
            r.wall_hop_p99_us,
            r.sched_shards,
            r.register_per_s,
            r.sched_lock_acquires,
            r.sched_lock_conflicts,
            r.sched_lock_wait_p99_us,
            r.sched_stale_reclaimed,
            r.conservation_violations,
            if i + 1 == result.rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the rows and writes `BENCH_hop.json` into the working
/// directory.
pub fn print(result: &HopBenchResult) {
    println!("Hop throughput — legacy (clone-per-candidate) vs allocation-free scratch path");
    println!(
        "{:>9} {:>8} {:>13} {:>12} {:>13} {:>12} {:>10} {:>10} {:>8}",
        "sessions",
        "agents",
        "legacy hop/s",
        "alloc/hop",
        "scratch hop/s",
        "alloc/hop",
        "p50 ns",
        "p99 ns",
        "speedup"
    );
    for r in &result.rows {
        println!(
            "{:>9} {:>8} {:>13.0} {:>12.1} {:>13.0} {:>12.3} {:>10} {:>10} {:>7.1}x",
            r.sessions,
            r.agents,
            r.legacy_hops_per_s,
            r.legacy_allocs_per_hop,
            r.scratch_hops_per_s,
            r.scratch_allocs_per_hop,
            r.scratch_p50_ns,
            r.scratch_p99_ns,
            r.speedup,
        );
    }
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nConcurrent fleet hops (sharded FREEZE, checked ledger swaps) — {cpus} CPU(s) available"
    );
    if cpus < 4 {
        println!("  (4-thread scaling is bounded by the available cores; ~1.0x on 1 CPU means");
        println!("   zero contention collapse under oversubscription, not absent parallelism)");
    }
    println!(
        "{:>9} {:>15} {:>15} {:>9} {:>10} {:>10} {:>11}",
        "sessions", "1-thread hop/s", "4-thread hop/s", "scaling", "p50 µs", "p99 µs", "violations"
    );
    for r in &result.rows {
        println!(
            "{:>9} {:>15.0} {:>15.0} {:>8.2}x {:>10.1} {:>10.1} {:>11}",
            r.sessions,
            r.wall_1t_hops_per_s,
            r.wall_4t_hops_per_s,
            r.scaling_4t,
            r.wall_hop_p50_us,
            r.wall_hop_p99_us,
            r.conservation_violations,
        );
    }
    println!(
        "\nWakeup scheduler (sharded timer wheel) — aggregate batched registration {:.0} sessions/s",
        result.register_per_s
    );
    println!(
        "{:>9} {:>7} {:>14} {:>13} {:>12} {:>13} {:>10}",
        "sessions", "shards", "register/s", "lock acq 4t", "conflicts", "wait p99 µs", "reclaimed"
    );
    for r in &result.rows {
        println!(
            "{:>9} {:>7} {:>14.0} {:>13} {:>12} {:>13.1} {:>10}",
            r.sessions,
            r.sched_shards,
            r.register_per_s,
            r.sched_lock_acquires,
            r.sched_lock_conflicts,
            r.sched_lock_wait_p99_us,
            r.sched_stale_reclaimed,
        );
    }
    let json = to_json(result);
    match std::fs::write("BENCH_hop.json", &json) {
        Ok(()) => println!("\nwrote BENCH_hop.json"),
        Err(e) => eprintln!("\ncould not write BENCH_hop.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_consistent_rows() {
        let result = run(&[40], 50, 11);
        assert_eq!(result.rows.len(), 1);
        let r = &result.rows[0];
        assert!(r.sessions >= 30, "universe lost sessions: {}", r.sessions);
        assert!(r.legacy_hops_per_s > 0.0 && r.scratch_hops_per_s > 0.0);
        assert_eq!(r.conservation_violations, 0);
        // Even a tiny debug-mode run shows the clone-free path ahead.
        assert!(
            r.speedup > 1.0,
            "scratch path not faster: {:.2}x",
            r.speedup
        );
        // The vc-obs percentiles are populated and ordered.
        assert!(r.scratch_p50_ns > 0 && r.scratch_p99_ns >= r.scratch_p50_ns);
        assert!(r.wall_hop_p50_us > 0.0 && r.wall_hop_p99_us >= r.wall_hop_p50_us);
        // Scheduler profile: shards present, registration timed, and
        // conflicts bounded by acquisitions.
        assert!(r.sched_shards > 0);
        assert!(r.register_per_s > 0.0 && result.register_per_s > 0.0);
        assert!(r.sched_lock_conflicts <= r.sched_lock_acquires);
        let json = to_json(&result);
        assert!(json.contains("\"hop_bench\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"scratch_p50_ns\"") && json.contains("\"wall_hop_p99_us\""));
        assert!(json.contains("\"sched_shards\"") && json.contains("\"sched_lock_conflicts\""));
        assert!(json.contains("\"register_per_s\""));
    }

    #[test]
    fn legacy_loop_is_skipped_above_the_size_cutoff() {
        // Directly exercise the skip path at a tiny size so the test
        // stays fast: legacy_hops = 0 must zero the legacy columns and
        // the speedup without disturbing the rest of the row.
        let (r, reg_sessions, reg_s) = run_size(40, 0, 200, 50, 11);
        assert_eq!(r.legacy_hops_per_s, 0.0);
        assert_eq!(r.legacy_allocs_per_hop, 0.0);
        assert_eq!(r.speedup, 0.0);
        assert!(r.scratch_hops_per_s > 0.0);
        assert!(reg_sessions > 0 && reg_s > 0.0);
        assert_eq!(r.conservation_violations, 0);
    }
}
