//! Open-world growth experiment (extension): admit throughput while
//! the session/user universe grows ≥10× online. Emits
//! `BENCH_open_world.json`.
//!
//! A fleet starts from a closed-world seed (a `large_scale_instance`)
//! with every seed session admitted, then consumes an open-world trace
//! of never-before-seen conferences: each arrival is **registered**
//! (`Fleet::register_session` — instance + task table + slot growth
//! under the exclusive FREEZE) and then **admitted** (AgRank bootstrap
//! plus ledger reservation). One row is recorded per seed-sized growth
//! phase: registration and admission throughput, the universe/live
//! sizes, and a conservation audit — growth must never split the
//! ledger from the slots.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_model::SessionId;
use vc_obs::LatencyHist;
use vc_orchestrator::{Fleet, FleetConfig, PlacementPolicy};
use vc_workloads::{
    large_scale_instance, open_world_trace, LargeScaleConfig, OpenWorldConfig, OpenWorldEvent,
};

/// One growth-phase measurement.
#[derive(Debug, Clone)]
pub struct OpenWorldRow {
    /// Universe size at the end of the phase (registered sessions).
    pub universe_sessions: usize,
    /// Universe size at the end of the phase (registered users).
    pub universe_users: usize,
    /// Live sessions at the end of the phase.
    pub live_sessions: usize,
    /// Conferences registered in this phase.
    pub registered: usize,
    /// Registrations per second (universe growth throughput).
    pub registers_per_s: f64,
    /// Admissions per second (placement + ledger reservation).
    pub admits_per_s: f64,
    /// Mean registration latency (µs).
    pub mean_register_us: f64,
    /// Mean admission latency (µs).
    pub mean_admit_us: f64,
    /// Median registration latency (µs), from a per-phase `vc-obs`
    /// histogram.
    pub register_p50_us: f64,
    /// p99 registration latency (µs).
    pub register_p99_us: f64,
    /// Median admission latency (µs).
    pub admit_p50_us: f64,
    /// p99 admission latency (µs).
    pub admit_p99_us: f64,
    /// Heap allocations per arrival (one register + one admit), from
    /// the counter registered with `vc-obs` — 0 when no counting
    /// allocator is installed (library tests).
    pub allocs_per_arrival: f64,
    /// Conservation-audit discrepancies at the phase boundary (must
    /// be 0).
    pub conservation_violations: usize,
}

/// The whole run.
#[derive(Debug, Clone)]
pub struct OpenWorldResult {
    /// Sessions/users in the closed-world seed.
    pub seed_sessions: usize,
    /// Users in the seed.
    pub seed_users: usize,
    /// Growth factor actually reached (final universe / seed).
    pub growth_factor: f64,
    /// Whole-run registration throughput: every arrival over the sum
    /// of all per-phase register times. Each phase accumulates only a
    /// few milliseconds of measured time, so per-row rates swing with
    /// scheduler noise; this aggregate integrates ~20× longer and is
    /// what the benchmark regression gate compares.
    pub registers_per_s: f64,
    /// Whole-run admission throughput (same aggregation).
    pub admits_per_s: f64,
    /// One row per growth phase.
    pub rows: Vec<OpenWorldRow>,
}

/// Runs the experiment: a seed of ~`seed_users` users grows by a
/// factor of `growth` (≥ 10 for the committed numbers).
pub fn run(seed_users: usize, growth: usize, seed: u64) -> OpenWorldResult {
    // Capacities sized for the FINAL universe so growth, not capacity
    // exhaustion, is what the bench measures.
    let final_scale = (seed_users * growth) as f64 / 1_000.0;
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: seed_users,
        max_session_size: 5,
        mean_bandwidth_mbps: Some(40_000.0 * final_scale.max(1.0)),
        mean_transcode_slots: Some(3_000.0 * final_scale.max(1.0)),
        seed,
        ..LargeScaleConfig::default()
    });
    let seed_sessions = instance.num_sessions();
    let seed_user_count = instance.num_users();
    let problem = Arc::new(UapProblem::new(
        instance,
        vc_cost::CostModel::paper_default(),
    ));
    let fleet = Fleet::new(
        problem,
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
            alg1: Alg1Config::paper(400.0),
            ledger_shards: 8,
            ..FleetConfig::default()
        },
    );
    for i in 0..seed_sessions {
        fleet
            .admit(SessionId::from(i))
            .expect("seed capacities are generous");
    }

    let agents: Vec<_> = vc_net::sites::ec2_seven()
        .iter()
        .map(|s| s.point())
        .collect();
    let trace = open_world_trace(
        &agents,
        seed_sessions,
        &OpenWorldConfig {
            horizon_s: f64::MAX / 4.0,
            mean_interarrival_s: 1.0,
            // Conferences outlive the run: the live set grows with the
            // universe, so late admissions face a genuinely big fleet.
            mean_holding_s: 1e12,
            max_arrivals: Some(seed_sessions * (growth - 1)),
            seed,
            ..OpenWorldConfig::default()
        },
    );

    let mut rows = Vec::new();
    let mut total_register_time = Duration::ZERO;
    let mut total_admit_time = Duration::ZERO;
    let mut total_registered = 0usize;
    let mut phase = PhaseAccum::new();
    for (_, event) in &trace.events {
        let OpenWorldEvent::Arrive(def) = event else {
            continue;
        };
        let t0 = Instant::now();
        let s = fleet.register_session(def).expect("valid definition");
        let dt = t0.elapsed();
        phase.register_time += dt;
        phase.register_hist.record(dt.as_nanos() as u64);
        let t0 = Instant::now();
        fleet
            .admit(s)
            .expect("capacities sized for the final fleet");
        let dt = t0.elapsed();
        phase.admit_time += dt;
        phase.admit_hist.record(dt.as_nanos() as u64);
        phase.registered += 1;
        total_registered += 1;
        if phase.registered == seed_sessions {
            total_register_time += phase.register_time;
            total_admit_time += phase.admit_time;
            rows.push(phase_row(&fleet, &phase));
            phase = PhaseAccum::new();
        }
    }
    if phase.registered > 0 {
        total_register_time += phase.register_time;
        total_admit_time += phase.admit_time;
        rows.push(phase_row(&fleet, &phase));
    }
    let (final_sessions, _) = fleet.universe_size();
    let n = total_registered as f64;
    OpenWorldResult {
        seed_sessions,
        seed_users: seed_user_count,
        growth_factor: final_sessions as f64 / seed_sessions as f64,
        registers_per_s: n / total_register_time.as_secs_f64().max(1e-12),
        admits_per_s: n / total_admit_time.as_secs_f64().max(1e-12),
        rows,
    }
}

/// Per-phase accumulators: cumulative times for the throughput
/// figures, `vc-obs` histograms for the percentiles, and the
/// allocation counter's reading at phase start.
struct PhaseAccum {
    registered: usize,
    register_time: Duration,
    admit_time: Duration,
    register_hist: LatencyHist,
    admit_hist: LatencyHist,
    allocs_at_start: u64,
}

impl PhaseAccum {
    fn new() -> Self {
        Self {
            registered: 0,
            register_time: Duration::ZERO,
            admit_time: Duration::ZERO,
            register_hist: LatencyHist::new(),
            admit_hist: LatencyHist::new(),
            allocs_at_start: vc_obs::allocs_now().unwrap_or(0),
        }
    }
}

fn phase_row(fleet: &Fleet, phase: &PhaseAccum) -> OpenWorldRow {
    let (universe_sessions, universe_users) = fleet.universe_size();
    let n = phase.registered as f64;
    let reg = phase.register_hist.summary();
    let adm = phase.admit_hist.summary();
    let allocs = vc_obs::allocs_now().unwrap_or(0) - phase.allocs_at_start;
    OpenWorldRow {
        universe_sessions,
        universe_users,
        live_sessions: fleet.live_count(),
        registered: phase.registered,
        registers_per_s: n / phase.register_time.as_secs_f64().max(1e-12),
        admits_per_s: n / phase.admit_time.as_secs_f64().max(1e-12),
        mean_register_us: phase.register_time.as_secs_f64() * 1e6 / n,
        mean_admit_us: phase.admit_time.as_secs_f64() * 1e6 / n,
        register_p50_us: reg.p50_ns as f64 / 1e3,
        register_p99_us: reg.p99_ns as f64 / 1e3,
        admit_p50_us: adm.p50_ns as f64 / 1e3,
        admit_p99_us: adm.p99_ns as f64 / 1e3,
        allocs_per_arrival: allocs as f64 / n,
        conservation_violations: fleet.audit().len(),
    }
}

/// Serializes the result as the `BENCH_open_world.json` document
/// (hand-rolled: the vendored serde is a no-op shim).
pub fn to_json(result: &OpenWorldResult) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        concat!(
            "{{\n  \"experiment\": \"open_world\",\n  \"cpus\": {},\n",
            "  \"seed_sessions\": {},\n  \"seed_users\": {},\n",
            "  \"growth_factor\": {:.2},\n",
            "  \"registers_per_s\": {:.1},\n  \"admits_per_s\": {:.1},\n",
            "  \"rows\": [\n"
        ),
        cpus,
        result.seed_sessions,
        result.seed_users,
        result.growth_factor,
        result.registers_per_s,
        result.admits_per_s
    );
    for (i, r) in result.rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"universe_sessions\": {}, \"universe_users\": {}, ",
                "\"live_sessions\": {}, \"registered\": {}, ",
                "\"registers_per_s\": {:.1}, \"admits_per_s\": {:.1}, ",
                "\"mean_register_us\": {:.2}, \"mean_admit_us\": {:.2}, ",
                "\"register_p50_us\": {:.2}, \"register_p99_us\": {:.2}, ",
                "\"admit_p50_us\": {:.2}, \"admit_p99_us\": {:.2}, ",
                "\"allocs_per_arrival\": {:.1}, ",
                "\"conservation_violations\": {}}}{}\n"
            ),
            r.universe_sessions,
            r.universe_users,
            r.live_sessions,
            r.registered,
            r.registers_per_s,
            r.admits_per_s,
            r.mean_register_us,
            r.mean_admit_us,
            r.register_p50_us,
            r.register_p99_us,
            r.admit_p50_us,
            r.admit_p99_us,
            r.allocs_per_arrival,
            r.conservation_violations,
            if i + 1 == result.rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the rows and writes `BENCH_open_world.json` into the working
/// directory.
pub fn print(result: &OpenWorldResult) {
    println!(
        "Open-world growth — seed {} sessions / {} users, grown {:.1}× online",
        result.seed_sessions, result.seed_users, result.growth_factor
    );
    println!(
        "{:>10} {:>9} {:>6} {:>12} {:>11} {:>11} {:>11} {:>11} {:>10} {:>11}",
        "universe",
        "users",
        "live",
        "register/s",
        "admit/s",
        "admit µs",
        "admit p50",
        "admit p99",
        "alloc/arr",
        "violations"
    );
    for r in &result.rows {
        println!(
            "{:>10} {:>9} {:>6} {:>12.0} {:>11.0} {:>11.2} {:>11.2} {:>11.2} {:>10.1} {:>11}",
            r.universe_sessions,
            r.universe_users,
            r.live_sessions,
            r.registers_per_s,
            r.admits_per_s,
            r.mean_admit_us,
            r.admit_p50_us,
            r.admit_p99_us,
            r.allocs_per_arrival,
            r.conservation_violations,
        );
    }
    println!(
        "\naggregate over the whole run: {:.0} register/s, {:.0} admit/s",
        result.registers_per_s, result.admits_per_s
    );
    let json = to_json(result);
    match std::fs::write("BENCH_open_world.json", &json) {
        Ok(()) => println!("\nwrote BENCH_open_world.json"),
        Err(e) => eprintln!("\ncould not write BENCH_open_world.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_grows_tenfold_and_conserves() {
        let result = run(12, 10, 7);
        assert!(
            result.growth_factor >= 9.5,
            "universe only grew {:.2}×",
            result.growth_factor
        );
        assert!(!result.rows.is_empty());
        for r in &result.rows {
            assert_eq!(r.conservation_violations, 0);
            assert!(r.admits_per_s > 0.0 && r.registers_per_s > 0.0);
            assert!(r.admit_p50_us > 0.0 && r.admit_p99_us >= r.admit_p50_us);
            assert!(r.register_p99_us >= r.register_p50_us);
        }
        assert!(result.registers_per_s > 0.0 && result.admits_per_s > 0.0);
        let last = result.rows.last().unwrap();
        assert_eq!(
            last.live_sessions, last.universe_sessions,
            "nobody departs in this trace: everything registered is live"
        );
        let json = to_json(&result);
        assert!(json.contains("\"open_world\""));
        assert!(json.contains("\"admits_per_s\""));
    }
}
