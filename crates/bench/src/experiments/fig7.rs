//! Fig. 7 — per-session traces: three sample sessions with 5, 4 and 3
//! users, from the same prototype run.

use super::prototype_nrst_state;
use crate::util::print_series_table;
use vc_model::SessionId;
use vc_sim::{ConferenceSim, SimConfig, SimReport};

/// The experiment output.
#[derive(Debug)]
pub struct Fig7Result {
    /// The underlying run.
    pub report: SimReport,
    /// The chosen sample sessions and their sizes.
    pub samples: Vec<(SessionId, usize)>,
}

/// Runs the prototype and picks one session of each size 5, 4, 3.
pub fn run(duration_s: f64, seed: u64) -> Fig7Result {
    let state = prototype_nrst_state(seed);
    let problem = state.problem().clone();
    let mut samples = Vec::new();
    for want in [5usize, 4, 3] {
        if let Some(s) = problem
            .instance()
            .sessions()
            .iter()
            .find(|s| s.len() == want && !samples.iter().any(|&(id, _)| id == s.id()))
        {
            samples.push((s.id(), want));
        }
    }
    let report = ConferenceSim::new(state, SimConfig::paper_default(duration_s, seed)).run();
    Fig7Result { report, samples }
}

/// Prints per-session traffic and delay series.
pub fn print(result: &Fig7Result) {
    println!("Fig. 7 — per-session evolution under Alg. 1 (β = 400)");
    println!("\n(a) inter-agent traffic (Mbps)");
    let labels: Vec<String> = result
        .samples
        .iter()
        .map(|(id, n)| format!("s{} ({n} users)", id.index()))
        .collect();
    let traffic: Vec<(&str, &vc_sim::TimeSeries)> = result
        .samples
        .iter()
        .zip(&labels)
        .map(|(&(id, _), l)| (l.as_str(), &result.report.per_session_traffic[id.index()]))
        .collect();
    print_series_table(&traffic, 10.0);
    println!("\n(b) conferencing delay (ms)");
    let delay: Vec<(&str, &vc_sim::TimeSeries)> = result
        .samples
        .iter()
        .zip(&labels)
        .map(|(&(id, _), l)| (l.as_str(), &result.report.per_session_delay[id.index()]))
        .collect();
    print_series_table(&delay, 10.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sessions_of_each_size() {
        let r = run(10.0, 2015);
        // The default prototype seed has sessions of all three sizes.
        assert_eq!(r.samples.len(), 3);
        let sizes: Vec<usize> = r.samples.iter().map(|&(_, n)| n).collect();
        assert_eq!(sizes, vec![5, 4, 3]);
    }

    #[test]
    fn per_session_series_are_recorded() {
        let r = run(15.0, 2015);
        for &(id, _) in &r.samples {
            assert!(!r.report.per_session_traffic[id.index()].is_empty());
        }
    }
}
