//! Fig. 5 — adaptation to session dynamics: 6 sessions at t = 0, 4 more
//! arrive at t = 40 s, 3 depart at t = 80 s; β = 400.

use super::prototype_problem;
use crate::util::print_series_table;
use vc_algo::agrank::AgRankConfig;
use vc_algo::nearest::nearest_assignment;
use vc_core::SystemState;
use vc_model::SessionId;
use vc_sim::{ArrivalPolicy, ConferenceSim, DynamicsEvent, SimConfig, SimReport};

/// Arrival instant of the 4 extra sessions (s).
pub const ARRIVAL_AT_S: f64 = 40.0;
/// Departure instant of the 3 leaving sessions (s).
pub const DEPARTURE_AT_S: f64 = 80.0;

/// Runs the dynamic scenario.
pub fn run(duration_s: f64, seed: u64) -> SimReport {
    let problem = prototype_problem(seed);
    let n = problem.instance().num_sessions();
    assert!(n >= 10, "prototype workload has 10 sessions");
    let assignment = nearest_assignment(&problem);
    let mut active = vec![false; n];
    for s in active.iter_mut().take(6) {
        *s = true;
    }
    let state = SystemState::with_active(problem, assignment, active);

    let mut dynamics = Vec::new();
    for s in 6..10 {
        dynamics.push(DynamicsEvent {
            time_s: ARRIVAL_AT_S,
            session: SessionId::new(s as u32),
            arrives: true,
        });
    }
    for s in 0..3 {
        dynamics.push(DynamicsEvent {
            time_s: DEPARTURE_AT_S,
            session: SessionId::new(s as u32),
            arrives: false,
        });
    }

    let mut config = SimConfig::paper_default(duration_s, seed);
    config.arrival_policy = ArrivalPolicy::AgRank(AgRankConfig::paper(2));
    ConferenceSim::new(state, config)
        .with_dynamics(dynamics)
        .run()
}

/// Prints the traffic/delay series with the dynamics marked.
pub fn print(report: &SimReport) {
    println!(
        "Fig. 5 — session arrival at t = {ARRIVAL_AT_S} s, departure at t = {DEPARTURE_AT_S} s (β = 400)"
    );
    print_series_table(
        &[
            ("traffic Mbps", &report.traffic),
            ("delay ms", &report.delay),
        ],
        5.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_raise_and_departures_lower_traffic() {
        let report = run(120.0, 8);
        let before_arrival = report.traffic.value_at(35.0).unwrap();
        let after_arrival = report.traffic.value_at(45.0).unwrap();
        assert!(
            after_arrival > before_arrival,
            "arrival: {before_arrival} → {after_arrival}"
        );
        let before_departure = report.traffic.value_at(78.0).unwrap();
        let after_departure = report.traffic.value_at(85.0).unwrap();
        assert!(
            after_departure < before_departure,
            "departure: {before_departure} → {after_departure}"
        );
    }
}
