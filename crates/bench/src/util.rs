//! Shared harness utilities: scenario parallelism and table printing.

use vc_sim::TimeSeries;

/// Runs `f(seed)` for `seeds`, in parallel across worker threads, and
/// returns results in seed order. Used to evaluate the paper's "100
/// random scenarios" sweeps.
pub fn par_map_seeds<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    let mut results: Vec<Option<T>> = (0..seeds.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= seeds.len() {
                    break;
                }
                let value = f(seeds[i]);
                let mut guard = results_mutex.lock().expect("no poisoned workers");
                guard[i] = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all seeds ran"))
        .collect()
}

/// Prints labeled time series side by side, sampled every `step` seconds.
pub fn print_series_table(series: &[(&str, &TimeSeries)], step: f64) {
    print!("{:>8}", "time_s");
    for (label, _) in series {
        print!(" {label:>16}");
    }
    println!();
    let max_t = series
        .iter()
        .filter_map(|(_, s)| s.points().last().map(|&(t, _)| t))
        .fold(0.0f64, f64::max);
    let mut t = 0.0;
    while t <= max_t + 1e-9 {
        print!("{t:>8.0}");
        for (_, s) in series {
            match s.value_at(t) {
                Some(v) => print!(" {v:>16.2}"),
                None => print!(" {:>16}", "-"),
            }
        }
        println!();
        t += step;
    }
}

/// Mean of a slice (NaN on empty input is fine for reporting).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_seed_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let out = par_map_seeds(&seeds, |s| s * 2);
        assert_eq!(out, seeds.iter().map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
