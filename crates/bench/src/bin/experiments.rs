//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p vc-bench --release --bin experiments -- <id>... [--scenarios N] [--duration S]
//! ids: fig2 fig4 fig5 fig6 fig7 table2 fig8 fig9 fig10 theorem1 robust migration
//!      ablation churn orchestrator persist hop_bench open_world admission_parity
//!      obs_overhead chaos elastic all
//!
//! cargo run -p vc-bench --release --bin experiments -- check <id>...
//! ```
//!
//! `check` re-runs each id (which must be one that emits a
//! `BENCH_*.json`) in memory and diffs it against the committed
//! baseline: any admitted-fraction drop, >20 % throughput regression,
//! or `true → false` flag flip exits non-zero (the CI regression
//! gate). A wall-clock threshold miss is re-run up to [`CHECK_ATTEMPTS`]
//! times before it counts as a failure — noise epochs wash out,
//! genuine regressions fail every attempt.
//! An unknown experiment id prints the valid ids and exits with
//! status 2 (asserted in CI), so a typo in an automation script fails
//! the job instead of silently running nothing.
//!
//! The binary installs a counting global allocator so `hop_bench` can
//! report heap allocations per hop (the overhead is one relaxed atomic
//! increment per allocation — irrelevant to every other experiment).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use vc_bench::experiments::table2::Table2Config;
use vc_bench::experiments::*;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting every allocation (including
/// `realloc`, which may move).
struct CountingAllocator;

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic with no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[derive(Debug, Clone)]
struct Options {
    ids: Vec<String>,
    scenarios: usize,
    /// Whether `--scenarios` was passed explicitly (experiments whose
    /// default differs from 100 need to distinguish "unset" from an
    /// explicit 100).
    scenarios_set: bool,
    duration_s: f64,
    seed: u64,
    /// `check` mode: diff fresh runs against committed baselines
    /// instead of printing/overwriting them.
    check: bool,
}

const ALL_IDS: [&str; 22] = [
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table2",
    "fig8",
    "fig9",
    "fig10",
    "theorem1",
    "robust",
    "migration",
    "ablation",
    "churn",
    "orchestrator",
    "persist",
    "hop_bench",
    "open_world",
    "admission_parity",
    "obs_overhead",
    "chaos",
    "elastic",
];

/// The ids `check` accepts, with their committed baseline documents.
const CHECKABLE: [(&str, &str); 6] = [
    ("hop_bench", "BENCH_hop.json"),
    ("admission_parity", "BENCH_admission.json"),
    ("open_world", "BENCH_open_world.json"),
    ("obs_overhead", "BENCH_obs_overhead.json"),
    ("chaos", "BENCH_chaos.json"),
    ("elastic", "BENCH_elastic.json"),
];

fn usage() -> ! {
    eprintln!("usage: experiments [check] <id>... [--scenarios N] [--duration S] [--seed K]");
    eprintln!("ids: {} all", ALL_IDS.join(" "));
    eprintln!(
        "check ids: {}",
        CHECKABLE
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        ids: Vec::new(),
        scenarios: 100,
        scenarios_set: false,
        duration_s: 0.0, // 0 = per-experiment default
        seed: 2015,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenarios" => {
                opts.scenarios = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.scenarios_set = true;
            }
            "--duration" => {
                opts.duration_s = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "check" if opts.ids.is_empty() && !opts.check => opts.check = true,
            "all" => opts.ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => opts.ids.push(id.to_string()),
            unknown if unknown.starts_with("--") => {
                eprintln!("unknown option '{unknown}'");
                usage()
            }
            unknown => {
                eprintln!("unknown experiment id '{unknown}'; valid ids are:");
                for id in ALL_IDS {
                    eprintln!("  {id}");
                }
                eprintln!("  all");
                std::process::exit(2)
            }
        }
    }
    if opts.ids.is_empty() {
        if opts.check {
            // Bare `check` (what CI invokes) means "check everything
            // that has a committed baseline".
            opts.ids
                .extend(CHECKABLE.iter().map(|(id, _)| id.to_string()));
        } else {
            usage();
        }
    }
    opts
}

/// `obs_overhead` parameters shared by the run and check paths:
/// `(sessions, virtual horizon s, round pairs)`. `--duration` sets the
/// virtual horizon; `--scenarios` the session target.
fn obs_overhead_params(opts: &Options) -> (usize, f64, usize) {
    let sessions = if opts.scenarios_set {
        opts.scenarios.max(20)
    } else {
        2_000
    };
    // Windows of a few tens of milliseconds, so machine-noise bursts
    // span several consecutive windows and cancel in the per-window
    // ratio; 256 pairs so the median's own sampling error shrinks to a
    // fraction of the budget (see the obs_overhead module docs).
    let horizon = if opts.duration_s > 0.0 {
        opts.duration_s
    } else {
        2.0
    };
    (sessions, horizon, 256)
}

/// `chaos` agent scales shared by the run and check paths (sessions =
/// 2 × agents). `--scenarios` narrows the sweep to one explicit scale.
fn chaos_scales(opts: &Options) -> Vec<usize> {
    if opts.scenarios_set {
        vec![opts.scenarios.clamp(2, 64)]
    } else {
        vec![3, 6, 9]
    }
}

/// `elastic` parameters shared by the run and check paths:
/// `(seed users, growth tiers)`. `--scenarios` sets the seed-universe
/// size in users; the pool doubles once per tier (7 → 7·2⁴ agents by
/// default).
fn elastic_params(opts: &Options) -> (usize, usize) {
    let seed_users = if opts.scenarios_set {
        opts.scenarios.max(24)
    } else {
        200
    };
    (seed_users, 4)
}

/// Regenerates one checkable experiment's JSON document in memory,
/// with the same parameter handling as a normal run.
fn fresh_json(id: &str, opts: &Options) -> String {
    match id {
        "hop_bench" => {
            let wall_ms = if opts.duration_s > 0.0 {
                (opts.duration_s * 1e3) as u64
            } else {
                2_000
            };
            hop_bench::to_json(&hop_bench::run(
                &[1_000, 10_000, 100_000],
                wall_ms,
                opts.seed,
            ))
        }
        "admission_parity" => {
            let sizes: Vec<usize> = if opts.scenarios_set {
                vec![1_000, opts.scenarios.max(100)]
            } else {
                vec![1_000, 12_000]
            };
            admission_parity::to_json(&admission_parity::run(&sizes, opts.seed))
        }
        "open_world" => {
            let seed_users = if opts.scenarios_set {
                opts.scenarios.max(12)
            } else {
                300
            };
            open_world::to_json(&open_world::run(seed_users, 10, opts.seed))
        }
        "obs_overhead" => {
            let (sessions, horizon, rounds) = obs_overhead_params(opts);
            obs_overhead::to_json(&obs_overhead::run(sessions, horizon, rounds, opts.seed))
        }
        "chaos" => chaos::to_json(&chaos::run(&chaos_scales(opts), opts.seed)),
        "elastic" => {
            let (seed_users, tiers) = elastic_params(opts);
            elastic::to_json(&elastic::run(seed_users, tiers, opts.seed))
        }
        other => unreachable!("'{other}' validated against CHECKABLE"),
    }
}

/// A wall-clock comparison that comes back over a threshold is re-run
/// before it fails the gate (sequential sampling, like the
/// `obs_overhead` budget check): noise epochs on a shared host wash
/// out across attempts, a genuine regression fails every one.
const CHECK_ATTEMPTS: usize = 3;

/// The `check` mode: baseline first (before anything could overwrite
/// it), then the fresh in-memory run, then the diff. Returns the
/// number of failed ids.
fn run_checks(opts: &Options) -> usize {
    let mut failed = 0usize;
    for id in &opts.ids {
        let Some((_, baseline_file)) = CHECKABLE.iter().find(|(cid, _)| cid == id) else {
            eprintln!("'{id}' has no committed baseline; check ids are:");
            for (cid, file) in CHECKABLE {
                eprintln!("  {cid} ({file})");
            }
            std::process::exit(2)
        };
        let baseline = match std::fs::read_to_string(baseline_file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("check {id}: cannot read committed {baseline_file}: {e}");
                failed += 1;
                continue;
            }
        };
        println!("check {id}: re-running against {baseline_file} ...");
        let started = std::time::Instant::now();
        let mut id_failed = false;
        for attempt in 1..=CHECK_ATTEMPTS {
            let current = fresh_json(id, opts);
            match vc_bench::check::compare(id, &baseline, &current) {
                Ok(report) => {
                    for note in &report.notes {
                        println!("  note: {note}");
                    }
                    if report.failures.is_empty() {
                        println!(
                            "  ok: {} value(s) within bounds [attempt {attempt}, {:.1}s]",
                            report.compared,
                            started.elapsed().as_secs_f64()
                        );
                        id_failed = false;
                        break;
                    }
                    id_failed = true;
                    let last = attempt == CHECK_ATTEMPTS;
                    for failure in &report.failures {
                        if last {
                            eprintln!("  FAIL: {failure}");
                        } else {
                            println!("  over threshold: {failure}");
                        }
                    }
                    if !last {
                        println!("  attempt {attempt} over threshold — re-running");
                    }
                }
                Err(e) => {
                    // A parse error will not fix itself; fail now.
                    eprintln!("  FAIL: {e}");
                    id_failed = true;
                    break;
                }
            }
        }
        if id_failed {
            failed += 1;
        }
    }
    failed
}

fn main() {
    // Surface the counting allocator through vc-obs so every consumer
    // (hop_bench, open_world, obs JSON exports) reads the same counter.
    vc_obs::register_alloc_counter(alloc_count);
    let opts = parse_args();
    if opts.check {
        let failed = run_checks(&opts);
        if failed > 0 {
            eprintln!("\n{failed} check(s) failed");
            std::process::exit(1);
        }
        println!("\nall checks passed");
        return;
    }
    let mut shared_table2: Option<table2::Table2Result> = None;
    for id in &opts.ids {
        let started = std::time::Instant::now();
        println!("\n================================================================");
        match id.as_str() {
            "fig2" => fig2::print(&fig2::run()),
            "fig4" => {
                let d = if opts.duration_s > 0.0 {
                    opts.duration_s
                } else {
                    200.0
                };
                fig4::print(&fig4::run(d, opts.seed));
            }
            "fig5" => {
                let d = if opts.duration_s > 0.0 {
                    opts.duration_s
                } else {
                    120.0
                };
                fig5::print(&fig5::run(d, opts.seed));
            }
            "fig6" => {
                let d = if opts.duration_s > 0.0 {
                    opts.duration_s
                } else {
                    100.0
                };
                fig6::print(&fig6::run(d, opts.seed));
            }
            "fig7" => {
                let d = if opts.duration_s > 0.0 {
                    opts.duration_s
                } else {
                    200.0
                };
                fig7::print(&fig7::run(d, opts.seed));
            }
            "table2" | "fig8" => {
                if shared_table2.is_none() {
                    let config = Table2Config {
                        scenarios: opts.scenarios,
                        duration_s: if opts.duration_s > 0.0 {
                            opts.duration_s
                        } else {
                            400.0
                        },
                        ..Table2Config::default()
                    };
                    shared_table2 = Some(table2::run(&config));
                }
                let result = shared_table2.as_ref().expect("just computed");
                if id == "table2" {
                    table2::print(result);
                } else {
                    fig8::print(&fig8::from_table2(result));
                }
            }
            "fig9" => {
                // The paper sweeps 400–900 Mbps; our synthetic workload's
                // feasibility transition sits higher (users are placed
                // farther from agents, so last-mile + inter-agent loads
                // are heavier) — the grid brackets *our* transition.
                let points_bw = [800.0, 1000.0, 1200.0, 1400.0, 1600.0];
                let a = fig9::run_bandwidth(&points_bw, opts.scenarios, opts.seed);
                fig9::print(
                    "Fig. 9(a) — successful initializations vs mean bandwidth capacity",
                    "mean bandwidth (Mbps)",
                    &a,
                );
                let points_tc = [20.0, 30.0, 40.0, 50.0, 60.0];
                let b = fig9::run_transcode(&points_tc, opts.scenarios, opts.seed);
                fig9::print(
                    "\nFig. 9(b) — successful initializations vs mean transcoding capacity",
                    "mean slots (#)",
                    &b,
                );
            }
            "fig10" => {
                let scenarios = opts.scenarios.min(30);
                fig10::print(&fig10::run(&[1, 2, 3, 4, 5, 6, 7], scenarios, opts.seed));
            }
            "theorem1" => {
                // Objective values of the Fig. 3 instance are O(100–1000),
                // so the informative β range starts well below 1.
                let rows = theorem1::run(&[0.001, 0.01, 0.1, 1.0, 100.0, 400.0], &[0.0, 2.0, 10.0]);
                theorem1::print(&rows);
            }
            "robust" => {
                let d = if opts.duration_s > 0.0 {
                    opts.duration_s
                } else {
                    300.0
                };
                robust::print(&robust::run(&[0.0, 1.0, 5.0, 20.0, 80.0], d, 5));
            }
            "migration" => migration::print(&migration::run(&[20.0, 30.0, 50.0, 80.0, 110.0])),
            "ablation" => {
                let d = if opts.duration_s > 0.0 {
                    opts.duration_s
                } else {
                    300.0
                };
                ablation::print_all(opts.scenarios.min(30), d, opts.seed);
            }
            "churn" => {
                let d = if opts.duration_s > 0.0 {
                    opts.duration_s
                } else {
                    200.0
                };
                churn::print(&churn::run(d, opts.seed));
            }
            "orchestrator" => {
                let d = if opts.duration_s > 0.0 {
                    opts.duration_s
                } else {
                    60.0
                };
                orchestrator::print(&orchestrator::run(d, opts.seed));
            }
            "persist" => persist::print(&persist::run(opts.seed)),
            "open_world" => {
                // `--scenarios` doubles as the seed-universe size in
                // users (default 300 ≈ 85 sessions → ~850 grown;
                // explicit values below 12 are raised to 12, the
                // smallest seed with a meaningful growth ladder).
                let seed_users = if opts.scenarios_set {
                    opts.scenarios.max(12)
                } else {
                    300
                };
                open_world::print(&open_world::run(seed_users, 10, opts.seed));
            }
            "admission_parity" => {
                // `--scenarios` doubles as the large fleet-size target
                // (default ≈1k and ≈12k sessions, the hop-bench scale).
                let sizes: Vec<usize> = if opts.scenarios_set {
                    vec![1_000, opts.scenarios.max(100)]
                } else {
                    vec![1_000, 12_000]
                };
                admission_parity::print(&admission_parity::run(&sizes, opts.seed));
            }
            "hop_bench" => {
                // `--duration` (seconds) sets the per-config wall budget
                // of the concurrent runs; default 2 s each.
                let wall_ms = if opts.duration_s > 0.0 {
                    (opts.duration_s * 1e3) as u64
                } else {
                    2_000
                };
                hop_bench::print(&hop_bench::run(
                    &[1_000, 10_000, 100_000],
                    wall_ms,
                    opts.seed,
                ));
            }
            "obs_overhead" => {
                let (sessions, horizon, rounds) = obs_overhead_params(&opts);
                obs_overhead::print(&obs_overhead::run(sessions, horizon, rounds, opts.seed));
            }
            "chaos" => chaos::print(&chaos::run(&chaos_scales(&opts), opts.seed)),
            "elastic" => {
                let (seed_users, tiers) = elastic_params(&opts);
                elastic::print(&elastic::run(seed_users, tiers, opts.seed));
            }
            _ => unreachable!("ids validated in parse_args"),
        }
        eprintln!("[{id} finished in {:.1}s]", started.elapsed().as_secs_f64());
    }
}
