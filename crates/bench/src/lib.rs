//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment is a library function returning a structured result
//! plus a `print` routine producing the rows/series the paper reports;
//! the `experiments` binary dispatches on experiment ids (see
//! `DESIGN.md`'s experiment index). Criterion micro-benchmarks live in
//! `benches/`.

#![forbid(unsafe_code)]

pub mod check;
pub mod experiments;
pub mod util;

pub use experiments::{
    ablation, churn, fig10, fig2, fig4, fig5, fig6, fig7, fig8, fig9, hop_bench, migration,
    obs_overhead, orchestrator, persist, robust, table2, theorem1,
};
