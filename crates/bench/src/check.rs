//! Benchmark regression gate: re-runs an experiment and diffs its
//! fresh JSON against the committed `BENCH_*.json` baseline.
//!
//! The `experiments` binary's `check` mode (CI runs it on every push)
//! reads the **committed** baseline *before* re-running, regenerates
//! the document in memory (nothing on disk is overwritten), matches
//! rows by their size key, and applies three rules:
//!
//! * **admitted fractions may never drop** — every experiment here is
//!   deterministic given its seed, so `*_fraction` keys must reproduce
//!   exactly (an epsilon covers float formatting); any drop is a
//!   correctness regression, not noise;
//! * **throughput may not regress more than 20 %** — `*_per_s` keys
//!   are wall-clock measurements, so they get a noise margin. When a
//!   document carries a `*_per_s` key at top level, same-named keys
//!   inside rows are treated as informational samples and skipped:
//!   the aggregate integrates far more wall-clock time than any
//!   single row (open-world phases accumulate only milliseconds
//!   each), so the aggregate is the signal and the rows are noise;
//! * **booleans may not flip `true → false`** — `parity`,
//!   `within_budget`;
//!
//! plus `conservation_violations` may never increase. Rows present on
//! only one side (e.g. a `--scenarios` override shrank the size sweep)
//! are skipped with a note, not failed: the gate compares like with
//! like.
//!
//! The JSON parser below is a minimal hand-rolled recursive descent —
//! the vendored serde is a deliberate no-op shim, so the workspace
//! parses exactly the documents it emits.

use std::collections::BTreeMap;

/// A parsed JSON value (only what the `BENCH_*.json` documents use).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (all benchmark numbers fit f64 exactly enough).
    Num(f64),
    /// A string (no escape sequences beyond `\"` and `\\` needed).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered by key.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos:?}",
            char::from(what),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8], out: Json) -> Result<Json, String> {
    if bytes.len() - *pos >= lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(out)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("truncated escape")?;
                *pos += 1;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'n' => '\n',
                    b't' => '\t',
                    other => return Err(format!("unsupported escape '\\{}'", char::from(other))),
                });
            }
            other => out.push(char::from(other)),
        }
    }
    Err("unterminated string".into())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Throughput keys tolerate this relative drop before failing.
pub const THROUGHPUT_MARGIN: f64 = 0.20;

/// The outcome of one baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Rule violations — any entry fails the check.
    pub failures: Vec<String>,
    /// Skipped/unmatched context, printed but not failing.
    pub notes: Vec<String>,
    /// `(key, baseline, current)` pairs that were actually compared.
    pub compared: usize,
}

fn row_key(row: &Json) -> Option<(&'static str, f64)> {
    for key in ["sessions", "universe_sessions"] {
        if let Some(v) = row.get(key).and_then(Json::as_num) {
            return Some((key, v));
        }
    }
    None
}

fn compare_scalars(
    context: &str,
    base: &Json,
    cur: &Json,
    superseded: &[&String],
    report: &mut CheckReport,
) {
    let (Json::Obj(base_map), Json::Obj(_)) = (base, cur) else {
        return;
    };
    for (key, bv) in base_map {
        if superseded.contains(&key) {
            continue;
        }
        let Some(cv) = cur.get(key) else {
            report
                .notes
                .push(format!("{context}: key '{key}' missing from the fresh run"));
            continue;
        };
        match (bv, cv) {
            (Json::Bool(true), Json::Bool(false)) => {
                report
                    .failures
                    .push(format!("{context}: '{key}' flipped true → false"));
                report.compared += 1;
            }
            (Json::Bool(_), Json::Bool(_)) => report.compared += 1,
            (Json::Num(b), Json::Num(c)) => {
                // Measured-overhead fractions (plain and traced) are
                // noisy machine measurements, not deterministic model
                // outputs — the booleans gate them instead.
                let is_fraction = key.ends_with("_fraction")
                    && !key.starts_with("overhead_fraction")
                    && key != "budget_fraction";
                if is_fraction {
                    report.compared += 1;
                    if *c < *b - 1e-9 {
                        report.failures.push(format!(
                            "{context}: '{key}' dropped {b:.4} → {c:.4} (fractions are deterministic; any drop fails)"
                        ));
                    }
                } else if key.ends_with("_per_s") {
                    report.compared += 1;
                    if *c < *b * (1.0 - THROUGHPUT_MARGIN) {
                        report.failures.push(format!(
                            "{context}: '{key}' regressed {b:.0} → {c:.0} (> {:.0}% drop)",
                            THROUGHPUT_MARGIN * 100.0
                        ));
                    }
                } else if key == "conservation_violations" {
                    report.compared += 1;
                    if *c > *b {
                        report
                            .failures
                            .push(format!("{context}: '{key}' increased {b:.0} → {c:.0}"));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Compares a committed baseline document against a freshly
/// regenerated one. Top-level scalars are compared directly; `rows`
/// are matched by their size key (`sessions` / `universe_sessions`),
/// and unmatched rows on either side become notes, not failures.
pub fn compare(id: &str, baseline: &str, current: &str) -> Result<CheckReport, String> {
    let base = parse(baseline).map_err(|e| format!("{id}: committed baseline unparsable: {e}"))?;
    let cur = parse(current).map_err(|e| format!("{id}: fresh run unparsable: {e}"))?;
    let mut report = CheckReport::default();
    compare_scalars(id, &base, &cur, &[], &mut report);
    // Top-level throughput aggregates supersede same-named per-row
    // samples: a row integrates too little wall-clock time to gate.
    let aggregated_rates: Vec<&String> = match &base {
        Json::Obj(map) => map.keys().filter(|k| k.ends_with("_per_s")).collect(),
        _ => Vec::new(),
    };
    let base_rows = match base.get("rows") {
        Some(Json::Arr(rows)) => rows.as_slice(),
        _ => &[],
    };
    let cur_rows = match cur.get("rows") {
        Some(Json::Arr(rows)) => rows.as_slice(),
        _ => &[],
    };
    for brow in base_rows {
        let Some((key, size)) = row_key(brow) else {
            report
                .notes
                .push(format!("{id}: baseline row without a size key"));
            continue;
        };
        let matched = cur_rows
            .iter()
            .find(|r| row_key(r).is_some_and(|(k, v)| k == key && size_eq(v, size)));
        match matched {
            Some(crow) => {
                compare_scalars(
                    &format!("{id}[{key}={size:.0}]"),
                    brow,
                    crow,
                    &aggregated_rates,
                    &mut report,
                );
            }
            None => report.notes.push(format!(
                "{id}: baseline row {key}={size:.0} absent from the fresh run (size sweep differs); skipped"
            )),
        }
    }
    for crow in cur_rows {
        if let Some((key, size)) = row_key(crow) {
            if !base_rows
                .iter()
                .any(|r| row_key(r).is_some_and(|(k, v)| k == key && size_eq(v, size)))
            {
                report.notes.push(format!(
                    "{id}: fresh row {key}={size:.0} has no committed baseline; skipped"
                ));
            }
        }
    }
    Ok(report)
}

/// Exact-size row match (sizes are integers carried as f64).
fn size_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "experiment": "demo", "cpus": 1,
  "rows": [
    {"sessions": 100, "engine_fraction": 0.93, "admits_per_s": 1000.0, "parity": true, "conservation_violations": 0},
    {"sessions": 200, "engine_fraction": 0.90, "admits_per_s": 2000.0, "parity": true, "conservation_violations": 0}
  ]
}"#;

    #[test]
    fn parser_round_trips_the_shapes_we_emit() {
        let v = parse(BASE).expect("parses");
        assert_eq!(v.get("experiment"), Some(&Json::Str("demo".into())));
        let Some(Json::Arr(rows)) = v.get("rows") else {
            panic!("rows missing")
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("sessions").and_then(Json::as_num), Some(100.0));
        assert_eq!(rows[0].get("parity").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn identical_documents_pass() {
        let report = compare("demo", BASE, BASE).expect("comparable");
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.compared > 0);
    }

    #[test]
    fn fraction_drop_fails_throughput_margin_tolerates() {
        let current = BASE
            .replace("\"engine_fraction\": 0.93", "\"engine_fraction\": 0.92")
            .replace("\"admits_per_s\": 1000.0", "\"admits_per_s\": 850.0");
        let report = compare("demo", BASE, &current).expect("comparable");
        // 0.93 → 0.92 fails; 1000 → 850 is a 15% drop, inside the 20% margin.
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("engine_fraction"));
    }

    #[test]
    fn big_throughput_drop_and_parity_flip_fail() {
        let current = BASE
            .replace("\"admits_per_s\": 2000.0", "\"admits_per_s\": 1500.0")
            .replace(
                "\"engine_fraction\": 0.90, \"admits_per_s\": 1500.0, \"parity\": true",
                "\"engine_fraction\": 0.90, \"admits_per_s\": 1500.0, \"parity\": false",
            );
        let report = compare("demo", BASE, &current).expect("comparable");
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
    }

    #[test]
    fn unmatched_rows_are_notes_not_failures() {
        let current = r#"{
  "experiment": "demo", "cpus": 1,
  "rows": [
    {"sessions": 100, "engine_fraction": 0.93, "admits_per_s": 1000.0, "parity": true, "conservation_violations": 0}
  ]
}"#;
        let report = compare("demo", BASE, current).expect("comparable");
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("sessions=200") && n.contains("skipped")));
    }

    #[test]
    fn top_level_aggregate_supersedes_row_rates() {
        // `admits_per_s` appears at top level, so the 4× drop in the
        // row sample is skipped; the aggregate itself still gates.
        let base = r#"{
  "experiment": "demo", "admits_per_s": 1000.0,
  "rows": [{"sessions": 100, "admits_per_s": 1200.0}]
}"#;
        let noisy_row = base.replace("\"admits_per_s\": 1200.0", "\"admits_per_s\": 300.0");
        let report = compare("demo", base, &noisy_row).expect("comparable");
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        let bad_aggregate = base.replacen("\"admits_per_s\": 1000.0", "\"admits_per_s\": 400.0", 1);
        let report = compare("demo", base, &bad_aggregate).expect("comparable");
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("admits_per_s"));
    }

    #[test]
    fn violations_increase_fails() {
        let current = BASE.replacen(
            "\"conservation_violations\": 0",
            "\"conservation_violations\": 2",
            1,
        );
        let report = compare("demo", BASE, &current).expect("comparable");
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("conservation_violations"));
    }
}
