//! End-to-end benchmark: a full Alg. 1 run (50 simulated seconds) on the
//! prototype workload — the cost of regenerating one Fig. 4-style trace.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::markov::{Alg1Config, Alg1Engine};
use vc_algo::nearest::nearest_assignment;
use vc_core::{SystemState, UapProblem};
use vc_cost::CostModel;
use vc_workloads::{prototype_instance, PrototypeConfig};

fn bench_alg1_run(c: &mut Criterion) {
    let problem = Arc::new(UapProblem::new(
        prototype_instance(&PrototypeConfig::default()),
        CostModel::paper_default(),
    ));
    let base = SystemState::new(problem.clone(), nearest_assignment(&problem));
    let engine = Alg1Engine::new(Alg1Config::paper(400.0));
    let mut group = c.benchmark_group("alg1_run_prototype");
    group.sample_size(20);
    group.bench_function("50_sim_seconds", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                (base.clone(), StdRng::seed_from_u64(seed))
            },
            |(mut state, mut rng)| {
                std::hint::black_box(engine.run(&mut state, 50.0, &mut rng));
                state.objective()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_alg1_run);
criterion_main!(benches);
