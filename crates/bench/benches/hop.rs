//! Micro-benchmark of one Alg. 1 HOP (enumerate + Gibbs-sample + apply).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::markov::{Alg1Config, Alg1Engine};
use vc_algo::nearest::nearest_assignment;
use vc_core::{SystemState, UapProblem};
use vc_cost::CostModel;
use vc_model::SessionId;
use vc_workloads::{large_scale_instance, prototype_instance, LargeScaleConfig, PrototypeConfig};

fn bench_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_hop");
    let prototype = Arc::new(UapProblem::new(
        prototype_instance(&PrototypeConfig::default()),
        CostModel::paper_default(),
    ));
    let large = Arc::new(UapProblem::new(
        large_scale_instance(&LargeScaleConfig::default()),
        CostModel::paper_default(),
    ));
    for (label, problem) in [("prototype", prototype), ("large_scale", large)] {
        let engine = Alg1Engine::new(Alg1Config::paper(400.0));
        let base = SystemState::new(problem.clone(), nearest_assignment(&problem));
        group.bench_function(label, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter_batched(
                || base.clone(),
                |mut state| {
                    std::hint::black_box(engine.hop(&mut state, SessionId::new(0), &mut rng))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hop);
criterion_main!(benches);
