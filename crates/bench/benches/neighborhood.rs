//! Micro-benchmark of feasible-neighborhood enumeration — the inner loop
//! of every HOP (the paper's per-iteration complexity claim).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vc_algo::nearest::nearest_assignment;
use vc_core::{neighborhood, SystemState, UapProblem};
use vc_cost::CostModel;
use vc_model::SessionId;
use vc_workloads::{large_scale_instance, prototype_instance, LargeScaleConfig, PrototypeConfig};

fn bench_feasible_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasible_moves");
    let prototype = Arc::new(UapProblem::new(
        prototype_instance(&PrototypeConfig::default()),
        CostModel::paper_default(),
    ));
    let large = Arc::new(UapProblem::new(
        large_scale_instance(&LargeScaleConfig::default()),
        CostModel::paper_default(),
    ));
    for (label, problem) in [("prototype", prototype), ("large_scale", large)] {
        let state = SystemState::new(problem.clone(), nearest_assignment(&problem));
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(neighborhood::feasible_moves(&state, SessionId::new(0))))
        });
    }
    group.finish();
}

fn bench_all_moves_prototype(c: &mut Criterion) {
    let problem = Arc::new(UapProblem::new(
        prototype_instance(&PrototypeConfig::default()),
        CostModel::paper_default(),
    ));
    let state = SystemState::new(problem.clone(), nearest_assignment(&problem));
    c.bench_function("all_feasible_moves/prototype", |b| {
        b.iter(|| std::hint::black_box(neighborhood::all_feasible_moves(&state)))
    });
}

criterion_group!(benches, bench_feasible_moves, bench_all_moves_prototype);
criterion_main!(benches);
