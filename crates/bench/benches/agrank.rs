//! Micro-benchmarks of AgRank: one session's ranking and the whole-system
//! bootstrap (the paper reports < 200 ms per session on a micro instance).

use criterion::{criterion_group, criterion_main, Criterion};
use vc_algo::agrank::{agrank_assignment, rank_agents, AgRankConfig, Residuals};
use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_model::SessionId;
use vc_workloads::{large_scale_instance, LargeScaleConfig};

fn bench_rank_one_session(c: &mut Criterion) {
    let problem = UapProblem::new(
        large_scale_instance(&LargeScaleConfig::default()),
        CostModel::paper_default(),
    );
    let residuals = Residuals::full(&problem);
    let mut group = c.benchmark_group("agrank_rank_session");
    for n_ngbr in [2usize, 3, 7] {
        let config = AgRankConfig::paper(n_ngbr);
        group.bench_function(format!("nngbr_{n_ngbr}"), |b| {
            b.iter(|| {
                std::hint::black_box(rank_agents(
                    &problem,
                    SessionId::new(0),
                    &residuals,
                    &config,
                ))
            })
        });
    }
    group.finish();
}

fn bench_bootstrap_all_sessions(c: &mut Criterion) {
    let problem = UapProblem::new(
        large_scale_instance(&LargeScaleConfig::default()),
        CostModel::paper_default(),
    );
    c.bench_function("agrank_bootstrap_200_users", |b| {
        b.iter(|| std::hint::black_box(agrank_assignment(&problem, &AgRankConfig::paper(2))))
    });
}

criterion_group!(
    benches,
    bench_rank_one_session,
    bench_bootstrap_all_sessions
);
criterion_main!(benches);
