//! Micro-benchmarks of the UAP evaluation core: per-session evaluation
//! and full-system construction at prototype and Internet scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use vc_algo::nearest::nearest_assignment;
use vc_core::{evaluate::evaluate_session, SystemState, UapProblem};
use vc_cost::CostModel;
use vc_model::SessionId;
use vc_workloads::{large_scale_instance, prototype_instance, LargeScaleConfig, PrototypeConfig};

fn problems() -> Vec<(&'static str, Arc<UapProblem>)> {
    vec![
        (
            "prototype",
            Arc::new(UapProblem::new(
                prototype_instance(&PrototypeConfig::default()),
                CostModel::paper_default(),
            )),
        ),
        (
            "large_scale",
            Arc::new(UapProblem::new(
                large_scale_instance(&LargeScaleConfig::default()),
                CostModel::paper_default(),
            )),
        ),
    ]
}

fn bench_evaluate_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_session");
    for (label, problem) in problems() {
        let assignment = nearest_assignment(&problem);
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(evaluate_session(&problem, &assignment, SessionId::new(0)))
            })
        });
    }
    group.finish();
}

fn bench_system_state_new(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_state_new");
    for (label, problem) in problems() {
        let assignment = nearest_assignment(&problem);
        group.bench_function(label, |b| {
            b.iter_batched(
                || assignment.clone(),
                |asg| std::hint::black_box(SystemState::new(problem.clone(), asg)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_objective_readout(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_readout");
    for (label, problem) in problems() {
        let state = SystemState::new(problem.clone(), nearest_assignment(&problem));
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box((
                    state.objective(),
                    state.total_traffic_mbps(),
                    state.mean_delay_ms(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_evaluate_session,
    bench_system_state_new,
    bench_objective_readout
);
criterion_main!(benches);
