//! Control-plane throughput: session admission against the sharded
//! ledger, and re-optimization hop execution, at 1k+ concurrent
//! sessions over the Internet-scale universe.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_model::SessionId;
use vc_orchestrator::{Fleet, FleetConfig, PlacementPolicy, ReoptPool};
use vc_workloads::{large_scale_instance, LargeScaleConfig};

/// ~1.4k potential sessions over the 7 EC2 agents.
fn universe() -> Arc<UapProblem> {
    let instance = large_scale_instance(&LargeScaleConfig {
        num_users: 3_500,
        max_session_size: 3,
        mean_bandwidth_mbps: Some(60_000.0),
        mean_transcode_slots: Some(4_000.0),
        seed: 9,
        ..LargeScaleConfig::default()
    });
    Arc::new(UapProblem::new(instance, CostModel::paper_default()))
}

fn config() -> FleetConfig {
    FleetConfig {
        placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
        alg1: Alg1Config::paper(400.0),
        ledger_shards: 4,
        ..FleetConfig::default()
    }
}

fn bench_admit(c: &mut Criterion) {
    let problem = universe();
    let num_sessions = problem.instance().num_sessions();
    assert!(num_sessions >= 1_000, "universe too small: {num_sessions}");
    let mut group = c.benchmark_group("orchestrator_admit");
    group.bench_function("admit_1k_sessions", |b| {
        b.iter_batched(
            || Fleet::new(problem.clone(), config()),
            |fleet| {
                let mut admitted = 0;
                for i in 0..1_000 {
                    if fleet.admit(SessionId::new(i)).is_ok() {
                        admitted += 1;
                    }
                }
                assert!(admitted >= 900, "only {admitted}/1000 admitted");
                admitted
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_hops(c: &mut Criterion) {
    let problem = universe();
    let fleet = Fleet::new(problem.clone(), config());
    let live: Vec<SessionId> = (0..1_000u32)
        .map(SessionId::new)
        .filter(|&s| fleet.admit(s).is_ok())
        .collect();
    assert!(live.len() >= 900);
    let mut rng = StdRng::seed_from_u64(5);
    let mut next = 0usize;
    let mut group = c.benchmark_group("orchestrator_reopt");
    group.bench_function("hop_at_1k_live", |b| {
        b.iter(|| {
            let s = live[next % live.len()];
            next += 1;
            fleet.hop_session(s, &mut rng)
        })
    });
    group.bench_function("tick_1s_at_1k_live", |b| {
        let pool = ReoptPool::new(17);
        for &s in &live {
            pool.register(&fleet, s, 0.0);
        }
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1.0;
            pool.tick_until(&fleet, t)
        })
    });
    group.finish();
    assert!(fleet.audit().is_empty(), "bench corrupted the ledger");
}

criterion_group!(benches, bench_admit, bench_hops);
criterion_main!(benches);
