//! CLI contract of the `experiments` binary: failures must be loud.
//!
//! CI invokes the binary by experiment id; a typo (or an id removed in
//! a refactor) must fail the job with a non-zero exit status, not
//! print the valid ids and report success.

use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn unknown_experiment_id_exits_non_zero() {
    let out = experiments()
        .arg("definitely_not_an_experiment")
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "unknown id must fail, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment id") && stderr.contains("admission_parity"),
        "stderr must name the problem and list valid ids: {stderr}"
    );
}

#[test]
fn unknown_id_mixed_with_valid_ones_still_fails() {
    // The refusal must cover argument lists that *start* valid: nothing
    // may run before the parse completes.
    let out = experiments()
        .args(["fig2", "definitely_not_an_experiment"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("Fig. 2"),
        "no experiment may run when any id is invalid"
    );
}

#[test]
fn no_arguments_exits_non_zero_with_usage() {
    let out = experiments().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "missing usage line: {stderr}");
}
