//! Open-world fleet traces: a stream of **never-before-seen**
//! conferences.
//!
//! [`dynamic_trace`](crate::dynamic_trace) plays churn over a universe
//! fixed at fleet construction — every conference that may ever arrive
//! must be pre-declared in the instance. This module drops that
//! assumption, matching how a production service (and the paper's
//! "dynamics of conferencing sessions") actually behaves: each arrival
//! *is* a new conference, carried as a full [`SessionDef`] (members,
//! demands, geo-derived delay columns) that the control plane registers
//! online via `Fleet::register_session` and then admits.
//!
//! Session ids are deterministic: the `k`-th arrival receives
//! `first_session_id + k` (registration order), so departures can be
//! scheduled by id before the fleet even exists. Traces are
//! deterministic given their config (seed included).

use rand::{rngs::StdRng, Rng, SeedableRng};
use vc_model::{DownstreamDemand, ReprLadder, SessionDef, SessionId, UserDef};
use vc_net::geo::GeoPoint;
use vc_net::latency::LatencyModel;
use vc_net::sites::SiteSampler;

/// One open-world control-plane event.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenWorldEvent {
    /// A brand-new conference arrives: register the definition (the
    /// fleet assigns the next dense session id), then admit it.
    Arrive(SessionDef),
    /// A previously-arrived conference ends. The id follows the
    /// deterministic `first_session_id + arrival index` rule.
    Depart(SessionId),
}

/// A time-ordered open-world trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpenWorldTrace {
    /// `(time_s, event)`, ascending by time.
    pub events: Vec<(f64, OpenWorldEvent)>,
    /// Total conferences the trace introduces.
    pub arrivals: usize,
    /// Total users across those conferences.
    pub users: usize,
}

/// Configuration of the open-world arrival process.
#[derive(Debug, Clone)]
pub struct OpenWorldConfig {
    /// Virtual-time horizon (s); no event is generated past it.
    pub horizon_s: f64,
    /// Mean inter-arrival gap of new conferences (s).
    pub mean_interarrival_s: f64,
    /// Mean conference lifetime (s); exponential. Conferences whose
    /// drawn departure lands past the horizon stay live to the end.
    pub mean_holding_s: f64,
    /// Hard cap on arrivals (`None` = until the horizon).
    pub max_arrivals: Option<usize>,
    /// Conference size range, inclusive (paper: 2..=5).
    pub session_size: (usize, usize),
    /// Probability a user demands 720p of everyone (paper: 0.8); the
    /// rest demand one of the other ladder rungs uniformly.
    pub p_demand_720: f64,
    /// Multiplicative jitter on generated agent-to-user delays.
    pub delay_jitter_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OpenWorldConfig {
    fn default() -> Self {
        Self {
            horizon_s: 60.0,
            mean_interarrival_s: 1.0,
            mean_holding_s: 120.0,
            max_arrivals: None,
            session_size: (2, 5),
            p_demand_720: 0.8,
            delay_jitter_frac: 0.08,
            seed: 1,
        }
    }
}

/// Generates an open-world trace against a fixed agent pool located at
/// `agents` (e.g. `vc_net::sites::ec2_seven()` points — the pool the
/// seed instance was built over). New users are sampled from the
/// PlanetLab metro mix and their `H` columns derived with the default
/// fiber-latency model, exactly like `large_scale_instance` does for
/// the seed population.
///
/// `first_session_id` is the id the fleet will assign to the first
/// arrival — the seed instance's session count.
///
/// # Panics
///
/// Panics on a non-positive horizon/gap/holding time, an empty agent
/// pool, or a size range outside `1..=max`.
pub fn open_world_trace(
    agents: &[GeoPoint],
    first_session_id: usize,
    config: &OpenWorldConfig,
) -> OpenWorldTrace {
    assert!(config.horizon_s > 0.0, "horizon must be positive");
    assert!(config.mean_interarrival_s > 0.0, "gap must be positive");
    assert!(config.mean_holding_s > 0.0, "holding time must be positive");
    assert!(!agents.is_empty(), "need at least one agent");
    let (lo, hi) = config.session_size;
    assert!(lo >= 1 && lo <= hi, "bad session size range {lo}..={hi}");

    let ladder = ReprLadder::standard_four();
    let r720 = ladder.by_name("720p").expect("ladder has 720p").id();
    let others = [
        ladder.by_name("360p").expect("ladder has 360p").id(),
        ladder.by_name("480p").expect("ladder has 480p").id(),
        ladder.by_name("1080p").expect("ladder has 1080p").id(),
    ];
    let sampler = SiteSampler::planetlab_mix();
    let latency = LatencyModel::default();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut events: Vec<(f64, OpenWorldEvent)> = Vec::new();
    let mut t = 0.0f64;
    let mut arrivals = 0usize;
    let mut users = 0usize;
    loop {
        if let Some(cap) = config.max_arrivals {
            if arrivals >= cap {
                break;
            }
        }
        t += -rng.gen::<f64>().max(1e-300).ln() * config.mean_interarrival_s;
        if t > config.horizon_s {
            break;
        }
        let size = rng.gen_range(lo..=hi);
        let mut defs = Vec::with_capacity(size);
        for _ in 0..size {
            let site = sampler.sample(&mut rng);
            let p = site.point();
            let lat = (p.lat_deg() + 0.3 * (rng.gen::<f64>() - 0.5)).clamp(-89.9, 89.9);
            let lon = (p.lon_deg() + 0.3 * (rng.gen::<f64>() - 0.5)).clamp(-179.9, 179.9);
            let point = GeoPoint::new(lat, lon);
            let demand = if rng.gen::<f64>() < config.p_demand_720 {
                r720
            } else {
                others[rng.gen_range(0..others.len())]
            };
            let agent_delays_ms = agents
                .iter()
                .map(|&a| latency.one_way_jittered_ms(a, point, config.delay_jitter_frac, &mut rng))
                .collect();
            defs.push(UserDef {
                upstream: r720,
                downstream: DownstreamDemand::uniform(demand),
                agent_delays_ms,
                site_index: None,
            });
        }
        users += size;
        let s = SessionId::from(first_session_id + arrivals);
        arrivals += 1;
        events.push((t, OpenWorldEvent::Arrive(SessionDef { users: defs })));
        let depart_at = t + -rng.gen::<f64>().max(1e-300).ln() * config.mean_holding_s;
        if depart_at <= config.horizon_s {
            events.push((depart_at, OpenWorldEvent::Depart(s)));
        }
    }
    // Stable sort keeps arrive-before-depart for equal timestamps.
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite event times"));
    OpenWorldTrace {
        events,
        arrivals,
        users,
    }
}

impl OpenWorldTrace {
    /// Number of departure events.
    pub fn count_departs(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, OpenWorldEvent::Depart(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent_points() -> Vec<GeoPoint> {
        vc_net::sites::ec2_seven()
            .iter()
            .map(|s| s.point())
            .collect()
    }

    #[test]
    fn arrivals_carry_well_formed_defs() {
        let agents = agent_points();
        let trace = open_world_trace(&agents, 10, &OpenWorldConfig::default());
        assert!(trace.arrivals > 10, "too few arrivals: {}", trace.arrivals);
        let mut seen_users = 0usize;
        for (_, e) in &trace.events {
            if let OpenWorldEvent::Arrive(def) = e {
                assert!((2..=5).contains(&def.users.len()));
                seen_users += def.users.len();
                for u in &def.users {
                    assert_eq!(u.agent_delays_ms.len(), agents.len());
                    assert!(u.agent_delays_ms.iter().all(|d| d.is_finite() && *d > 0.0));
                }
            }
        }
        assert_eq!(seen_users, trace.users);
    }

    #[test]
    fn departures_follow_the_deterministic_id_rule() {
        let trace = open_world_trace(
            &agent_points(),
            7,
            &OpenWorldConfig {
                mean_holding_s: 5.0,
                ..OpenWorldConfig::default()
            },
        );
        let mut next_id = 7usize;
        let mut arrived = std::collections::HashSet::new();
        for (_, e) in &trace.events {
            match e {
                OpenWorldEvent::Arrive(_) => {
                    arrived.insert(SessionId::from(next_id));
                    next_id += 1;
                }
                OpenWorldEvent::Depart(s) => {
                    assert!(arrived.contains(s), "departure before arrival: {s}");
                }
            }
        }
        assert!(trace.count_departs() > 0, "no departures drawn");
    }

    #[test]
    fn deterministic_given_seed_and_capped() {
        let agents = agent_points();
        let config = OpenWorldConfig {
            max_arrivals: Some(12),
            ..OpenWorldConfig::default()
        };
        let a = open_world_trace(&agents, 0, &config);
        let b = open_world_trace(&agents, 0, &config);
        assert_eq!(a, b);
        assert_eq!(a.arrivals, 12);
        let c = open_world_trace(&agents, 0, &OpenWorldConfig { seed: 2, ..config });
        assert_ne!(a, c);
    }
}
