//! Scenario generators for the paper's experiments.
//!
//! Three families:
//!
//! * [`prototype`] — the Sec. V-A testbed: 6 EC2 agents, conferencing
//!   users in 10 metros (5 North America, 4 Asia, 1 Europe), 10 sessions
//!   of 3–5 participants, two camera representations, transcoding
//!   latencies in the measured 30–60 ms band;
//! * [`large_scale`] — the Sec. V-B trace-driven setup: 7 EC2 agents,
//!   256 PlanetLab-style nodes, 200 users in sessions of at most 5, the
//!   four-step representation ladder with a sparse transcoding matrix
//!   (80% of users demand 720p), and optional capacity draws for the
//!   Fig. 9 sweeps;
//! * [`dynamic`] — closed-world fleet traces (session arrivals/
//!   departures plus agent churn over virtual time, every conference
//!   pre-declared in the instance) feeding the `vc-orchestrator`
//!   control plane;
//! * [`open_world`] — open-world traces: a stream of **never-before-
//!   seen** conferences carried as full [`SessionDef`](vc_model::SessionDef)s,
//!   registered online via `Fleet::register_session` — traces need not
//!   pre-declare any conference.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod large_scale;
pub mod open_world;
pub mod prototype;

pub use dynamic::{dynamic_trace, DynamicTraceConfig, FleetEvent, FleetTrace};
pub use large_scale::{large_scale_instance, LargeScaleConfig};
pub use open_world::{open_world_trace, OpenWorldConfig, OpenWorldEvent, OpenWorldTrace};
pub use prototype::{prototype_instance, PrototypeConfig};
