//! Dynamic fleet traces: session arrivals/departures and agent churn
//! over virtual time, feeding the `vc-orchestrator` control plane.
//!
//! The paper's evaluation injects "dynamics of conferencing sessions" by
//! starting and ending sessions mid-run (Fig. 6/7); this module
//! generalizes that into an open-world arrival process: a warm pool of
//! sessions live at `t = 0`, Poisson arrivals afterwards, exponential
//! holding times, plus scripted agent failures/recoveries.
//!
//! Traces are deterministic given their config (seed included).

use rand::{rngs::StdRng, Rng, SeedableRng};
use vc_model::{AgentId, SessionId};

/// One control-plane event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetEvent {
    /// A session arrives and asks for admission.
    Arrive(SessionId),
    /// A live session ends.
    Depart(SessionId),
    /// An agent fails.
    FailAgent(AgentId),
    /// A failed agent recovers.
    RestoreAgent(AgentId),
}

/// A time-ordered event trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetTrace {
    /// `(time_s, event)`, ascending by time.
    pub events: Vec<(f64, FleetEvent)>,
}

impl FleetTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events matching `pred`.
    pub fn count(&self, pred: impl Fn(&FleetEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

/// Configuration of the arrival/departure process.
#[derive(Debug, Clone)]
pub struct DynamicTraceConfig {
    /// Virtual-time horizon (s); no event is generated past it.
    pub horizon_s: f64,
    /// Sessions already live at `t = 0` (admitted in id order).
    pub warm_sessions: usize,
    /// Mean inter-arrival gap of later sessions (s); `None` disables
    /// arrivals after the warm pool.
    pub mean_interarrival_s: Option<f64>,
    /// Mean session lifetime (s); exponential. Sessions whose drawn
    /// departure lands past the horizon simply stay live to the end.
    pub mean_holding_s: f64,
    /// Scripted agent failures `(time_s, agent)`.
    pub failures: Vec<(f64, AgentId)>,
    /// Scripted agent recoveries `(time_s, agent)`.
    pub restores: Vec<(f64, AgentId)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynamicTraceConfig {
    fn default() -> Self {
        Self {
            horizon_s: 60.0,
            warm_sessions: 0,
            mean_interarrival_s: Some(2.0),
            mean_holding_s: 120.0,
            failures: Vec::new(),
            restores: Vec::new(),
            seed: 1,
        }
    }
}

/// Generates a trace over `num_sessions` potential sessions (the
/// instance's session count): the first `warm_sessions` arrive at
/// `t = 0`, the rest arrive by the Poisson process until the horizon or
/// the session pool is exhausted; each arrival draws an exponential
/// holding time.
///
/// # Panics
///
/// Panics on a non-positive horizon or holding time, or when
/// `warm_sessions > num_sessions`.
pub fn dynamic_trace(num_sessions: usize, config: &DynamicTraceConfig) -> FleetTrace {
    assert!(config.horizon_s > 0.0, "horizon must be positive");
    assert!(config.mean_holding_s > 0.0, "holding time must be positive");
    assert!(
        config.warm_sessions <= num_sessions,
        "warm pool exceeds the session universe"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut exp = |mean: f64| -> f64 { -rng.gen::<f64>().max(1e-300).ln() * mean };

    let mut events: Vec<(f64, FleetEvent)> = Vec::new();
    let mut schedule = |arrive_at: f64, s: SessionId, exp: &mut dyn FnMut(f64) -> f64| {
        events.push((arrive_at, FleetEvent::Arrive(s)));
        let depart_at = arrive_at + exp(config.mean_holding_s);
        if depart_at <= config.horizon_s {
            events.push((depart_at, FleetEvent::Depart(s)));
        }
    };

    for i in 0..config.warm_sessions {
        schedule(0.0, SessionId::from(i), &mut exp);
    }
    if let Some(gap) = config.mean_interarrival_s {
        assert!(gap > 0.0, "inter-arrival gap must be positive");
        let mut t = 0.0;
        for i in config.warm_sessions..num_sessions {
            t += exp(gap);
            if t > config.horizon_s {
                break;
            }
            schedule(t, SessionId::from(i), &mut exp);
        }
    }
    for &(t, a) in &config.failures {
        if t <= config.horizon_s {
            events.push((t, FleetEvent::FailAgent(a)));
        }
    }
    for &(t, a) in &config.restores {
        if t <= config.horizon_s {
            events.push((t, FleetEvent::RestoreAgent(a)));
        }
    }
    // Stable sort keeps arrive-before-depart for equal timestamps.
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite event times"));
    FleetTrace { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(trace: &FleetTrace) -> usize {
        trace.count(|e| matches!(e, FleetEvent::Arrive(_)))
    }

    #[test]
    fn warm_pool_arrives_at_zero() {
        let trace = dynamic_trace(
            50,
            &DynamicTraceConfig {
                warm_sessions: 10,
                mean_interarrival_s: None,
                ..DynamicTraceConfig::default()
            },
        );
        assert_eq!(arrivals(&trace), 10);
        for (t, e) in &trace.events {
            if matches!(e, FleetEvent::Arrive(_)) {
                assert_eq!(*t, 0.0);
            }
        }
    }

    #[test]
    fn events_are_time_ordered_and_bounded() {
        let trace = dynamic_trace(
            200,
            &DynamicTraceConfig {
                warm_sessions: 20,
                mean_interarrival_s: Some(0.5),
                mean_holding_s: 20.0,
                failures: vec![(30.0, AgentId::new(1))],
                restores: vec![(45.0, AgentId::new(1))],
                ..DynamicTraceConfig::default()
            },
        );
        for w in trace.events.windows(2) {
            assert!(w[0].0 <= w[1].0, "out of order: {w:?}");
        }
        assert!(trace.events.iter().all(|(t, _)| *t <= 60.0));
        assert!(arrivals(&trace) > 20, "Poisson arrivals missing");
    }

    #[test]
    fn each_session_departs_at_most_once_after_arriving() {
        let trace = dynamic_trace(
            100,
            &DynamicTraceConfig {
                warm_sessions: 30,
                mean_interarrival_s: Some(1.0),
                mean_holding_s: 10.0,
                ..DynamicTraceConfig::default()
            },
        );
        let mut arrived = std::collections::HashSet::new();
        let mut departed = std::collections::HashSet::new();
        for (_, e) in &trace.events {
            match e {
                FleetEvent::Arrive(s) => assert!(arrived.insert(*s), "double arrival {s}"),
                FleetEvent::Depart(s) => {
                    assert!(arrived.contains(s), "departure before arrival {s}");
                    assert!(departed.insert(*s), "double departure {s}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let config = DynamicTraceConfig {
            warm_sessions: 5,
            ..DynamicTraceConfig::default()
        };
        assert_eq!(dynamic_trace(40, &config), dynamic_trace(40, &config));
        let reference = dynamic_trace(40, &config);
        let other = dynamic_trace(40, &DynamicTraceConfig { seed: 2, ..config });
        assert_ne!(reference, other);
    }
}
