//! The Sec. V-B Internet-scale trace-driven setup.
//!
//! "256 PlanetLab nodes as the users and 7 EC2 instances as the agents …
//! 4 representations, 360p, 480p, 720p, and 1080p are exploited and a
//! sparse transcoding matrix is considered such that 80% of users demand
//! for 720p and only 20% demand for the others. … In each scenario,
//! there are 200 users in total (picked randomly from 256 PlanetLab
//! nodes), who join different sessions, while each session has at most 5
//! users."

use rand::{rngs::StdRng, Rng, SeedableRng};
use vc_model::{AgentSpec, Capacity, Instance, InstanceBuilder, ReprLadder};
use vc_net::geo::GeoPoint;
use vc_net::latency::{build_delay_matrices, LatencyModel};
use vc_net::sites::{ec2_seven, SiteSampler};

/// Configuration of one Internet-scale scenario.
#[derive(Debug, Clone)]
pub struct LargeScaleConfig {
    /// Number of PlanetLab-style nodes to synthesize (paper: 256).
    pub num_nodes: usize,
    /// Number of users drawn from those nodes (paper: 200).
    pub num_users: usize,
    /// Maximum session size (paper: 5).
    pub max_session_size: usize,
    /// Probability a user demands 720p (paper: 0.8); the rest demand one
    /// of the other three representations uniformly.
    pub p_demand_720: f64,
    /// Mean per-agent bandwidth capacity in Mbps (`None` = unlimited);
    /// individual agents draw uniformly within ±20%. Used by Fig. 9(a).
    pub mean_bandwidth_mbps: Option<f64>,
    /// Mean per-agent transcoding slots (`None` = unlimited); drawn
    /// within ±20%. Used by Fig. 9(b).
    pub mean_transcode_slots: Option<f64>,
    /// Multiplicative jitter on generated delays.
    pub delay_jitter_frac: f64,
    /// RNG seed (one seed = one "random scenario" of the paper's 100).
    pub seed: u64,
}

impl Default for LargeScaleConfig {
    fn default() -> Self {
        Self {
            num_nodes: 256,
            num_users: 200,
            max_session_size: 5,
            p_demand_720: 0.8,
            mean_bandwidth_mbps: None,
            mean_transcode_slots: None,
            delay_jitter_frac: 0.08,
            seed: 1,
        }
    }
}

/// Builds one Internet-scale scenario.
///
/// # Panics
///
/// Panics on degenerate configurations (`num_users > num_nodes` is
/// allowed — several users may sit on one node — but zero users or
/// session sizes below 2 are not).
pub fn large_scale_instance(config: &LargeScaleConfig) -> Instance {
    assert!(config.num_users >= 2, "need at least two users");
    assert!(
        config.max_session_size >= 2,
        "sessions need at least 2 users"
    );
    assert!(config.num_nodes >= 1, "need at least one node");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let ladder = ReprLadder::standard_four();
    let r720 = ladder.by_name("720p").expect("ladder has 720p").id();
    let others = [
        ladder.by_name("360p").expect("ladder has 360p").id(),
        ladder.by_name("480p").expect("ladder has 480p").id(),
        ladder.by_name("1080p").expect("ladder has 1080p").id(),
    ];

    let mut b = InstanceBuilder::new(ladder);

    // Agents in the seven EC2 regions, with capacity draws for the sweeps.
    let agents = ec2_seven();
    for site in &agents {
        let speed = 1.2 + rng.gen::<f64>() * 1.2;
        let mut spec = AgentSpec::builder(site.name()).speed_factor(speed);
        let mut cap = Capacity::UNLIMITED;
        if let Some(mean_bw) = config.mean_bandwidth_mbps {
            let draw = mean_bw * (0.8 + 0.4 * rng.gen::<f64>());
            cap.download_mbps = draw;
            cap.upload_mbps = draw;
        }
        if let Some(mean_slots) = config.mean_transcode_slots {
            let draw = mean_slots * (0.8 + 0.4 * rng.gen::<f64>());
            cap.transcode_slots = draw.round().max(0.0) as u32;
        }
        spec = spec.capacity(cap);
        b.add_agent(spec.build());
    }

    // 256 PlanetLab-style nodes: metros sampled with the PlanetLab mix,
    // each node scattered up to ~30 km around its metro center.
    let sampler = SiteSampler::planetlab_mix();
    let nodes: Vec<GeoPoint> = (0..config.num_nodes)
        .map(|_| {
            let site = sampler.sample(&mut rng);
            let p = site.point();
            let lat = (p.lat_deg() + 0.3 * (rng.gen::<f64>() - 0.5)).clamp(-89.9, 89.9);
            let lon = (p.lon_deg() + 0.3 * (rng.gen::<f64>() - 0.5)).clamp(-179.9, 179.9);
            GeoPoint::new(lat, lon)
        })
        .collect();

    // Sessions: draw sizes in [2, max] until num_users users are placed.
    // If a draw would strand a single user, the size is adjusted by one
    // (possibly exceeding the cap by one when the cap is 2).
    let mut user_nodes: Vec<usize> = Vec::with_capacity(config.num_users);
    let mut remaining = config.num_users;
    while remaining > 0 {
        let mut size = if remaining <= config.max_session_size {
            remaining
        } else {
            rng.gen_range(2..=config.max_session_size)
        };
        if remaining - size == 1 {
            if size < config.max_session_size || size <= 2 {
                size += 1;
            } else {
                size -= 1;
            }
        }
        let s = b.add_session();
        for _ in 0..size {
            let node = rng.gen_range(0..config.num_nodes);
            let demand = if rng.gen::<f64>() < config.p_demand_720 {
                r720
            } else {
                others[rng.gen_range(0..others.len())]
            };
            let u = b.add_user(s, r720, demand);
            b.set_user_site(u, node);
            user_nodes.push(node);
        }
        remaining = config.num_users.saturating_sub(user_nodes.len());
    }

    let agent_points: Vec<GeoPoint> = agents.iter().map(|s| s.point()).collect();
    let user_points: Vec<GeoPoint> = user_nodes.iter().map(|&i| nodes[i]).collect();
    let delays = build_delay_matrices(
        &LatencyModel::default(),
        &agent_points,
        &user_points,
        config.delay_jitter_frac,
        &mut rng,
    )
    .expect("generated delays are valid");
    b.delays(delays);
    b.build().expect("large-scale instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let inst = large_scale_instance(&LargeScaleConfig::default());
        assert_eq!(inst.num_agents(), 7);
        assert_eq!(inst.num_users(), 200);
        for s in inst.sessions() {
            assert!(s.len() >= 2 && s.len() <= 5, "session size {}", s.len());
        }
    }

    #[test]
    fn transcoding_matrix_is_sparse() {
        let inst = large_scale_instance(&LargeScaleConfig::default());
        // 80% demand 720p of 720p upstreams → no transcoding; roughly 20%
        // of directed flows need it.
        let total_flows: usize = inst
            .sessions()
            .iter()
            .map(|s| s.len() * (s.len() - 1))
            .sum();
        let frac = inst.theta_sum() as f64 / total_flows as f64;
        assert!(
            (0.1..0.35).contains(&frac),
            "transcoded flow fraction {frac}"
        );
    }

    #[test]
    fn capacity_draws_center_on_mean() {
        let inst = large_scale_instance(&LargeScaleConfig {
            mean_bandwidth_mbps: Some(600.0),
            mean_transcode_slots: Some(40.0),
            seed: 5,
            ..LargeScaleConfig::default()
        });
        for a in inst.agents() {
            let c = a.capacity();
            assert!(
                (480.0..=720.0).contains(&c.download_mbps),
                "{}",
                c.download_mbps
            );
            assert_eq!(c.download_mbps, c.upload_mbps);
            assert!(
                (31..=49).contains(&c.transcode_slots),
                "{}",
                c.transcode_slots
            );
        }
    }

    #[test]
    fn unlimited_by_default() {
        let inst = large_scale_instance(&LargeScaleConfig::default());
        for a in inst.agents() {
            assert!(a.capacity().download_mbps.is_infinite());
            assert_eq!(a.capacity().transcode_slots, u32::MAX);
        }
    }

    #[test]
    fn scenarios_differ_by_seed_only() {
        let a = large_scale_instance(&LargeScaleConfig::default());
        let b = large_scale_instance(&LargeScaleConfig::default());
        let c = large_scale_instance(&LargeScaleConfig {
            seed: 2,
            ..LargeScaleConfig::default()
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn no_single_user_sessions_and_exact_user_counts() {
        for seed in 0..10 {
            for num_users in [11usize, 13, 200] {
                let inst = large_scale_instance(&LargeScaleConfig {
                    seed,
                    num_users,
                    ..LargeScaleConfig::default()
                });
                assert_eq!(inst.num_users(), num_users, "seed {seed}");
                for s in inst.sessions() {
                    assert!(s.len() >= 2, "seed {seed}: session of {}", s.len());
                }
            }
        }
    }
}
