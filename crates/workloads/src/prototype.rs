//! The Sec. V-A prototype testbed.
//!
//! "6 Linux-based EC2 instances in different regions are employed as the
//! cloud agents. … the transcoding latency of agents are in \[30, 60\] ms
//! … Conferencing users are distributed in 10 locations (5 in North
//! America, 4 in Asia, and 1 in Europe) … we have launched 10 actual
//! conferencing sessions, each with 3–5 participants." Cameras capture
//! two representations (240p/360p).

use rand::{rngs::StdRng, Rng, SeedableRng};
use vc_model::{AgentSpec, Instance, InstanceBuilder, ReprLadder};
use vc_net::geo::GeoPoint;
use vc_net::latency::{build_delay_matrices, LatencyModel};
use vc_net::sites::{ec2_region, metro};

/// Configuration of the prototype scenario.
#[derive(Debug, Clone)]
pub struct PrototypeConfig {
    /// Number of conferencing sessions (paper: 10).
    pub num_sessions: usize,
    /// Participants per session, inclusive range (paper: 3–5).
    pub session_size: (usize, usize),
    /// Probability that a user demands the low (240p) representation.
    pub p_low_demand: f64,
    /// Multiplicative jitter on generated delays.
    pub delay_jitter_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PrototypeConfig {
    fn default() -> Self {
        Self {
            num_sessions: 10,
            session_size: (3, 5),
            p_low_demand: 0.3,
            delay_jitter_frac: 0.08,
            seed: 2015,
        }
    }
}

/// The six agent regions of the prototype.
pub const PROTOTYPE_AGENT_REGIONS: [&str; 6] = [
    "ec2-virginia",
    "ec2-oregon",
    "ec2-ireland",
    "ec2-tokyo",
    "ec2-singapore",
    "ec2-sao-paulo",
];

/// The ten user metros: 5 North America, 4 Asia, 1 Europe.
pub const PROTOTYPE_USER_METROS: [&str; 10] = [
    "seattle",
    "berkeley",
    "chicago",
    "new-york",
    "atlanta",
    "tokyo",
    "seoul",
    "hong-kong",
    "singapore",
    "london",
];

/// Builds the prototype instance.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no sessions, empty size
/// range).
pub fn prototype_instance(config: &PrototypeConfig) -> Instance {
    assert!(config.num_sessions > 0, "need at least one session");
    assert!(
        config.session_size.0 >= 2 && config.session_size.0 <= config.session_size.1,
        "invalid session size range"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let ladder = ReprLadder::prototype_two();
    let r240 = ladder.by_name("240p").expect("ladder has 240p").id();
    let r360 = ladder.by_name("360p").expect("ladder has 360p").id();

    let mut b = InstanceBuilder::new(ladder);
    // Agents: speed factors spread so σ(360p→240p at reference ≈ 25 ms
    // scaled) lands in the measured [30, 60] ms band.
    for name in PROTOTYPE_AGENT_REGIONS {
        let speed = 1.2 + rng.gen::<f64>() * 1.2; // [1.2, 2.4]
        b.add_agent(AgentSpec::builder(name).speed_factor(speed).build());
    }

    // Users: sessions of 3–5 participants drawn from the ten metros.
    let mut user_sites: Vec<usize> = Vec::new();
    for _ in 0..config.num_sessions {
        let size = rng.gen_range(config.session_size.0..=config.session_size.1);
        let s = b.add_session();
        for _ in 0..size {
            let site = rng.gen_range(0..PROTOTYPE_USER_METROS.len());
            // Everyone uploads 360p; devices demand 240p with probability
            // p_low_demand (those flows need transcoding).
            let demand = if rng.gen::<f64>() < config.p_low_demand {
                r240
            } else {
                r360
            };
            let u = b.add_user(s, r360, demand);
            b.set_user_site(u, site);
            user_sites.push(site);
        }
    }

    let agent_points: Vec<GeoPoint> = PROTOTYPE_AGENT_REGIONS
        .iter()
        .map(|n| ec2_region(n).expect("region exists").point())
        .collect();
    let user_points: Vec<GeoPoint> = user_sites
        .iter()
        .map(|&i| {
            metro(PROTOTYPE_USER_METROS[i])
                .expect("metro exists")
                .point()
        })
        .collect();
    let delays = build_delay_matrices(
        &LatencyModel::default(),
        &agent_points,
        &user_points,
        config.delay_jitter_frac,
        &mut rng,
    )
    .expect("generated delays are valid");
    b.delays(delays);
    b.build().expect("prototype instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_model::AgentId;

    #[test]
    fn shape_matches_paper() {
        let inst = prototype_instance(&PrototypeConfig::default());
        assert_eq!(inst.num_agents(), 6);
        assert_eq!(inst.num_sessions(), 10);
        for s in inst.sessions() {
            assert!((3..=5).contains(&s.len()), "session size {}", s.len());
        }
        assert!(inst.num_users() >= 30 && inst.num_users() <= 50);
    }

    #[test]
    fn transcoding_latencies_in_measured_band() {
        let inst = prototype_instance(&PrototypeConfig::default());
        let r240 = inst.ladder().by_name("240p").unwrap().id();
        let r360 = inst.ladder().by_name("360p").unwrap().id();
        for l in 0..inst.num_agents() {
            let sigma = inst.sigma_ms(AgentId::from(l), r360, r240);
            assert!(
                (14.0..=65.0).contains(&sigma),
                "sigma {sigma} outside the plausible band"
            );
        }
    }

    #[test]
    fn some_flows_need_transcoding() {
        let inst = prototype_instance(&PrototypeConfig::default());
        assert!(
            inst.theta_sum() > 0,
            "expected a nonempty transcoding matrix"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = prototype_instance(&PrototypeConfig::default());
        let b = prototype_instance(&PrototypeConfig::default());
        assert_eq!(a, b);
        let c = prototype_instance(&PrototypeConfig {
            seed: 99,
            ..PrototypeConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn delays_are_internet_scale() {
        let inst = prototype_instance(&PrototypeConfig::default());
        // Tokyo–Virginia style pairs must exist: some inter-agent delays
        // beyond 60 ms, none beyond 250 ms one-way.
        let d = inst.delays().inter_agent();
        let max = d.max();
        assert!(max > 60.0, "max inter-agent delay {max}");
        assert!(max < 250.0, "max inter-agent delay {max}");
    }
}
