//! The assignment-hopping continuous-time Markov chain.
//!
//! Between adjacent solutions `f` and `f'` the paper sets the transition
//! rate `q_{f→f'} = τ·exp(½β(Φ_f − Φ_{f'}))`. Together with the Gibbs
//! target `p*_f ∝ exp(−βΦ_f)` this satisfies detailed balance:
//!
//! ```text
//! p*_f·q_{f→f'} = τ·exp(−½β(Φ_f + Φ_{f'})) = p*_{f'}·q_{f'→f} ,
//! ```
//!
//! so the chain converges to `p*` (Proposition 1). This module provides
//! the exact generator, an exact stationary solve (for verification on
//! enumerable spaces), and event-driven simulation.

use crate::{gibbs, StateGraph};
use rand::Rng;

/// Exponent clamp guarding `exp(½β·ΔΦ)` against overflow for large β.
const MAX_EXPONENT: f64 = 600.0;

/// The continuous-time assignment-hopping chain over a [`StateGraph`].
#[derive(Debug, Clone)]
pub struct Ctmc {
    graph: StateGraph,
    beta: f64,
    tau: f64,
}

/// A simulated trajectory: piecewise-constant state over time.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Jump instants, starting at 0.0.
    pub times: Vec<f64>,
    /// State occupied from `times[i]` until `times[i+1]` (or `t_end`).
    pub states: Vec<usize>,
    /// Total simulated horizon.
    pub t_end: f64,
}

impl Trajectory {
    /// Time-weighted occupancy distribution over the horizon.
    pub fn occupancy(&self, num_states: usize) -> Vec<f64> {
        let mut occ = vec![0.0; num_states];
        for (i, &s) in self.states.iter().enumerate() {
            let start = self.times[i];
            let end = if i + 1 < self.times.len() {
                self.times[i + 1]
            } else {
                self.t_end
            };
            occ[s] += end - start;
        }
        let total: f64 = occ.iter().sum();
        if total > 0.0 {
            for o in &mut occ {
                *o /= total;
            }
        }
        occ
    }

    /// The state occupied at time `t` (clamped to the horizon).
    pub fn state_at(&self, t: f64) -> usize {
        match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => self.states[i],
            Err(0) => self.states[0],
            Err(i) => self.states[i - 1],
        }
    }
}

impl Ctmc {
    /// Creates the chain with inverse temperature `β` and clock rate `τ`.
    ///
    /// # Panics
    ///
    /// Panics if `β < 0` or `τ ≤ 0`.
    pub fn new(graph: StateGraph, beta: f64, tau: f64) -> Self {
        assert!(beta >= 0.0, "beta must be non-negative");
        assert!(tau > 0.0, "tau must be positive");
        Self { graph, beta, tau }
    }

    /// The underlying state graph.
    pub fn graph(&self) -> &StateGraph {
        &self.graph
    }

    /// Inverse temperature β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Transition rate `q_{f→f'}`; zero for non-adjacent pairs.
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        if !self.graph.neighbors(from).contains(&to) {
            return 0.0;
        }
        let exponent = (0.5 * self.beta * (self.graph.energy(from) - self.graph.energy(to)))
            .clamp(-MAX_EXPONENT, MAX_EXPONENT);
        self.tau * exponent.exp()
    }

    /// Dense generator matrix `Q` (row sums zero).
    pub fn generator(&self) -> Vec<Vec<f64>> {
        let n = self.graph.len();
        let mut q = vec![vec![0.0; n]; n];
        for (i, row) in q.iter_mut().enumerate() {
            let mut total = 0.0;
            for &j in self.graph.neighbors(i) {
                let r = self.rate(i, j);
                row[j] = r;
                total += r;
            }
            row[i] = -total;
        }
        q
    }

    /// The Gibbs target `p*` (Eq. 9) for this chain's β.
    pub fn target(&self) -> Vec<f64> {
        gibbs(self.graph.energies(), self.beta)
    }

    /// Maximum detailed-balance residual
    /// `max_{f~f'} |p*_f·q_{f→f'} − p*_{f'}·q_{f'→f}|` — analytically zero,
    /// near machine precision numerically.
    pub fn detailed_balance_residual(&self) -> f64 {
        let p = self.target();
        let mut worst: f64 = 0.0;
        for i in 0..self.graph.len() {
            for &j in self.graph.neighbors(i) {
                worst = worst.max((p[i] * self.rate(i, j) - p[j] * self.rate(j, i)).abs());
            }
        }
        worst
    }

    /// Exact stationary distribution.
    ///
    /// Primary method: solve the balance equations `πQ = 0`, `Σπ = 1`
    /// directly (Gaussian elimination with partial pivoting on the
    /// max-rate-normalized generator) — an *independent* verification of
    /// the Gibbs form. When the rate spread of a very large β makes that
    /// system numerically singular, falls back to the log-space
    /// spanning-tree construction for reversible chains, validating the
    /// Kolmogorov criterion on every non-tree edge.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not connected (no unique stationary law),
    /// or if the fallback detects a violation of reversibility.
    pub fn stationary_exact(&self) -> Vec<f64> {
        assert!(
            self.graph.is_connected(),
            "stationary distribution requires a connected graph"
        );
        match self.solve_balance_equations() {
            Some(pi) => pi,
            None => self.stationary_reversible_log(),
        }
    }

    /// Gaussian elimination on `Qᵀx = 0` with the normalization row;
    /// `None` when the normalized system is too ill-conditioned.
    fn solve_balance_equations(&self) -> Option<Vec<f64>> {
        let n = self.graph.len();
        let q = self.generator();
        // Normalize by the largest rate: the stationary law is invariant
        // under scaling Q, and entries in [-1, 1] condition the solve.
        let max_rate = q
            .iter()
            .flat_map(|row| row.iter().map(|v| v.abs()))
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[j][i] = q[i][j] / max_rate;
            }
        }
        a[n - 1].fill(1.0);
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        for col in 0..n {
            let pivot = (col..n).max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .expect("finite entries")
            })?;
            if a[pivot][col].abs() < 1e-13 {
                return None; // numerically singular: extreme rate spread
            }
            a.swap(col, pivot);
            b.swap(col, pivot);
            let diag = a[col][col];
            for row in (col + 1)..n {
                let factor = a[row][col] / diag;
                if factor != 0.0 {
                    let (upper, lower) = a.split_at_mut(row);
                    let pivot_row = &upper[col];
                    for (k, entry) in lower[0].iter_mut().enumerate().skip(col) {
                        *entry -= factor * pivot_row[k];
                    }
                    b[row] -= factor * b[col];
                }
            }
        }
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in (row + 1)..n {
                acc -= a[row][k] * x[k];
            }
            x[row] = acc / a[row][row];
        }
        for v in &mut x {
            if !v.is_finite() {
                return None;
            }
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let z: f64 = x.iter().sum();
        if z <= 0.0 {
            return None;
        }
        Some(x.iter().map(|v| v / z).collect())
    }

    /// Log of the transition rate, computed without the overflow clamp —
    /// valid for the fallback's log-space arithmetic only.
    fn log_rate(&self, from: usize, to: usize) -> f64 {
        self.tau.ln() + 0.5 * self.beta * (self.graph.energy(from) - self.graph.energy(to))
    }

    /// Spanning-tree stationary construction for reversible chains:
    /// `log π_v − log π_u = log q(u→v) − log q(v→u)` along tree edges,
    /// with every non-tree edge checked for consistency (Kolmogorov
    /// criterion).
    fn stationary_reversible_log(&self) -> Vec<f64> {
        let n = self.graph.len();
        let mut log_w = vec![f64::NAN; n];
        log_w[0] = 0.0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for &v in self.graph.neighbors(u) {
                let via_u = log_w[u] + self.log_rate(u, v) - self.log_rate(v, u);
                if log_w[v].is_nan() {
                    log_w[v] = via_u;
                    queue.push_back(v);
                } else {
                    let scale = 1.0 + log_w[v].abs().max(via_u.abs());
                    assert!(
                        (log_w[v] - via_u).abs() < 1e-6 * scale,
                        "Kolmogorov criterion violated on edge {u}–{v}: chain not reversible"
                    );
                }
            }
        }
        let max_lw = log_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = log_w.iter().map(|lw| (lw - max_lw).exp()).collect();
        let z: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / z).collect()
    }

    /// Simulates the chain from `start` for `t_end` time units.
    ///
    /// Event-driven: dwell time at `f` is exponential with rate
    /// `Σ_{f'} q_{f→f'}`; the jump target is chosen proportionally to the
    /// rates.
    pub fn simulate<R: Rng + ?Sized>(&self, start: usize, t_end: f64, rng: &mut R) -> Trajectory {
        assert!(start < self.graph.len(), "start state out of range");
        let mut t = 0.0;
        let mut state = start;
        let mut times = vec![0.0];
        let mut states = vec![start];
        loop {
            let nbrs = self.graph.neighbors(state);
            let rates: Vec<f64> = nbrs.iter().map(|&j| self.rate(state, j)).collect();
            let total: f64 = rates.iter().sum();
            if total <= 0.0 {
                break; // absorbing (cannot happen on a connected graph)
            }
            // Exponential dwell via inverse transform.
            let dwell = -rng.gen::<f64>().max(1e-300).ln() / total;
            t += dwell;
            if t >= t_end {
                break;
            }
            let mut x = rng.gen::<f64>() * total;
            let mut chosen = nbrs[nbrs.len() - 1];
            for (k, &j) in nbrs.iter().enumerate() {
                if x < rates[k] {
                    chosen = j;
                    break;
                }
                x -= rates[k];
            }
            state = chosen;
            times.push(t);
            states.push(state);
        }
        Trajectory {
            times,
            states,
            t_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixing::total_variation;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_chain(beta: f64) -> Ctmc {
        // A 4-cycle with distinct energies.
        let g = StateGraph::new(
            vec![1.0, 2.0, 3.0, 2.5],
            vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![2, 0]],
        )
        .unwrap();
        Ctmc::new(g, beta, 1.0)
    }

    #[test]
    fn detailed_balance_holds() {
        let c = small_chain(2.0);
        assert!(c.detailed_balance_residual() < 1e-14);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let c = small_chain(1.5);
        for row in c.generator() {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn exact_stationary_matches_gibbs() {
        for beta in [0.0, 0.7, 3.0] {
            let c = small_chain(beta);
            let pi = c.stationary_exact();
            let target = c.target();
            assert!(
                total_variation(&pi, &target) < 1e-9,
                "beta {beta}: tv {}",
                total_variation(&pi, &target)
            );
        }
    }

    #[test]
    fn simulation_converges_to_target() {
        let c = small_chain(1.0);
        let mut rng = StdRng::seed_from_u64(2024);
        let traj = c.simulate(2, 200_000.0, &mut rng);
        let occ = traj.occupancy(c.graph().len());
        let tv = total_variation(&occ, &c.target());
        assert!(tv < 0.02, "tv {tv}");
    }

    #[test]
    fn rates_respect_energy_differences() {
        let c = small_chain(2.0);
        // Downhill rate exceeds uphill rate.
        assert!(c.rate(1, 0) > c.rate(0, 1));
        // Non-adjacent pairs have zero rate.
        assert_eq!(c.rate(0, 2), 0.0);
    }

    #[test]
    fn extreme_beta_does_not_overflow() {
        let c = small_chain(1e6);
        assert!(c.rate(2, 1).is_finite());
        assert!(c.rate(1, 2).is_finite());
        assert!(c.rate(1, 2) >= 0.0);
    }

    #[test]
    fn trajectory_state_at_lookup() {
        let traj = Trajectory {
            times: vec![0.0, 1.0, 3.0],
            states: vec![0, 2, 1],
            t_end: 5.0,
        };
        assert_eq!(traj.state_at(0.0), 0);
        assert_eq!(traj.state_at(0.5), 0);
        assert_eq!(traj.state_at(1.0), 2);
        assert_eq!(traj.state_at(2.9), 2);
        assert_eq!(traj.state_at(4.9), 1);
    }

    #[test]
    fn occupancy_sums_to_one() {
        let c = small_chain(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let occ = c.simulate(0, 500.0, &mut rng).occupancy(4);
        assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
