//! Theorem 1: the perturbed assignment-hopping chain.
//!
//! When the algorithm only observes noisy objective values, the paper
//! models the perturbed `Φ_f` as quantized: it takes value
//! `Φ_f + j·Δ_f/n_f` with probability `η_{j,f}`, `j ∈ {−n_f, …, n_f}`.
//! Theorem 1 shows the perturbed chain's stationary law is
//!
//! ```text
//! p̄_f ∝ δ_f · exp(−βΦ_f),   δ_f = Σ_j η_{j,f} · exp(β·jΔ_f/n_f)   (Eq. 11)
//! ```
//!
//! with optimality gaps (Eqs. 12/13)
//!
//! ```text
//! 0 ≤ Φavg − Φmin ≤ log|F|/β
//! 0 ≤ Φ̄avg − Φmin ≤ log|F|/β + Δmax .
//! ```

use crate::{expected_energy, gap_bound, gibbs, StateGraph};
use rand::Rng;

/// Per-state quantized noise: bound `Δ_f`, levels `n_f`, probabilities
/// `η_{j,f}` over `j = −n..=n`.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSpec {
    delta: f64,
    levels: i32,
    probs: Vec<f64>,
}

impl NoiseSpec {
    /// Creates a noise spec.
    ///
    /// # Panics
    ///
    /// Panics if `delta < 0`, `levels < 1`, `probs` has length other than
    /// `2·levels+1`, or the probabilities are negative / do not sum to 1.
    pub fn new(delta: f64, levels: i32, probs: Vec<f64>) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        assert!(levels >= 1, "need at least one level");
        assert_eq!(probs.len(), (2 * levels + 1) as usize, "probs cover -n..=n");
        assert!(probs.iter().all(|p| *p >= 0.0), "negative probability");
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "probabilities must sum to 1");
        Self {
            delta,
            levels,
            probs,
        }
    }

    /// Uniform η over the quantization levels.
    pub fn uniform(delta: f64, levels: i32) -> Self {
        let m = (2 * levels + 1) as usize;
        Self::new(delta, levels, vec![1.0 / m as f64; m])
    }

    /// No noise at all (`Δ = 0`).
    pub fn noiseless() -> Self {
        Self::uniform(0.0, 1)
    }

    /// Error bound `Δ_f`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// `δ_f(β) = Σ_j η_j · exp(β·jΔ/n)` — the distortion factor of Eq. (11).
    ///
    /// May overflow to `∞` for very large `β·Δ`; prefer
    /// [`log_delta_factor`](Self::log_delta_factor) in that regime.
    pub fn delta_factor(&self, beta: f64) -> f64 {
        self.log_delta_factor(beta).exp()
    }

    /// `log δ_f(β)`, computed stably (log-sum-exp with max shift), so very
    /// large `β·Δ` products stay finite.
    pub fn log_delta_factor(&self, beta: f64) -> f64 {
        let terms: Vec<(f64, f64)> = (-self.levels..=self.levels)
            .filter_map(|j| {
                let p = self.probs[(j + self.levels) as usize];
                if p > 0.0 {
                    let offset = f64::from(j) * self.delta / f64::from(self.levels);
                    Some((p.ln(), beta * offset))
                } else {
                    None
                }
            })
            .collect();
        let max_e = terms
            .iter()
            .map(|(lp, e)| lp + e)
            .fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = terms.iter().map(|(lp, e)| (lp + e - max_e).exp()).sum();
        max_e + sum.ln()
    }

    /// Samples a perturbation offset `j·Δ/n` with probability `η_j` —
    /// what a noisy objective measurement adds to the true `Φ_f`.
    pub fn sample_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut x = rng.gen::<f64>();
        for j in -self.levels..=self.levels {
            let p = self.probs[(j + self.levels) as usize];
            if x < p {
                return f64::from(j) * self.delta / f64::from(self.levels);
            }
            x -= p;
        }
        self.delta // numerical fallback: the top level
    }
}

/// The perturbed stationary distribution `p̄` of Eq. (11), computed in
/// log space so huge `β` and `Δ` values cannot overflow.
///
/// # Panics
///
/// Panics if `noise.len() != graph.len()`.
pub fn perturbed_stationary(graph: &StateGraph, beta: f64, noise: &[NoiseSpec]) -> Vec<f64> {
    assert_eq!(noise.len(), graph.len(), "one noise spec per state");
    let log_weights: Vec<f64> = graph
        .energies()
        .iter()
        .zip(noise)
        .map(|(phi, n)| -beta * phi + n.log_delta_factor(beta))
        .collect();
    let max_lw = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = log_weights.iter().map(|lw| (lw - max_lw).exp()).collect();
    let z: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / z).collect()
}

/// The perturbed-chain optimality-gap bound of Eq. (13):
/// `log|F|/β + Δmax`.
pub fn perturbed_gap_bound(num_states: usize, beta: f64, noise: &[NoiseSpec]) -> f64 {
    let delta_max = noise.iter().map(NoiseSpec::delta).fold(0.0f64, f64::max);
    gap_bound(num_states, beta) + delta_max
}

/// Measured optimality gaps `(Φavg − Φmin, Φ̄avg − Φmin)` for a graph under
/// clean and perturbed stationary laws — the quantities bounded by
/// Eqs. (12) and (13).
pub fn measured_gaps(graph: &StateGraph, beta: f64, noise: &[NoiseSpec]) -> (f64, f64) {
    let (_, phi_min) = graph.min_energy();
    let clean = gibbs(graph.energies(), beta);
    let perturbed = perturbed_stationary(graph, beta, noise);
    (
        expected_energy(&clean, graph.energies()) - phi_min,
        expected_energy(&perturbed, graph.energies()) - phi_min,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> StateGraph {
        StateGraph::complete(vec![1.0, 1.8, 2.6, 3.1, 1.2])
    }

    #[test]
    fn noiseless_perturbation_is_gibbs() {
        let g = graph();
        let noise = vec![NoiseSpec::noiseless(); g.len()];
        let p = perturbed_stationary(&g, 2.0, &noise);
        let target = gibbs(g.energies(), 2.0);
        for (a, b) in p.iter().zip(&target) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn theorem1_gap_bounds_hold() {
        let g = graph();
        for beta in [0.5, 2.0, 8.0] {
            for delta in [0.0, 0.3, 1.0] {
                let noise = vec![NoiseSpec::uniform(delta, 3); g.len()];
                let (clean_gap, perturbed_gap) = measured_gaps(&g, beta, &noise);
                assert!(clean_gap >= -1e-12);
                assert!(perturbed_gap >= -1e-12);
                assert!(
                    clean_gap <= gap_bound(g.len(), beta) + 1e-9,
                    "eq 12 violated: {clean_gap}"
                );
                assert!(
                    perturbed_gap <= perturbed_gap_bound(g.len(), beta, &noise) + 1e-9,
                    "eq 13 violated: beta {beta} delta {delta}: {perturbed_gap}"
                );
            }
        }
    }

    #[test]
    fn gap_shrinks_as_beta_grows() {
        let g = graph();
        let noise = vec![NoiseSpec::uniform(0.2, 2); g.len()];
        let (g1, p1) = measured_gaps(&g, 1.0, &noise);
        let (g2, p2) = measured_gaps(&g, 10.0, &noise);
        assert!(g2 < g1);
        assert!(p2 < p1 + 1e-12);
    }

    #[test]
    fn biased_noise_distorts_distribution() {
        let g = StateGraph::complete(vec![1.0, 1.1]);
        // State 0's objective is always over-reported by Δ (mass on +n),
        // making it look worse; state 1 is clean.
        let noise = vec![
            NoiseSpec::new(0.5, 1, vec![0.0, 0.0, 1.0]),
            NoiseSpec::noiseless(),
        ];
        let beta = 5.0;
        let clean = gibbs(g.energies(), beta);
        let perturbed = perturbed_stationary(&g, beta, &noise);
        // δ_0 > 1 actually *increases* p̄_0 relative to clean per Eq. (11):
        // the chain dwells longer in states whose objective fluctuates
        // upward (they are harder to leave when over-reported... the exact
        // direction follows Eq. (11)).
        assert!(perturbed[0] > clean[0]);
        let z: f64 = perturbed.iter().sum();
        assert!((z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_factor_properties() {
        let n = NoiseSpec::uniform(1.0, 2);
        assert!((n.delta_factor(0.0) - 1.0).abs() < 1e-12);
        // Convexity of exp: symmetric noise inflates δ above 1.
        assert!(n.delta_factor(3.0) > 1.0);
    }

    #[test]
    fn log_delta_factor_matches_direct_and_survives_huge_beta() {
        let n = NoiseSpec::uniform(0.7, 3);
        for beta in [0.0, 1.0, 10.0] {
            let direct: f64 = (-3..=3i32)
                .map(|j| (1.0 / 7.0) * (beta * f64::from(j) * 0.7 / 3.0).exp())
                .sum();
            assert!((n.log_delta_factor(beta) - direct.ln()).abs() < 1e-12);
        }
        // exp(400·10) overflows f64; the log form must stay finite and the
        // perturbed distribution NaN-free.
        let big = NoiseSpec::uniform(10.0, 3);
        assert!(big.log_delta_factor(400.0).is_finite());
        let g = StateGraph::complete(vec![100.0, 500.0, 1200.0]);
        let p = perturbed_stationary(&g, 400.0, &vec![big; 3]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one noise spec per state")]
    fn wrong_noise_len_panics() {
        let g = graph();
        let _ = perturbed_stationary(&g, 1.0, &[NoiseSpec::noiseless()]);
    }

    #[test]
    fn sampled_offsets_match_quantization() {
        use rand::{rngs::StdRng, SeedableRng};
        let n = NoiseSpec::uniform(1.0, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let mut mean = 0.0;
        for _ in 0..4000 {
            let o = n.sample_offset(&mut rng);
            assert!(o.abs() <= 1.0 + 1e-12);
            // Offsets land on the grid {-1, -0.5, 0, 0.5, 1}.
            let grid = (o * 2.0).round() / 2.0;
            assert!((o - grid).abs() < 1e-12, "off-grid offset {o}");
            mean += o;
        }
        mean /= 4000.0;
        assert!(
            mean.abs() < 0.05,
            "symmetric noise should average ~0: {mean}"
        );
    }
}
