//! Markov approximation framework (Chen et al., IEEE Trans. Inf. Theory
//! 2013 — reference 7 of the paper), independent of the conferencing
//! domain.
//!
//! The framework approximates a combinatorial minimization
//! `min_{f∈F} Φ_f` by the log-sum-exp-smoothed problem **UAP-β**, whose
//! optimum is the Gibbs distribution `p*_f ∝ exp(−βΦ_f)` (Eq. 9 of the
//! paper), and realizes that distribution as the stationary law of a
//! continuous-time Markov chain over `F` whose transitions connect
//! "adjacent" solutions:
//!
//! * [`StateGraph`] — an explicit, enumerable solution space with
//!   energies `Φ_f` and a symmetric adjacency relation;
//! * [`gibbs`] — the target distribution, its expected energy, entropy,
//!   and the optimality-gap bound `log|F|/β` (Eqs. 10/12);
//! * [`Ctmc`] — the hopping chain with rates
//!   `q_{f→f'} = τ·exp(½β(Φ_f − Φ_f'))`, exact stationary solution,
//!   detailed-balance verification, and event-driven simulation;
//! * [`perturb`] — Theorem 1's quantized measurement-noise model: the
//!   perturbed stationary distribution (Eq. 11) and the degraded gap
//!   bound (Eq. 13);
//! * [`mixing`] — total-variation distance and mixing-time estimation;
//! * [`kernel`] — the *implemented* hop kernel's exact stationary law
//!   (`∝ Z_f·exp(−βΦ_f)`) and its distortion from the Gibbs target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod gibbs;
mod graph;
pub mod kernel;
pub mod mixing;
pub mod perturb;

pub use chain::{Ctmc, Trajectory};
pub use gibbs::{entropy, expected_energy, gap_bound, gibbs, log_sum_exp_optimum};
pub use graph::{GraphError, StateGraph};
pub use kernel::{hop_kernel_stationary, kernel_distortion};
