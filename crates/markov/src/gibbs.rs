//! The log-sum-exp approximation and its Gibbs target distribution.
//!
//! Solving the KKT conditions of problem UAP-β gives the optimal
//! time-sharing weights `p*_f = exp(−βΦ_f) / Σ_{f'} exp(−βΦ_{f'})`
//! (Eq. 9), with the approximation sandwich (Eq. 10):
//!
//! ```text
//! min Φ_f − log|F|/β  ≤  Φ̂  ≤  min Φ_f .
//! ```

/// The Gibbs distribution `p*_f ∝ exp(−βΦ_f)`, computed stably
/// (energies are shifted by their minimum before exponentiation).
///
/// # Panics
///
/// Panics if `energies` is empty, any energy is non-finite, or `β < 0`.
pub fn gibbs(energies: &[f64], beta: f64) -> Vec<f64> {
    assert!(!energies.is_empty(), "need at least one state");
    assert!(beta >= 0.0, "beta must be non-negative");
    assert!(
        energies.iter().all(|e| e.is_finite()),
        "energies must be finite"
    );
    let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
    let weights: Vec<f64> = energies.iter().map(|e| (-beta * (e - min)).exp()).collect();
    let z: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / z).collect()
}

/// Expected energy `Σ_f p_f Φ_f` under a distribution.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn expected_energy(probs: &[f64], energies: &[f64]) -> f64 {
    assert_eq!(probs.len(), energies.len(), "length mismatch");
    probs.iter().zip(energies).map(|(p, e)| p * e).sum()
}

/// Shannon entropy `−Σ p log p` (natural log) of a distribution.
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|p| **p > 0.0)
        .map(|p| -p * p.ln())
        .sum()
}

/// The optimality-gap bound of Eqs. (10)/(12): `log|F| / β` (natural log).
/// With `|F| ≤ L^(U+θ_sum)` this specializes to the paper's
/// `(U+θ_sum)·log L / β`.
///
/// # Panics
///
/// Panics if `β ≤ 0` or `num_states == 0`.
pub fn gap_bound(num_states: usize, beta: f64) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    assert!(num_states > 0, "need at least one state");
    (num_states as f64).ln() / beta
}

/// The optimal objective `Φ̂` of the smoothed problem UAP-β:
/// `Φ̂ = −(1/β)·log Σ_f exp(−βΦ_f)` (computed stably).
///
/// # Panics
///
/// Panics if `energies` is empty or `β ≤ 0`.
pub fn log_sum_exp_optimum(energies: &[f64], beta: f64) -> f64 {
    assert!(!energies.is_empty(), "need at least one state");
    assert!(beta > 0.0, "beta must be positive");
    let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
    let sum: f64 = energies.iter().map(|e| (-beta * (e - min)).exp()).sum();
    min - sum.ln() / beta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gibbs_sums_to_one_and_prefers_low_energy() {
        let p = gibbs(&[1.0, 2.0, 3.0], 2.0);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn beta_zero_is_uniform() {
        let p = gibbs(&[1.0, 5.0, 100.0], 0.0);
        for x in &p {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn large_beta_concentrates_on_minimum() {
        let p = gibbs(&[1.0, 2.0, 3.0], 100.0);
        assert!(p[0] > 0.999999);
    }

    #[test]
    fn gibbs_is_stable_for_huge_energies() {
        // Naive exp(-β·1e6) underflows; the shifted computation must not.
        let p = gibbs(&[1e6, 1e6 + 1.0], 5.0);
        assert!(p[0] > 0.99);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn expected_energy_interpolates() {
        let e = [10.0, 20.0];
        let avg = expected_energy(&gibbs(&e, 0.0), &e);
        assert!((avg - 15.0).abs() < 1e-12);
    }

    #[test]
    fn gap_bound_matches_eq_10() {
        // For every β the Gibbs expected energy is within log|F|/β of the min.
        let energies = [3.0, 5.0, 9.0, 4.0, 3.5];
        for beta in [0.5, 1.0, 4.0, 20.0] {
            let p = gibbs(&energies, beta);
            let gap = expected_energy(&p, &energies) - 3.0;
            assert!(gap >= -1e-12);
            assert!(
                gap <= gap_bound(energies.len(), beta) + 1e-12,
                "beta {beta}: gap {gap} exceeds bound {}",
                gap_bound(energies.len(), beta)
            );
        }
    }

    #[test]
    fn log_sum_exp_optimum_sandwich() {
        // Eq. (10): Φmin − log|F|/β ≤ Φ̂ ≤ Φmin.
        let energies = [3.0, 5.0, 9.0, 4.0];
        for beta in [0.1, 1.0, 10.0] {
            let opt = log_sum_exp_optimum(&energies, beta);
            assert!(opt <= 3.0 + 1e-12);
            assert!(opt >= 3.0 - gap_bound(energies.len(), beta) - 1e-12);
        }
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let p = [0.25; 4];
        assert!((entropy(&p) - (4.0f64).ln()).abs() < 1e-12);
        // Degenerate distribution has zero entropy.
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "beta must be non-negative")]
    fn negative_beta_panics() {
        let _ = gibbs(&[1.0], -1.0);
    }
}
