//! Explicit solution-space graphs: states, energies, adjacency.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Errors building a [`StateGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Energy and adjacency lengths disagree, or the graph is empty.
    Shape(String),
    /// An adjacency entry points outside the state set or to itself.
    BadEdge {
        /// Source state index.
        from: usize,
        /// Offending neighbor index.
        to: usize,
    },
    /// The adjacency relation is not symmetric.
    Asymmetric {
        /// Edge present from this state…
        from: usize,
        /// …to this one, but not back.
        to: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Shape(msg) => write!(f, "malformed state graph: {msg}"),
            GraphError::BadEdge { from, to } => {
                write!(f, "invalid edge {from} → {to}")
            }
            GraphError::Asymmetric { from, to } => {
                write!(f, "adjacency not symmetric: {from} → {to} has no reverse")
            }
        }
    }
}

impl Error for GraphError {}

/// An enumerated solution space `F` with energies `Φ_f` and a symmetric
/// neighbor relation (the single-decision-change links of the paper's
/// Markov chain, Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct StateGraph {
    energies: Vec<f64>,
    adjacency: Vec<Vec<usize>>,
}

impl StateGraph {
    /// Builds and validates a state graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if shapes disagree, edges point out of
    /// range or to themselves, or adjacency is asymmetric.
    pub fn new(energies: Vec<f64>, adjacency: Vec<Vec<usize>>) -> Result<Self, GraphError> {
        if energies.is_empty() {
            return Err(GraphError::Shape("no states".into()));
        }
        if energies.len() != adjacency.len() {
            return Err(GraphError::Shape(format!(
                "{} energies but {} adjacency rows",
                energies.len(),
                adjacency.len()
            )));
        }
        if energies.iter().any(|e| !e.is_finite()) {
            return Err(GraphError::Shape("energies must be finite".into()));
        }
        let n = energies.len();
        for (i, nbrs) in adjacency.iter().enumerate() {
            for &j in nbrs {
                if j >= n || j == i {
                    return Err(GraphError::BadEdge { from: i, to: j });
                }
                if !adjacency[j].contains(&i) {
                    return Err(GraphError::Asymmetric { from: i, to: j });
                }
            }
        }
        Ok(Self {
            energies,
            adjacency,
        })
    }

    /// A complete graph over the given energies (every pair adjacent) —
    /// handy in tests and for tiny spaces.
    pub fn complete(energies: Vec<f64>) -> Self {
        let n = energies.len();
        let adjacency = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        Self::new(energies, adjacency).expect("complete graph is valid")
    }

    /// Number of states `|F|`.
    pub fn len(&self) -> usize {
        self.energies.len()
    }

    /// Whether the graph has no states (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.energies.is_empty()
    }

    /// `Φ_f` of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn energy(&self, i: usize) -> f64 {
        self.energies[i]
    }

    /// All energies.
    pub fn energies(&self) -> &[f64] {
        &self.energies
    }

    /// Neighbors of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Index and energy of a minimum-energy state.
    pub fn min_energy(&self) -> (usize, f64) {
        let mut best = 0;
        for i in 1..self.energies.len() {
            if self.energies[i] < self.energies[best] {
                best = i;
            }
        }
        (best, self.energies[best])
    }

    /// Whether every state can reach every other (irreducibility of the
    /// induced chain — the paper's first sufficient condition).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = queue.pop_front() {
            for &j in &self.adjacency[i] {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    queue.push_back(j);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_is_connected_and_symmetric() {
        let g = StateGraph::complete(vec![1.0, 2.0, 3.0]);
        assert_eq!(g.len(), 3);
        assert!(g.is_connected());
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.min_energy(), (0, 1.0));
    }

    #[test]
    fn rejects_asymmetric_adjacency() {
        let err = StateGraph::new(vec![0.0, 1.0], vec![vec![1], vec![]]);
        assert_eq!(err, Err(GraphError::Asymmetric { from: 0, to: 1 }));
    }

    #[test]
    fn rejects_self_loops_and_range() {
        assert!(matches!(
            StateGraph::new(vec![0.0], vec![vec![0]]),
            Err(GraphError::BadEdge { .. })
        ));
        assert!(matches!(
            StateGraph::new(vec![0.0, 1.0], vec![vec![5], vec![]]),
            Err(GraphError::BadEdge { .. })
        ));
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(StateGraph::new(vec![], vec![]).is_err());
        assert!(StateGraph::new(vec![f64::NAN], vec![vec![]]).is_err());
    }

    #[test]
    fn detects_disconnected_graph() {
        // Two components: {0,1} and {2,3}.
        let g = StateGraph::new(
            vec![0.0, 1.0, 2.0, 3.0],
            vec![vec![1], vec![0], vec![3], vec![2]],
        )
        .unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn min_energy_breaks_ties_to_first() {
        let g = StateGraph::complete(vec![2.0, 1.0, 1.0]);
        assert_eq!(g.min_energy(), (1, 1.0));
    }
}
