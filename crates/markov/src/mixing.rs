//! Convergence diagnostics: total variation distance and mixing time.

use crate::Ctmc;

/// Total variation distance `½·Σ|p_i − q_i|` between two distributions.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Empirical distribution of a sample of state indices.
///
/// # Panics
///
/// Panics if `samples` is empty or contains an index `≥ num_states`.
pub fn empirical_distribution(samples: &[usize], num_states: usize) -> Vec<f64> {
    assert!(!samples.is_empty(), "need at least one sample");
    let mut counts = vec![0.0; num_states];
    for &s in samples {
        assert!(s < num_states, "sample {s} out of range");
        counts[s] += 1.0;
    }
    let n = samples.len() as f64;
    counts.iter().map(|c| c / n).collect()
}

/// Step budget for the uniformized transient analysis; stiff chains (huge
/// rate spread) exceeding it return `None` rather than stalling.
const MAX_UNIFORMIZED_STEPS: usize = 2_000_000;

/// Estimates the mixing time of the chain: the earliest time `t` (on a
/// geometric grid) at which the *worst-case-start* distribution of
/// `X_t` is within `eps` total variation of the stationary law.
///
/// Uses uniformized transient analysis: `p(t) = p(0)·exp(Qt)` approximated
/// by repeated multiplication with `P = I + Q/Λ` over `Λ·t` steps. Returns
/// `None` when the chain has not mixed by `t_max` or the analysis exceeds
/// its internal step budget (very stiff chains).
///
/// # Panics
///
/// Panics if `eps` is not in `(0, 1)`.
pub fn mixing_time_estimate(ctmc: &Ctmc, eps: f64, t_max: f64) -> Option<f64> {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    let n = ctmc.graph().len();
    let target = ctmc.stationary_exact();
    let q = ctmc.generator();
    let lambda = q
        .iter()
        .enumerate()
        .map(|(i, row)| -row[i])
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-12)
        * 1.01;

    // Transient distributions from every start state, advanced jointly.
    let mut dists: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut d = vec![0.0; n];
            d[i] = 1.0;
            d
        })
        .collect();

    let step = 1.0 / lambda;
    let mut t = 0.0;
    let mut next_check = step.max(t_max / 1024.0);
    let mut scratch = vec![0.0; n];
    let mut steps = 0usize;
    while t <= t_max {
        steps += 1;
        if steps > MAX_UNIFORMIZED_STEPS {
            return None;
        }
        // One uniformized step for each start distribution.
        for d in &mut dists {
            scratch.copy_from_slice(d);
            for i in 0..n {
                for &j in ctmc.graph().neighbors(i) {
                    let p_ij = q[i][j] / lambda;
                    scratch[j] += d[i] * p_ij;
                    scratch[i] -= d[i] * p_ij;
                }
            }
            d.copy_from_slice(&scratch);
        }
        t += step;
        if t >= next_check {
            let worst = dists
                .iter()
                .map(|d| total_variation(d, &target))
                .fold(0.0f64, f64::max);
            if worst <= eps {
                return Some(t);
            }
            next_check += step.max(t_max / 1024.0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateGraph;

    #[test]
    fn tv_basic_properties() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
        // Symmetry.
        assert_eq!(total_variation(&p, &q), total_variation(&q, &p));
    }

    #[test]
    fn empirical_distribution_counts() {
        let d = empirical_distribution(&[0, 1, 1, 2], 4);
        assert_eq!(d, vec![0.25, 0.5, 0.25, 0.0]);
    }

    #[test]
    fn mixing_time_decreases_with_connectivity() {
        // Complete graph mixes faster than a ring over the same energies.
        let energies = vec![1.0, 2.0, 1.5, 2.5, 1.2, 2.2];
        let ring_adj: Vec<Vec<usize>> = (0..6).map(|i| vec![(i + 5) % 6, (i + 1) % 6]).collect();
        let ring = Ctmc::new(
            StateGraph::new(energies.clone(), ring_adj).unwrap(),
            1.0,
            1.0,
        );
        let complete = Ctmc::new(StateGraph::complete(energies), 1.0, 1.0);
        let t_ring = mixing_time_estimate(&ring, 0.05, 500.0).expect("ring mixes");
        let t_complete = mixing_time_estimate(&complete, 0.05, 500.0).expect("complete mixes");
        assert!(
            t_complete <= t_ring,
            "complete {t_complete} vs ring {t_ring}"
        );
    }

    #[test]
    fn mixing_time_grows_with_beta() {
        // Higher β → deeper wells → slower mixing (the paper's remark
        // after Theorem 1).
        let energies = vec![0.0, 2.0, 0.1, 2.0];
        let adj: Vec<Vec<usize>> = (0..4).map(|i| vec![(i + 3) % 4, (i + 1) % 4]).collect();
        let cold = Ctmc::new(
            StateGraph::new(energies.clone(), adj.clone()).unwrap(),
            0.5,
            1.0,
        );
        let hot = Ctmc::new(StateGraph::new(energies, adj).unwrap(), 4.0, 1.0);
        let t_cold = mixing_time_estimate(&cold, 0.05, 2_000.0).expect("cold mixes");
        let t_hot = mixing_time_estimate(&hot, 0.05, 2_000.0).expect("hot mixes");
        assert!(t_cold < t_hot, "beta 0.5 {t_cold} vs beta 4 {t_hot}");
    }

    #[test]
    fn mixing_time_none_when_horizon_too_short() {
        // Moderate rates, but a horizon far below the relaxation time.
        let energies = vec![0.0, 1.0, 0.0, 1.0];
        let adj: Vec<Vec<usize>> = (0..4).map(|i| vec![(i + 3) % 4, (i + 1) % 4]).collect();
        let c = Ctmc::new(StateGraph::new(energies, adj).unwrap(), 2.0, 1.0);
        assert_eq!(mixing_time_estimate(&c, 0.001, 0.01), None);
    }
}
