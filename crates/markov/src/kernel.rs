//! The *implemented* hop kernel vs. the idealized CTMC.
//!
//! Alg. 1's HOP step is a discrete-time jump chain: in state `f` it picks
//! the next state among `{f} ∪ N(f)` with probability proportional to
//! `w(f→g) = exp(½β(Φ_f − Φ_g))` (and weight 1 for staying). Because the
//! normalization `Z_f = 1 + Σ_g w(f→g)` varies across states, the jump
//! chain's stationary law is *not* exactly the Gibbs target of the
//! idealized CTMC but the `Z_f`-distorted
//!
//! ```text
//! π_kernel(f) ∝ Z_f · exp(−βΦ_f) ,
//! ```
//!
//! which still satisfies detailed balance and converges to the Gibbs law
//! as neighborhoods homogenize (regular graphs at low β) or as β grows
//! (both concentrate on the optimum). This module computes the kernel
//! stationary exactly and quantifies the distortion.

use crate::{gibbs, mixing::total_variation, StateGraph};

/// Exponent clamp consistent with the engine implementations.
const MAX_EXPONENT: f64 = 600.0;

/// The exact stationary distribution of the hop kernel
/// `π_kernel(f) ∝ Z_f·exp(−βΦ_f)`, computed stably in log space.
///
/// # Panics
///
/// Panics if `β < 0`.
pub fn hop_kernel_stationary(graph: &StateGraph, beta: f64) -> Vec<f64> {
    assert!(beta >= 0.0, "beta must be non-negative");
    let min_e = graph.min_energy().1;
    let log_weights: Vec<f64> = (0..graph.len())
        .map(|f| {
            let z_f: f64 = 1.0
                + graph
                    .neighbors(f)
                    .iter()
                    .map(|&g| {
                        (0.5 * beta * (graph.energy(f) - graph.energy(g)))
                            .clamp(-MAX_EXPONENT, MAX_EXPONENT)
                            .exp()
                    })
                    .sum::<f64>();
            z_f.ln() - beta * (graph.energy(f) - min_e)
        })
        .collect();
    let max_lw = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = log_weights.iter().map(|lw| (lw - max_lw).exp()).collect();
    let z: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / z).collect()
}

/// Total-variation distance between the hop kernel's stationary law and
/// the Gibbs target — the price of the engineering simplification.
pub fn kernel_distortion(graph: &StateGraph, beta: f64) -> f64 {
    total_variation(
        &hop_kernel_stationary(graph, beta),
        &gibbs(graph.energies(), beta),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> StateGraph {
        // A 3-cube with energies spread over [0, 4].
        let energies = vec![0.0, 1.0, 2.0, 1.5, 0.5, 2.5, 3.0, 4.0];
        let adjacency = (0..8usize)
            .map(|i| (0..3).map(|b| i ^ (1 << b)).collect())
            .collect();
        StateGraph::new(energies, adjacency).unwrap()
    }

    #[test]
    fn kernel_stationary_is_a_distribution() {
        let g = cube();
        for beta in [0.0, 0.5, 5.0, 500.0] {
            let p = hop_kernel_stationary(&g, beta);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|x| *x >= 0.0 && x.is_finite()));
        }
    }

    #[test]
    fn beta_zero_on_regular_graph_is_uniform() {
        // All Z_f equal on a regular graph at β = 0 → uniform stationary.
        let g = cube();
        let p = hop_kernel_stationary(&g, 0.0);
        for x in &p {
            assert!((x - 0.125).abs() < 1e-12);
        }
        assert!(kernel_distortion(&g, 0.0) < 1e-12);
    }

    #[test]
    fn distortion_vanishes_at_high_beta() {
        // Both laws concentrate on the optimum.
        let g = cube();
        let low = kernel_distortion(&g, 0.5);
        let high = kernel_distortion(&g, 50.0);
        // The residual scales like exp(−β·Δmin/2) from the Z_f of the
        // optimum's neighbors — ~4e-6 here.
        assert!(high < 1e-4, "high-β distortion {high}");
        assert!(high <= low + 1e-12);
    }

    #[test]
    fn kernel_satisfies_its_own_detailed_balance() {
        // π(f)·w(f→g)/Z_f symmetric in (f, g).
        let g = cube();
        let beta = 1.3;
        let p = hop_kernel_stationary(&g, beta);
        let z = |f: usize| -> f64 {
            1.0 + g
                .neighbors(f)
                .iter()
                .map(|&h| (0.5 * beta * (g.energy(f) - g.energy(h))).exp())
                .sum::<f64>()
        };
        for f in 0..g.len() {
            for &h in g.neighbors(f) {
                let flow_fh = p[f] * (0.5 * beta * (g.energy(f) - g.energy(h))).exp() / z(f);
                let flow_hf = p[h] * (0.5 * beta * (g.energy(h) - g.energy(f))).exp() / z(h);
                assert!(
                    (flow_fh - flow_hf).abs() < 1e-12,
                    "detailed balance broken on {f}–{h}"
                );
            }
        }
    }

    #[test]
    fn distortion_bounded_by_degree_spread() {
        // An irregular graph (star) has maximal Z_f spread; the distortion
        // is visible but bounded well below total variation 1.
        let energies = vec![1.0, 1.0, 1.0, 1.0, 1.0];
        let adjacency = vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]];
        let g = StateGraph::new(energies, adjacency).unwrap();
        let d = kernel_distortion(&g, 0.0);
        // Equal energies, unequal degrees: kernel favors the hub.
        assert!(d > 0.05 && d < 0.5, "distortion {d}");
    }
}
