//! Migration overhead accounting.
//!
//! When a user migrates to a new agent mid-conference, the prototype
//! keeps *both* assignments live for a short interval — "less than 30 ms
//! on average according to the user-to-agent distances" — so the other
//! participants never see a frozen frame. The price is redundant
//! transmission: "around 13.2 Kb corresponding to 240p representation"
//! per migration, negligible against the traffic reduction migration
//! brings. Transcoding-task migrations use segmentation-based switching
//! (finish the current segment at the old agent, start the next at the
//! new one), costing no duplicate stream but a bounded switch-over time.

use serde::{Deserialize, Serialize};
use vc_core::{Decision, SystemState};
use vc_model::AgentId;

/// Overhead model for live migrations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    /// Extra dual-feed margin beyond the new agent's propagation delay (ms).
    pub handshake_ms: f64,
    /// Segment length for segmentation-based transcoder switching (ms).
    pub segment_ms: f64,
}

impl Default for MigrationModel {
    fn default() -> Self {
        Self {
            handshake_ms: 5.0,
            segment_ms: 1000.0,
        }
    }
}

/// Accumulated migration overhead over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Number of user migrations.
    pub user_migrations: usize,
    /// Number of transcoding-task migrations.
    pub task_migrations: usize,
    /// Total redundant dual-feed traffic (kilobits).
    pub redundant_kb: f64,
    /// Total dual-feed time across migrations (ms).
    pub overlap_ms: f64,
}

impl MigrationModel {
    /// The dual-feed overlap a user migration needs: the time to establish
    /// the stream towards the new agent (its one-way user delay) plus the
    /// handshake margin.
    pub fn overlap_ms(&self, state: &SystemState, user: vc_model::UserId, to: AgentId) -> f64 {
        state.problem().instance().h_ms(to, user) + self.handshake_ms
    }

    /// Accounts one applied migration into `stats`. `decision` is the
    /// migration that was *committed* (the user's upstream is duplicated
    /// for the overlap window; task switches are segment-aligned).
    pub fn record(&self, state: &SystemState, decision: Decision, stats: &mut MigrationStats) {
        match decision {
            Decision::User(u, to) => {
                let overlap = self.overlap_ms(state, u, to);
                let upstream_mbps = state
                    .problem()
                    .instance()
                    .kappa(state.problem().instance().user(u).upstream());
                stats.user_migrations += 1;
                stats.overlap_ms += overlap;
                // Mbps × ms = kilobits.
                stats.redundant_kb += upstream_mbps * overlap;
            }
            Decision::Task(_, _) => {
                stats.task_migrations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vc_core::{Assignment, SystemState, UapProblem};
    use vc_cost::CostModel;
    use vc_model::{AgentSpec, InstanceBuilder, ReprLadder, UserId};

    fn state() -> SystemState {
        let ladder = ReprLadder::prototype_two();
        let r240 = ladder.by_name("240p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        b.add_agent(AgentSpec::builder("b").build());
        let s = b.add_session();
        b.add_user(s, r240, r240);
        b.add_user(s, r240, r240);
        b.symmetric_delays(|_, _| 50.0, |_, _| 25.0);
        let p = Arc::new(UapProblem::new(
            b.build().unwrap(),
            CostModel::paper_default(),
        ));
        let asg = Assignment::all_to_agent(&p, vc_model::AgentId::new(0));
        SystemState::new(p, asg)
    }

    #[test]
    fn user_migration_costs_match_paper_magnitude() {
        // 240p (0.44 Mbps) duplicated for ~30 ms ≈ 13.2 Kb — the paper's
        // reported migration cost.
        let st = state();
        let model = MigrationModel {
            handshake_ms: 5.0,
            segment_ms: 1000.0,
        };
        let mut stats = MigrationStats::default();
        model.record(
            &st,
            Decision::User(UserId::new(0), vc_model::AgentId::new(1)),
            &mut stats,
        );
        assert_eq!(stats.user_migrations, 1);
        // overlap = 25 (H) + 5 (handshake) = 30 ms; 0.44 Mbps × 30 ms = 13.2 Kb.
        assert!((stats.overlap_ms - 30.0).abs() < 1e-9);
        assert!((stats.redundant_kb - 13.2).abs() < 1e-9);
    }

    #[test]
    fn task_migrations_cost_no_redundant_stream() {
        let st = state();
        let model = MigrationModel::default();
        let mut stats = MigrationStats::default();
        model.record(
            &st,
            Decision::Task(vc_core::TaskId::new(0), vc_model::AgentId::new(1)),
            &mut stats,
        );
        assert_eq!(stats.task_migrations, 1);
        assert_eq!(stats.redundant_kb, 0.0);
    }
}
