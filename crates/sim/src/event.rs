//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vc_model::SessionId;

/// Events driving the conferencing simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A session's WAIT countdown expired; run HOP.
    Wake(SessionId),
    /// A session joins the system.
    Arrive(SessionId),
    /// A session leaves the system.
    Depart(SessionId),
    /// An agent fails (or is drained): evacuate it immediately.
    AgentDown(vc_model::AgentId),
    /// A failed agent recovers and accepts load again.
    AgentUp(vc_model::AgentId),
    /// Sample the reported metrics.
    Sample,
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by insertion order so the
        // simulation is deterministic.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority event queue over simulated time.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute simulated time `time` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn schedule(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, Event::Sample);
        q.schedule(1.0, Event::Wake(SessionId::new(0)));
        q.schedule(2.0, Event::Depart(SessionId::new(1)));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, Event::Arrive(SessionId::new(0)));
        q.schedule(5.0, Event::Arrive(SessionId::new(1)));
        q.schedule(5.0, Event::Arrive(SessionId::new(2)));
        let ids: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrive(s) => s.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, Event::Sample);
        q.schedule(2.0, Event::Sample);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, Event::Sample);
    }
}
