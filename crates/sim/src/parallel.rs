//! Multi-threaded Alg. 1 runtime: one thread per session, real locks.
//!
//! The paper deploys Alg. 1 *distributed*: each session's initiator
//! agent runs its own WAIT/HOP loop, and a FREEZE/UNFREEZE message
//! exchange guarantees that migrations are serialized ("the FREEZE
//! message is passed as an intra-message within the cloud agents that
//! operate in synchronized manner"). This module realizes that
//! deployment shape on threads: every session loops over an exponential
//! countdown (scaled to wall time) and a HOP under a global freeze lock
//! on the shared system state — demonstrating that hops need no global
//! coordination beyond the freeze, exactly as the paper argues.

use parking_lot::Mutex;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_algo::markov::{Alg1Config, Alg1Engine, HopOutcome};
use vc_core::SystemState;
use vc_model::SessionId;

/// Configuration of the threaded runtime.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Alg. 1 parameters (β, mean countdown in *simulated* seconds, noise).
    pub alg1: Alg1Config,
    /// Wall-clock milliseconds per simulated second (e.g. 1.0 compresses
    /// the prototype's 10 s countdowns to 10 ms).
    pub ms_per_sim_second: f64,
    /// Wall-clock run duration.
    pub wall_duration: Duration,
    /// Seed from which per-session RNGs are derived.
    pub seed: u64,
}

/// A hop observed by the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelHop {
    /// Wall-clock time since start.
    pub at: Duration,
    /// The hopping session.
    pub session: SessionId,
    /// What the hop did.
    pub outcome: HopOutcome,
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ParallelReport {
    /// The final (still feasible) system state.
    pub final_state: SystemState,
    /// All hops in wall-clock order.
    pub hops: Vec<ParallelHop>,
}

/// Runs one thread per active session until the wall deadline.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated).
pub fn run_parallel(state: SystemState, config: &ParallelConfig) -> ParallelReport {
    let sessions: Vec<SessionId> = state.active_sessions().collect();
    let shared = Arc::new(Mutex::new(state));
    let hops = Arc::new(Mutex::new(Vec::<ParallelHop>::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let engine = Arc::new(Alg1Engine::new(config.alg1.clone()));

    std::thread::scope(|scope| {
        for (i, &session) in sessions.iter().enumerate() {
            let shared = shared.clone();
            let hops = hops.clone();
            let stop = stop.clone();
            let engine = engine.clone();
            let ms_per_s = config.ms_per_sim_second;
            let seed = config.seed.wrapping_add(i as u64);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                while !stop.load(Ordering::Relaxed) {
                    // WAIT: exponential countdown in scaled wall time.
                    let sim_wait = engine.next_countdown(&mut rng);
                    let wall_ms = sim_wait * ms_per_s;
                    // Sleep in small slices so the stop flag is honored.
                    let mut remaining = wall_ms;
                    while remaining > 0.0 && !stop.load(Ordering::Relaxed) {
                        let slice = remaining.min(5.0);
                        std::thread::sleep(Duration::from_micros((slice * 1000.0) as u64));
                        remaining -= slice;
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // HOP under the global FREEZE lock.
                    let outcome = {
                        let mut guard = shared.lock();
                        engine.hop(&mut guard, session, &mut rng)
                    };
                    hops.lock().push(ParallelHop {
                        at: started.elapsed(),
                        session,
                        outcome,
                    });
                }
            });
        }
        std::thread::sleep(config.wall_duration);
        stop.store(true, Ordering::Relaxed);
    });

    let final_state = Arc::try_unwrap(shared)
        .expect("all workers joined")
        .into_inner();
    let mut hops = Arc::try_unwrap(hops)
        .expect("all workers joined")
        .into_inner();
    hops.sort_by_key(|h| h.at);
    ParallelReport { final_state, hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use vc_algo::nearest::nearest_assignment;
    use vc_core::UapProblem;
    use vc_cost::CostModel;
    use vc_model::{AgentSpec, InstanceBuilder, ReprLadder};

    fn state() -> SystemState {
        let ladder = ReprLadder::standard_four();
        let r360 = ladder.by_name("360p").unwrap().id();
        let r720 = ladder.by_name("720p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        b.add_agent(AgentSpec::builder("b").build());
        b.add_agent(AgentSpec::builder("c").build());
        for _ in 0..4 {
            let s = b.add_session();
            b.add_user(s, r720, r360);
            b.add_user(s, r360, r360);
            b.add_user(s, r720, r720);
        }
        b.symmetric_delays(
            |l, k| 20.0 + 15.0 * ((l as f64) - (k as f64)).abs(),
            |l, u| 8.0 + 7.0 * ((l + u) % 3) as f64,
        );
        let p = StdArc::new(UapProblem::new(
            b.build().unwrap(),
            CostModel::paper_default(),
        ));
        SystemState::new(p.clone(), nearest_assignment(&p))
    }

    #[test]
    fn threaded_sessions_hop_concurrently_and_stay_consistent() {
        let initial = state();
        let before = initial.objective();
        let config = ParallelConfig {
            alg1: Alg1Config {
                beta: 1000.0,
                mean_countdown_s: 5.0,
                noise: None,
            },
            ms_per_sim_second: 1.0, // 5 s countdown → 5 ms wall
            wall_duration: Duration::from_millis(400),
            seed: 3,
        };
        let report = run_parallel(initial, &config);
        assert!(
            report.hops.len() >= 20,
            "expected many hops, got {}",
            report.hops.len()
        );
        // Hops from several distinct sessions (true concurrency).
        let distinct: std::collections::HashSet<_> =
            report.hops.iter().map(|h| h.session).collect();
        assert!(
            distinct.len() >= 3,
            "only {} sessions hopped",
            distinct.len()
        );
        // The shared state survived concurrent mutation intact.
        let mut final_state = report.final_state;
        let drift = final_state.rebuild();
        assert!(drift < 1e-6, "drift {drift}");
        assert!(final_state.is_feasible());
        assert!(final_state.objective() <= before);
    }

    #[test]
    fn stop_flag_halts_all_workers() {
        let config = ParallelConfig {
            alg1: Alg1Config::paper(400.0),
            ms_per_sim_second: 0.5,
            wall_duration: Duration::from_millis(50),
            seed: 1,
        };
        let started = Instant::now();
        let _ = run_parallel(state(), &config);
        // Generous bound: workers must join shortly after the deadline.
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
