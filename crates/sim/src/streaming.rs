//! Frame-level streaming during an assignment migration.
//!
//! Sec. V-A of the paper: tearing the old assignment down instantly makes
//! "the other participants in the session experience streaming
//! interruption (e.g., a frozen screen for a short period as 2–3 frames
//! are delayed in a 30 fps video rate)"; the prototype avoids this by
//! having the migrating client feed both the old and the new agent for a
//! short interval (< 30 ms on average), at ~13.2 Kb of redundant 240p
//! traffic. This module reproduces that micro-experiment frame by frame.

use serde::{Deserialize, Serialize};

/// Parameters of a single-flow migration experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Source frame rate (frames per second).
    pub fps: f64,
    /// Total simulated stream duration (s).
    pub duration_s: f64,
    /// When the user migrates to the new agent (s).
    pub migration_at_s: f64,
    /// End-to-end flow delay via the old agent (ms).
    pub old_delay_ms: f64,
    /// End-to-end flow delay via the new agent (ms).
    pub new_delay_ms: f64,
    /// Time to establish the stream toward the new agent (ms) —
    /// the dual-feed overlap window.
    pub switch_ms: f64,
    /// Upstream bitrate (Mbps), for redundant-traffic accounting.
    pub bitrate_mbps: f64,
}

impl StreamingConfig {
    /// The prototype's reported operating point: 30 fps, 240p
    /// (0.44 Mbps), 30 ms switch-over.
    pub fn paper_default() -> Self {
        Self {
            fps: 30.0,
            duration_s: 4.0,
            migration_at_s: 2.0,
            old_delay_ms: 120.0,
            new_delay_ms: 90.0,
            switch_ms: 30.0,
            bitrate_mbps: 0.44,
        }
    }
}

/// What the receiving participant experienced across the migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterruptionReport {
    /// Frames dropped because no route existed while switching.
    pub frozen_frames: usize,
    /// Largest inter-arrival gap at the receiver (ms).
    pub max_gap_ms: f64,
    /// Frames arriving out of display order (new path faster than old).
    pub reordered_frames: usize,
    /// Redundant dual-feed traffic (kilobits); zero without dual-feed.
    pub redundant_kb: f64,
    /// Receiver-side frame arrival instants (s), in emission order.
    pub arrivals_s: Vec<f64>,
}

/// Simulates the flow across the migration.
///
/// With `dual_feed = false` the old assignment is torn down at the
/// migration instant and frames emitted during the switch window are
/// lost; with `dual_feed = true` the client feeds both agents during the
/// window, so no frame is lost but the upstream is transmitted twice.
///
/// # Panics
///
/// Panics if the migration instant lies outside the stream duration or
/// any parameter is non-positive where positivity is required.
pub fn simulate_migration(config: &StreamingConfig, dual_feed: bool) -> InterruptionReport {
    assert!(config.fps > 0.0, "fps must be positive");
    assert!(config.duration_s > 0.0, "duration must be positive");
    assert!(
        (0.0..config.duration_s).contains(&config.migration_at_s),
        "migration must happen within the stream"
    );
    let frame_interval = 1.0 / config.fps;
    let switch_s = config.switch_ms / 1000.0;
    let n_frames = (config.duration_s * config.fps).floor() as usize;

    let mut arrivals_s = Vec::with_capacity(n_frames);
    let mut frozen = 0usize;
    for i in 0..n_frames {
        let emit = i as f64 * frame_interval;
        if emit < config.migration_at_s {
            arrivals_s.push(emit + config.old_delay_ms / 1000.0);
        } else if emit < config.migration_at_s + switch_s {
            if dual_feed {
                // The old feed is still alive during the overlap.
                arrivals_s.push(emit + config.old_delay_ms / 1000.0);
            } else {
                frozen += 1; // no route: the frame never arrives
            }
        } else {
            arrivals_s.push(emit + config.new_delay_ms / 1000.0);
        }
    }

    // Largest gap between consecutive *arriving* frames, in arrival order.
    let mut sorted = arrivals_s.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let max_gap_ms = sorted
        .windows(2)
        .map(|w| (w[1] - w[0]) * 1000.0)
        .fold(0.0f64, f64::max);

    // Frames arriving before their predecessor (display-order inversion).
    let reordered = arrivals_s.windows(2).filter(|w| w[1] < w[0]).count();

    let redundant_kb = if dual_feed {
        config.bitrate_mbps * config.switch_ms
    } else {
        0.0
    };

    InterruptionReport {
        frozen_frames: frozen,
        max_gap_ms,
        reordered_frames: reordered,
        redundant_kb,
        arrivals_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teardown_freezes_two_to_three_frames_at_30fps() {
        // The paper's quoted figure: a 30 fps stream loses 2–3 frames
        // when the old assignment is torn down instantly. A ~70–100 ms
        // switch window at 30 fps drops 2–3 frames.
        let config = StreamingConfig {
            switch_ms: 80.0,
            ..StreamingConfig::paper_default()
        };
        let report = simulate_migration(&config, false);
        assert!(
            (2..=3).contains(&report.frozen_frames),
            "frozen {} frames",
            report.frozen_frames
        );
        assert!(report.max_gap_ms > 2.0 * 1000.0 / 30.0);
        assert_eq!(report.redundant_kb, 0.0);
    }

    #[test]
    fn dual_feed_eliminates_interruption_at_paper_cost() {
        let config = StreamingConfig::paper_default();
        let report = simulate_migration(&config, true);
        assert_eq!(report.frozen_frames, 0);
        // 0.44 Mbps × 30 ms = 13.2 Kb — the paper's reported overhead.
        assert!((report.redundant_kb - 13.2).abs() < 1e-9);
        // No gap beyond ~1.5 frame intervals (the path change shifts
        // arrivals but drops nothing).
        assert!(report.max_gap_ms < 1.5 * 1000.0 / 30.0 + 1e-9);
    }

    #[test]
    fn faster_new_path_reorders_frames() {
        let config = StreamingConfig {
            old_delay_ms: 150.0,
            new_delay_ms: 60.0,
            switch_ms: 30.0,
            ..StreamingConfig::paper_default()
        };
        let with = simulate_migration(&config, true);
        assert!(with.reordered_frames >= 1, "fast switch should reorder");
        // Slower new path never reorders.
        let slow = StreamingConfig {
            old_delay_ms: 60.0,
            new_delay_ms: 150.0,
            ..config
        };
        assert_eq!(simulate_migration(&slow, true).reordered_frames, 0);
    }

    #[test]
    fn all_frames_arrive_with_dual_feed() {
        let config = StreamingConfig::paper_default();
        let report = simulate_migration(&config, true);
        let expected = (config.duration_s * config.fps).floor() as usize;
        assert_eq!(report.arrivals_s.len(), expected);
    }

    #[test]
    #[should_panic(expected = "within the stream")]
    fn migration_outside_stream_panics() {
        let config = StreamingConfig {
            migration_at_s: 10.0,
            ..StreamingConfig::paper_default()
        };
        let _ = simulate_migration(&config, false);
    }
}
