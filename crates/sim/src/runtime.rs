//! The conferencing simulation runtime.
//!
//! Drives Alg. 1's per-session countdown/hop loops in simulated
//! continuous time: hops are processed one event at a time, which *is*
//! the FREEZE/UNFREEZE serialization of the paper (no two sessions ever
//! migrate concurrently). Session arrivals bootstrap through a
//! configurable policy and start their own countdown; departures release
//! resources. Metrics are sampled once per simulated second, matching
//! the prototype's reporting.

use crate::event::{Event, EventQueue};
use crate::metrics::TimeSeries;
use crate::migration::{MigrationModel, MigrationStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vc_algo::agrank::{self, AgRankConfig, Residuals};
use vc_algo::markov::{Alg1Config, Alg1Engine, HopOutcome};
use vc_algo::placement;
use vc_core::{SystemState, UapProblem};
use vc_model::{AgentId, SessionId};

/// How an arriving session is bootstrapped.
#[derive(Debug, Clone)]
pub enum ArrivalPolicy {
    /// Keep whatever the pre-built assignment says (the paper: "it can be
    /// bootstrapped with any feasible assignment").
    Preset,
    /// Nearest-agent placement at arrival time.
    Nearest,
    /// AgRank against the residual capacities at arrival time.
    AgRank(AgRankConfig),
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Alg. 1 parameters (β, countdown, measurement noise).
    pub alg1: Alg1Config,
    /// Whether Alg. 1 runs at all (off = static baseline).
    pub optimize: bool,
    /// Metric sampling interval (s).
    pub sample_interval_s: f64,
    /// Simulated duration (s).
    pub duration_s: f64,
    /// RNG seed (the simulation is fully deterministic given the seed).
    pub seed: u64,
    /// Migration overhead model.
    pub migration: MigrationModel,
    /// Bootstrap policy for dynamic arrivals.
    pub arrival_policy: ArrivalPolicy,
}

impl SimConfig {
    /// The prototype setup: β = 400, 10 s mean countdown, 1 s sampling.
    pub fn paper_default(duration_s: f64, seed: u64) -> Self {
        Self {
            alg1: Alg1Config::paper(400.0),
            optimize: true,
            sample_interval_s: 1.0,
            duration_s,
            seed,
            migration: MigrationModel::default(),
            arrival_policy: ArrivalPolicy::Preset,
        }
    }
}

/// A scheduled session arrival or departure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsEvent {
    /// When it happens (s).
    pub time_s: f64,
    /// The session affected.
    pub session: SessionId,
    /// `true` = arrival, `false` = departure.
    pub arrives: bool,
}

/// A scheduled agent failure or recovery (failure injection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// When it happens (s).
    pub time_s: f64,
    /// The agent affected.
    pub agent: vc_model::AgentId,
    /// `true` = recovery, `false` = failure.
    pub up: bool,
}

/// One executed HOP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopRecord {
    /// Simulated time of the hop.
    pub time_s: f64,
    /// The hopping session.
    pub session: SessionId,
    /// What happened.
    pub outcome: HopOutcome,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total inter-agent traffic (Mbps) per sample instant.
    pub traffic: TimeSeries,
    /// Mean conferencing delay (ms) per sample instant.
    pub delay: TimeSeries,
    /// Per-session inter-agent traffic series (indexed by session id).
    pub per_session_traffic: Vec<TimeSeries>,
    /// Per-session mean user delay series (indexed by session id).
    pub per_session_delay: Vec<TimeSeries>,
    /// Executed hops in time order.
    pub hops: Vec<HopRecord>,
    /// Migration overhead totals.
    pub migrations: MigrationStats,
    /// Migrations forced by agent failures (evacuations), including the
    /// count of moves that had no feasible target.
    pub evacuations: Vec<(f64, vc_model::AgentId, usize, usize)>,
    /// Final objective value.
    pub final_objective: f64,
    /// Final traffic (Mbps).
    pub final_traffic_mbps: f64,
    /// Final mean delay (ms).
    pub final_delay_ms: f64,
    /// The final system state.
    pub final_state: SystemState,
}

/// The simulator.
#[derive(Debug)]
pub struct ConferenceSim {
    state: SystemState,
    config: SimConfig,
    dynamics: Vec<DynamicsEvent>,
    churn: Vec<ChurnEvent>,
}

impl ConferenceSim {
    /// Creates a simulation over an initial state (all its active sessions
    /// run Alg. 1 from t = 0).
    pub fn new(state: SystemState, config: SimConfig) -> Self {
        Self {
            state,
            config,
            dynamics: Vec::new(),
            churn: Vec::new(),
        }
    }

    /// Adds session arrival/departure events.
    pub fn with_dynamics(mut self, dynamics: Vec<DynamicsEvent>) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// Adds agent failure/recovery events (failure injection).
    pub fn with_churn(mut self, churn: Vec<ChurnEvent>) -> Self {
        self.churn = churn;
        self
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> SimReport {
        let problem: Arc<UapProblem> = self.state.problem().clone();
        let num_sessions = problem.instance().num_sessions();
        let engine = Alg1Engine::new(self.config.alg1.clone());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut queue = EventQueue::new();
        let mut report = SimReport {
            traffic: TimeSeries::new(),
            delay: TimeSeries::new(),
            per_session_traffic: vec![TimeSeries::new(); num_sessions],
            per_session_delay: vec![TimeSeries::new(); num_sessions],
            hops: Vec::new(),
            migrations: MigrationStats::default(),
            evacuations: Vec::new(),
            final_objective: 0.0,
            final_traffic_mbps: 0.0,
            final_delay_ms: 0.0,
            final_state: self.state.clone(),
        };

        queue.schedule(0.0, Event::Sample);
        if self.config.optimize {
            for s in self.state.active_sessions().collect::<Vec<_>>() {
                queue.schedule(engine.next_countdown(&mut rng), Event::Wake(s));
            }
        }
        for d in &self.dynamics {
            queue.schedule(
                d.time_s,
                if d.arrives {
                    Event::Arrive(d.session)
                } else {
                    Event::Depart(d.session)
                },
            );
        }
        for c in &self.churn {
            queue.schedule(
                c.time_s,
                if c.up {
                    Event::AgentUp(c.agent)
                } else {
                    Event::AgentDown(c.agent)
                },
            );
        }

        while let Some((t, event)) = queue.pop() {
            if t > self.config.duration_s {
                break;
            }
            match event {
                Event::Sample => {
                    self.sample(t, &mut report);
                    let next = t + self.config.sample_interval_s;
                    if next <= self.config.duration_s {
                        queue.schedule(next, Event::Sample);
                    }
                }
                Event::Wake(s) => {
                    if self.state.is_active(s) && self.config.optimize {
                        let outcome = engine.hop(&mut self.state, s, &mut rng);
                        if let HopOutcome::Migrated(decision) = outcome {
                            self.config.migration.record(
                                &self.state,
                                decision,
                                &mut report.migrations,
                            );
                        }
                        report.hops.push(HopRecord {
                            time_s: t,
                            session: s,
                            outcome,
                        });
                        queue.schedule(t + engine.next_countdown(&mut rng), Event::Wake(s));
                    }
                }
                Event::Arrive(s) => {
                    self.bootstrap_arrival(s);
                    self.state.activate(s);
                    if self.config.optimize {
                        queue.schedule(t + engine.next_countdown(&mut rng), Event::Wake(s));
                    }
                }
                Event::Depart(s) => {
                    self.state.deactivate(s);
                }
                Event::AgentDown(l) => {
                    let evac = vc_algo::churn::evacuate_agent(&mut self.state, l);
                    // Evacuation migrations pay the same dual-feed cost.
                    for d in &evac.moves {
                        self.config
                            .migration
                            .record(&self.state, *d, &mut report.migrations);
                    }
                    report
                        .evacuations
                        .push((t, l, evac.moves.len(), evac.forced));
                }
                Event::AgentUp(l) => {
                    self.state.set_agent_available(l, true);
                }
            }
        }

        report.final_objective = self.state.objective();
        report.final_traffic_mbps = self.state.total_traffic_mbps();
        report.final_delay_ms = self.state.mean_delay_ms();
        report.final_state = self.state;
        report
    }

    fn sample(&self, t: f64, report: &mut SimReport) {
        report.traffic.push(t, self.state.total_traffic_mbps());
        report.delay.push(t, self.state.mean_delay_ms());
        for s in self.state.problem().instance().session_ids() {
            if self.state.is_active(s) {
                let load = self.state.session_load(s);
                report.per_session_traffic[s.index()].push(t, load.total_ingress_mbps());
                let d = if load.user_delay.is_empty() {
                    0.0
                } else {
                    load.user_delay.iter().sum::<f64>() / load.user_delay.len() as f64
                };
                report.per_session_delay[s.index()].push(t, d);
            }
        }
    }

    fn bootstrap_arrival(&mut self, s: SessionId) {
        let problem = self.state.problem().clone();
        let inst = problem.instance();
        match &self.config.arrival_policy {
            ArrivalPolicy::Preset => {}
            ArrivalPolicy::Nearest => {
                let users: Vec<_> = inst
                    .session(s)
                    .users()
                    .iter()
                    .map(|&u| (u, inst.delays().nearest_agent(u)))
                    .collect();
                let mut user_agent: Vec<AgentId> = self.state.assignment().user_agents().to_vec();
                for &(u, a) in &users {
                    user_agent[u.index()] = a;
                }
                let all_tasks = placement::rule_of_thumb(&problem, &user_agent);
                let tasks: Vec<_> = problem
                    .tasks()
                    .of_session(s)
                    .iter()
                    .map(|&t| (t, all_tasks[t.index()]))
                    .collect();
                self.state.reassign_session(s, &users, &tasks);
            }
            ArrivalPolicy::AgRank(config) => {
                let residuals = Residuals::from_state(&self.state);
                let sa = agrank::assign_session(&problem, s, &residuals, config);
                self.state.reassign_session(s, &sa.users, &sa.tasks);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_algo::nearest::nearest_assignment;
    use vc_core::Assignment;
    use vc_cost::CostModel;
    use vc_model::{AgentSpec, InstanceBuilder, ReprLadder};

    /// Two sessions spread across three agents with room to improve.
    fn problem() -> Arc<UapProblem> {
        let ladder = ReprLadder::standard_four();
        let r360 = ladder.by_name("360p").unwrap().id();
        let r720 = ladder.by_name("720p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        b.add_agent(AgentSpec::builder("b").build());
        b.add_agent(AgentSpec::builder("c").speed_factor(1.3).build());
        for _ in 0..2 {
            let s = b.add_session();
            b.add_user(s, r720, r360);
            b.add_user(s, r360, r360);
            b.add_user(s, r720, r720);
        }
        b.symmetric_delays(
            |l, k| 25.0 + 12.0 * ((l as f64) - (k as f64)).abs(),
            |l, u| 10.0 + 9.0 * ((l + u) % 3) as f64,
        );
        Arc::new(UapProblem::new(
            b.build().unwrap(),
            CostModel::paper_default(),
        ))
    }

    fn initial_state(p: &Arc<UapProblem>) -> SystemState {
        SystemState::new(p.clone(), nearest_assignment(p))
    }

    #[test]
    fn run_samples_at_every_second() {
        let p = problem();
        let sim = ConferenceSim::new(initial_state(&p), SimConfig::paper_default(30.0, 1));
        let report = sim.run();
        // Samples at t = 0, 1, ..., 30.
        assert_eq!(report.traffic.len(), 31);
        assert_eq!(report.delay.len(), 31);
        assert!(report.final_state.is_feasible());
    }

    #[test]
    fn optimization_reduces_objective_over_time() {
        let p = problem();
        let start_obj = initial_state(&p).objective();
        let mut config = SimConfig::paper_default(300.0, 7);
        config.alg1.beta = 1000.0;
        config.alg1.mean_countdown_s = 2.0;
        let report = ConferenceSim::new(initial_state(&p), config).run();
        assert!(
            report.final_objective < start_obj,
            "no improvement: {start_obj} → {}",
            report.final_objective
        );
        assert!(!report.hops.is_empty());
    }

    #[test]
    fn disabled_optimizer_is_static() {
        let p = problem();
        let mut config = SimConfig::paper_default(20.0, 3);
        config.optimize = false;
        let report = ConferenceSim::new(initial_state(&p), config).run();
        assert!(report.hops.is_empty());
        assert_eq!(report.traffic.first_value(), report.traffic.last_value());
    }

    #[test]
    fn dynamics_change_the_load() {
        let p = problem();
        // Start with only session 0 active; session 1 arrives at t = 10,
        // session 0 departs at t = 20.
        let asg = nearest_assignment(&p);
        let state = SystemState::with_active(p.clone(), asg, vec![true, false]);
        let mut config = SimConfig::paper_default(30.0, 5);
        config.optimize = false;
        let report = ConferenceSim::new(state, config)
            .with_dynamics(vec![
                DynamicsEvent {
                    time_s: 10.0,
                    session: SessionId::new(1),
                    arrives: true,
                },
                DynamicsEvent {
                    time_s: 20.0,
                    session: SessionId::new(0),
                    arrives: false,
                },
            ])
            .run();
        let t5 = report.traffic.value_at(5.0).unwrap();
        let t15 = report.traffic.value_at(15.0).unwrap();
        let t25 = report.traffic.value_at(25.0).unwrap();
        assert!(t15 > t5, "arrival should raise traffic: {t5} → {t15}");
        assert!(t25 < t15, "departure should lower traffic: {t15} → {t25}");
        // Session 1 has no samples before its arrival.
        assert!(report.per_session_traffic[1]
            .points()
            .iter()
            .all(|&(t, _)| t >= 10.0));
    }

    #[test]
    fn arrival_policies_bootstrap_differently() {
        let p = problem();
        let asg = Assignment::all_to_agent(&p, AgentId::new(2));
        let state = SystemState::with_active(p.clone(), asg, vec![true, false]);
        let arrive = vec![DynamicsEvent {
            time_s: 5.0,
            session: SessionId::new(1),
            arrives: true,
        }];
        let mut config = SimConfig::paper_default(10.0, 9);
        config.optimize = false;
        config.arrival_policy = ArrivalPolicy::Nearest;
        let nearest_run = ConferenceSim::new(state.clone(), config.clone())
            .with_dynamics(arrive.clone())
            .run();
        config.arrival_policy = ArrivalPolicy::Preset;
        let preset_run = ConferenceSim::new(state, config)
            .with_dynamics(arrive)
            .run();
        // Preset keeps session 1 on agent c (everyone co-located, no
        // inter-agent traffic); Nearest spreads users to their closest
        // agents, creating traffic.
        let nearest_final = nearest_run.final_state.assignment();
        let preset_final = preset_run.final_state.assignment();
        assert_ne!(
            nearest_final.user_agents(),
            preset_final.user_agents(),
            "policies should place the arrival differently"
        );
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let p = problem();
        let r1 = ConferenceSim::new(initial_state(&p), SimConfig::paper_default(60.0, 42)).run();
        let r2 = ConferenceSim::new(initial_state(&p), SimConfig::paper_default(60.0, 42)).run();
        assert_eq!(r1.traffic, r2.traffic);
        assert_eq!(r1.hops.len(), r2.hops.len());
        let r3 = ConferenceSim::new(initial_state(&p), SimConfig::paper_default(60.0, 43)).run();
        // Different seed gives a different hop sequence (statistically certain).
        assert!(r1.hops.len() != r3.hops.len() || r1.traffic != r3.traffic);
    }

    #[test]
    fn agent_failure_is_evacuated_and_recovery_reused() {
        let p = problem();
        let state = initial_state(&p);
        // Fail agent 0 at t = 5 s, recover it at t = 20 s.
        let failed = AgentId::new(0);
        let report = ConferenceSim::new(state, SimConfig::paper_default(60.0, 13))
            .with_churn(vec![
                ChurnEvent {
                    time_s: 5.0,
                    agent: failed,
                    up: false,
                },
                ChurnEvent {
                    time_s: 20.0,
                    agent: failed,
                    up: true,
                },
            ])
            .run();
        assert_eq!(report.evacuations.len(), 1);
        let (t, agent, moved, forced) = report.evacuations[0];
        assert_eq!(t, 5.0);
        assert_eq!(agent, failed);
        assert!(moved > 0, "Nrst places users on every agent here");
        assert_eq!(forced, 0);
        assert!(report.final_state.is_feasible());
        assert!(report.final_state.is_agent_available(failed));
    }

    #[test]
    fn failed_agent_stays_empty_until_recovery() {
        let p = problem();
        let state = initial_state(&p);
        let failed = AgentId::new(1);
        let report = ConferenceSim::new(state, SimConfig::paper_default(40.0, 17))
            .with_churn(vec![ChurnEvent {
                time_s: 2.0,
                agent: failed,
                up: false,
            }])
            .run();
        let final_asg = report.final_state.assignment();
        for u in p.instance().user_ids() {
            assert_ne!(final_asg.agent_of_user(u), failed, "{u} on failed agent");
        }
        assert!(!report.final_state.is_agent_available(failed));
    }

    #[test]
    fn migration_stats_accumulate() {
        let p = problem();
        let mut config = SimConfig::paper_default(200.0, 11);
        config.alg1.beta = 1000.0;
        config.alg1.mean_countdown_s = 2.0;
        let report = ConferenceSim::new(initial_state(&p), config).run();
        let migrated = report
            .hops
            .iter()
            .filter(|h| matches!(h.outcome, HopOutcome::Migrated(_)))
            .count();
        assert_eq!(
            migrated,
            report.migrations.user_migrations + report.migrations.task_migrations
        );
        if report.migrations.user_migrations > 0 {
            assert!(report.migrations.redundant_kb > 0.0);
        }
    }
}
