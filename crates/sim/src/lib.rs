//! Discrete-event conferencing simulator.
//!
//! Replaces the paper's C++/OpenCV prototype testbed (Sec. V-A): it runs
//! Alg. 1's per-session WAIT/HOP loops in simulated continuous time with
//! FREEZE-serialized migrations, injects session arrivals/departures,
//! accounts migration overhead (the dual-feed trick the prototype uses to
//! avoid frozen frames), and samples the two reported metrics — total
//! inter-agent traffic and mean conferencing delay — once per simulated
//! second, producing exactly the time series plotted in Figs. 4–7.
//!
//! A frame-level streaming simulator ([`streaming`]) reproduces the
//! migration-interruption micro-experiment: 2–3 frozen frames at 30 fps
//! without dual-feed, zero with it, at ~13 Kb of redundant traffic.
//!
//! Two runtimes are provided: the deterministic discrete-event
//! [`ConferenceSim`], and [`parallel::run_parallel`] — one real thread
//! per session serialized by a FREEZE lock, the paper's distributed
//! deployment shape. Agent failures are injectable in both
//! ([`ChurnEvent`]; evacuation via `vc-algo`'s churn module).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod metrics;
pub mod migration;
pub mod parallel;
mod runtime;
pub mod streaming;

pub use event::{Event, EventQueue};
pub use metrics::{BoxStats, TimeSeries};
pub use migration::{MigrationModel, MigrationStats};
pub use parallel::{run_parallel, ParallelConfig, ParallelReport};
pub use runtime::{
    ArrivalPolicy, ChurnEvent, ConferenceSim, DynamicsEvent, HopRecord, SimConfig, SimReport,
};
