//! Metric collection: time series and distribution summaries.

use serde::{Deserialize, Serialize};

/// A time-stamped metric series (simulated seconds → value).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last sample.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "samples must be time-ordered");
        }
        self.points.push((time, value));
    }

    /// All samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The first sample's value.
    pub fn first_value(&self) -> Option<f64> {
        self.points.first().map(|&(_, v)| v)
    }

    /// The last sample's value.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// The value at the sample nearest to `time`.
    pub fn value_at(&self, time: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.0 - time)
                    .abs()
                    .partial_cmp(&(b.0 - time).abs())
                    .expect("finite times")
            })
            .map(|&(_, v)| v)
    }

    /// Mean value over samples with `time ∈ [from, to]`.
    pub fn mean_between(&self, from: f64, to: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t <= to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Values only (dropping timestamps).
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }
}

/// Five-number summary (the paper's Fig. 8 box plots).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean (not drawn in a box plot but handy in tables).
    pub mean: f64,
}

impl BoxStats {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
        Self {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
            mean: values.iter().sum::<f64>() / values.len() as f64,
        }
    }

    /// Interquartile range `q3 − q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accessors() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 10.0);
        ts.push(1.0, 20.0);
        ts.push(2.0, 30.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.first_value(), Some(10.0));
        assert_eq!(ts.last_value(), Some(30.0));
        assert_eq!(ts.value_at(1.2), Some(20.0));
        assert_eq!(ts.mean_between(0.5, 2.5), Some(25.0));
        assert_eq!(ts.mean_between(5.0, 6.0), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(2.0, 1.0);
        ts.push(1.0, 1.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 4.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 2.5);
    }

    #[test]
    fn box_stats_five_numbers() {
        let values = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = BoxStats::from_values(&values);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.iqr(), 2.0);
    }

    #[test]
    fn box_stats_single_value() {
        let b = BoxStats::from_values(&[7.0]);
        assert_eq!(b.min, 7.0);
        assert_eq!(b.q1, 7.0);
        assert_eq!(b.max, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_box_stats_panics() {
        let _ = BoxStats::from_values(&[]);
    }
}
