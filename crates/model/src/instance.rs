//! Complete problem instances, their builder, and the open-world
//! growth API.
//!
//! An [`Instance`] bundles everything Sec. II of the paper defines:
//! sessions and users (with their representation demands), agents, delay
//! matrices, the transcoding-latency model and the delay bound `Dmax`.
//! Session arrival/departure dynamics are expressed by *activating*
//! subsets of sessions in `vc-core`'s system state rather than by
//! mutating the instance.
//!
//! ## Open-world growth
//!
//! A production conferencing service never knows its conference
//! population up front, so instances are **append-only extensible**:
//! [`Instance::register_session`] adds a whole new conference (a
//! [`SessionDef`]) after the fact, and [`Instance::register_user`] adds
//! one user to an existing session. Growth is strictly additive —
//! existing ids, delay entries, and session memberships are never
//! renumbered or changed — so any quantity computed over the old
//! universe (per-session loads, objectives, delay lookups) is bitwise
//! unchanged under the grown one. The agent pool grows the same way:
//! [`Instance::register_agent`] appends one agent (an [`AgentDef`]) —
//! a new `D` row/column and `H` row — without moving any existing
//! delay entry, so provisioned capacity is elastic too. Only the
//! representation ladder stays fixed.

use crate::{
    AgentId, AgentSpec, Capacity, DelayMatrices, DownstreamDemand, Matrix, ModelError, ReprId,
    ReprLadder, SessionId, SessionSpec, TranscodeLatencyModel, UserId, UserSpec, DEFAULT_D_MAX_MS,
};
use serde::{Deserialize, Serialize};

/// Definition of one user of a to-be-registered conference: everything
/// [`Instance::register_user`] needs that the instance cannot derive
/// itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserDef {
    /// `r^u_u`: the representation the user produces.
    pub upstream: ReprId,
    /// `r^d_{uv}`: what the user demands of the others. Overrides
    /// reference **absolute** user ids valid at registration time
    /// (typically fellow members of the same [`SessionDef`]).
    pub downstream: DownstreamDemand,
    /// `H` column: one-way delay from each agent to this user (ms),
    /// in instance agent order (length must equal the agent count).
    pub agent_delays_ms: Vec<f64>,
    /// Geographic site index, if the workload generator knows it.
    pub site_index: Option<usize>,
}

/// Definition of one never-before-seen conference, registered online
/// via [`Instance::register_session`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionDef {
    /// The conference's members (at least one).
    pub users: Vec<UserDef>,
}

impl SessionDef {
    /// Extracts session `s` of `instance` as a registrable definition:
    /// upstreams, demands (with their absolute-id overrides), `H`
    /// columns, and site indices. Registering the extracted defs of
    /// sessions `k..n` onto the instance's `k`-session prefix rebuilds
    /// the original universe exactly — up to semantically-inert
    /// downstream overrides whose source is *outside* the session
    /// (`r^d_{uv}` is only ever queried for fellow participants), which
    /// are dropped here so the extracted def always re-registers.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn of_instance(instance: &Instance, s: SessionId) -> Self {
        let session = instance.session(s);
        let users = session
            .users()
            .iter()
            .map(|&u| {
                let spec = instance.user(u);
                let mut downstream = DownstreamDemand::uniform(spec.downstream().default_repr());
                for (&src, &r) in spec.downstream().overrides() {
                    if session.contains(src) {
                        downstream = downstream.with_override(src, r);
                    }
                }
                UserDef {
                    upstream: spec.upstream(),
                    downstream,
                    agent_delays_ms: instance.agent_ids().map(|l| instance.h_ms(l, u)).collect(),
                    site_index: spec.site_index(),
                }
            })
            .collect();
        Self { users }
    }
}

/// Definition of one never-before-seen agent, registered online via
/// [`Instance::register_agent`] — the agent-axis twin of
/// [`SessionDef`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentDef {
    /// The agent's name, capacity, speed factor, and prices.
    pub spec: AgentSpec,
    /// New `D` row/column: one-way delay to each **existing** agent
    /// (ms), in instance agent order (length must equal the agent
    /// count; the new diagonal entry is implicitly zero).
    pub inter_agent_ms: Vec<f64>,
    /// New `H` row: one-way delay to each existing user (ms), in
    /// instance user order (length must equal the user count).
    pub user_delays_ms: Vec<f64>,
}

impl AgentDef {
    /// Extracts agent `l` of `instance` as a registrable definition
    /// covering only the agents and users that precede it — so
    /// registering the extracted defs of agents `k..L` (in order) onto
    /// [`Instance::agent_prefix`]`(k)` rebuilds the original agent pool
    /// exactly, provided every user predates agent `k`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn of_instance(instance: &Instance, l: AgentId) -> Self {
        Self {
            spec: instance.agent(l).clone(),
            inter_agent_ms: (0..l.index())
                .map(|k| instance.d_ms(l, AgentId::from(k)))
                .collect(),
            user_delays_ms: instance.user_ids().map(|u| instance.h_ms(l, u)).collect(),
        }
    }
}

/// A complete, validated conferencing problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    ladder: ReprLadder,
    agents: Vec<AgentSpec>,
    users: Vec<UserSpec>,
    sessions: Vec<SessionSpec>,
    delays: DelayMatrices,
    transcode_latency: TranscodeLatencyModel,
    d_max_ms: f64,
}

impl Instance {
    /// The representation ladder `R`.
    pub fn ladder(&self) -> &ReprLadder {
        &self.ladder
    }

    /// Number of agents `L`.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Number of users `U`.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of sessions `S`.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// All agents.
    pub fn agents(&self) -> &[AgentSpec] {
        &self.agents
    }

    /// All users.
    pub fn users(&self) -> &[UserSpec] {
        &self.users
    }

    /// All sessions.
    pub fn sessions(&self) -> &[SessionSpec] {
        &self.sessions
    }

    /// Agent lookup.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn agent(&self, l: AgentId) -> &AgentSpec {
        &self.agents[l.index()]
    }

    /// User lookup.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn user(&self, u: UserId) -> &UserSpec {
        &self.users[u.index()]
    }

    /// Session lookup.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn session(&self, s: SessionId) -> &SessionSpec {
        &self.sessions[s.index()]
    }

    /// Iterator over all agent ids.
    pub fn agent_ids(&self) -> impl Iterator<Item = AgentId> {
        (0..self.agents.len()).map(AgentId::from)
    }

    /// Iterator over all user ids.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> {
        (0..self.users.len()).map(UserId::from)
    }

    /// Iterator over all session ids.
    pub fn session_ids(&self) -> impl Iterator<Item = SessionId> {
        (0..self.sessions.len()).map(SessionId::from)
    }

    /// The delay matrices `D` and `H`.
    pub fn delays(&self) -> &DelayMatrices {
        &self.delays
    }

    /// The transcoding-latency model shared by all agents.
    pub fn transcode_latency(&self) -> &TranscodeLatencyModel {
        &self.transcode_latency
    }

    /// `Dmax`: maximum acceptable end-to-end delay in ms (constraint (8)).
    pub fn d_max_ms(&self) -> f64 {
        self.d_max_ms
    }

    /// `κ(r)`: bitrate of representation `r` in Mbit/s.
    #[inline]
    pub fn kappa(&self, r: ReprId) -> f64 {
        self.ladder.kappa(r)
    }

    /// `σ_l(r1, r2)`: transcoding latency at agent `l` from representation
    /// `r1` to `r2`, in ms.
    #[inline]
    pub fn sigma_ms(&self, l: AgentId, r1: ReprId, r2: ReprId) -> f64 {
        self.transcode_latency.latency_ms(
            self.agent(l).speed_factor(),
            self.kappa(r1),
            self.kappa(r2),
        )
    }

    /// `θ_{uv}`: 1 iff `u` and `v` share a session and `v` demands a
    /// representation of `u`'s stream different from `u`'s upstream.
    pub fn theta(&self, u: UserId, v: UserId) -> bool {
        let uu = self.user(u);
        let vv = self.user(v);
        u != v && uu.session() == vv.session() && vv.downstream_from(u) != uu.upstream()
    }

    /// `θ_sum`: total number of (u, v) pairs requiring transcoding.
    pub fn theta_sum(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| s.flows())
            .filter(|&(u, v)| self.theta(u, v))
            .count()
    }

    /// `P(u)`: other participants of `u`'s session.
    pub fn participants(&self, u: UserId) -> impl Iterator<Item = UserId> + '_ {
        self.session(self.user(u).session()).participants_except(u)
    }

    /// `H_lu` shortcut.
    #[inline]
    pub fn h_ms(&self, l: AgentId, u: UserId) -> f64 {
        self.delays.agent_user_ms(l, u)
    }

    /// `D_lk` shortcut.
    #[inline]
    pub fn d_ms(&self, l: AgentId, k: AgentId) -> f64 {
        self.delays.inter_agent_ms(l, k)
    }

    /// Returns a copy of this instance with every agent's capacity replaced.
    /// Used by the Fig. 9 capacity sweeps.
    pub fn with_uniform_capacity(&self, capacity: Capacity) -> Instance {
        let mut clone = self.clone();
        for a in &mut clone.agents {
            *a = AgentSpec::builder(a.name())
                .capacity(capacity)
                .speed_factor(a.speed_factor())
                .price_per_mbps(a.price_per_mbps())
                .price_per_task(a.price_per_task())
                .build();
        }
        clone
    }

    /// Returns a copy with a different delay bound `Dmax`.
    pub fn with_d_max_ms(&self, d_max_ms: f64) -> Instance {
        let mut clone = self.clone();
        clone.d_max_ms = d_max_ms;
        clone
    }

    /// Registers a whole new conference online, returning its id (always
    /// the next dense session id). Validation is all-or-nothing: on error
    /// the instance is unchanged.
    ///
    /// Growth is append-only — no existing id or delay entry moves — so
    /// every evaluation over previously-registered sessions is bitwise
    /// unaffected.
    ///
    /// # Errors
    ///
    /// [`ModelError`] if the definition is empty, references
    /// representations outside the ladder or unknown override sources,
    /// or carries a mis-sized/invalid delay column.
    pub fn register_session(&mut self, def: &SessionDef) -> Result<SessionId, ModelError> {
        if def.users.is_empty() {
            return Err(ModelError::Inconsistent(
                "registered session has no users".into(),
            ));
        }
        let first_new_user = self.users.len();
        for (i, u) in def.users.iter().enumerate() {
            self.validate_user_def(u, first_new_user + def.users.len(), i)?;
        }
        let s = SessionId::from(self.sessions.len());
        self.sessions.push(SessionSpec::new(s, Vec::new()));
        for u in def.users.iter() {
            let id = UserId::from(self.users.len());
            let mut spec = UserSpec::new(id, s, u.upstream, u.downstream.clone());
            if let Some(site) = u.site_index {
                spec = spec.with_site_index(site);
            }
            self.users.push(spec);
            self.sessions[s.index()].push_user(id);
        }
        let columns: Vec<&[f64]> = def
            .users
            .iter()
            .map(|u| u.agent_delays_ms.as_slice())
            .collect();
        self.delays
            .push_user_columns(&columns)
            .expect("columns validated above");
        Ok(s)
    }

    /// Registers a never-before-seen agent online, returning its id
    /// (always the next dense agent id). Validation is all-or-nothing:
    /// on error the instance is unchanged.
    ///
    /// Growth is append-only — no existing id or delay entry moves —
    /// so every evaluation over previously-registered agents and
    /// sessions is bitwise unaffected, and a universe grown one agent
    /// at a time equals the same universe built up front.
    ///
    /// # Errors
    ///
    /// [`ModelError`] if either delay vector is mis-sized or carries a
    /// negative/non-finite entry.
    pub fn register_agent(&mut self, def: &AgentDef) -> Result<AgentId, ModelError> {
        self.delays
            .push_agent(&def.inter_agent_ms, &def.user_delays_ms)?;
        let id = AgentId::from(self.agents.len());
        self.agents.push(def.spec.clone());
        Ok(id)
    }

    /// The first `num_agents` agents of this instance as a standalone
    /// instance — the *seed* of an elastic fleet whose remaining agents
    /// arrive later as [`AgentDef`]s (see [`AgentDef::of_instance`]).
    /// Sessions and users are kept in full: only the delay matrices and
    /// agent list shrink.
    ///
    /// # Errors
    ///
    /// [`ModelError::Inconsistent`] if `num_agents` is zero or exceeds
    /// the agent count.
    pub fn agent_prefix(&self, num_agents: usize) -> Result<Instance, ModelError> {
        if num_agents == 0 || num_agents > self.agents.len() {
            return Err(ModelError::Inconsistent(format!(
                "agent prefix of {num_agents} agents out of {}",
                self.agents.len()
            )));
        }
        let d = Matrix::tabulate(num_agents, num_agents, |l, k| {
            self.delays.inter_agent().at(l, k)
        });
        let h = Matrix::tabulate(num_agents, self.users.len(), |l, u| {
            self.delays.agent_user().at(l, u)
        });
        Ok(Instance {
            ladder: self.ladder.clone(),
            agents: self.agents[..num_agents].to_vec(),
            users: self.users.clone(),
            sessions: self.sessions.clone(),
            delays: DelayMatrices::new(d, h).expect("prefix delays stay valid"),
            transcode_latency: self.transcode_latency,
            d_max_ms: self.d_max_ms,
        })
    }

    /// Registers one additional user into an **existing** session (a
    /// late joiner), returning its id (always the next dense user id).
    ///
    /// Model-level only for now: `vc-core`'s `UapProblem` (task table,
    /// cached demands) and the fleet grow exclusively through whole-
    /// session registration — a late joiner changes an existing
    /// session's flow set, which those layers do not yet re-derive
    /// (a named ROADMAP follow-up). The mutated session is flagged
    /// ([`SessionSpec::late_joined`]); problem-layer extension over an
    /// instance with late joiners it does not cover is refused with a
    /// typed [`ModelError::LateJoinExtension`] instead of silently
    /// producing a task table that misses the new user's flows.
    ///
    /// # Errors
    ///
    /// [`ModelError`] if the session is unknown or the definition is
    /// invalid (see [`register_session`](Self::register_session)).
    pub fn register_user(
        &mut self,
        session: SessionId,
        def: &UserDef,
    ) -> Result<UserId, ModelError> {
        if session.index() >= self.sessions.len() {
            return Err(ModelError::UnknownId(format!(
                "register_user into unknown session {session}"
            )));
        }
        self.validate_user_def(def, self.users.len() + 1, 0)?;
        let id = UserId::from(self.users.len());
        let mut spec = UserSpec::new(id, session, def.upstream, def.downstream.clone());
        if let Some(site) = def.site_index {
            spec = spec.with_site_index(site);
        }
        self.users.push(spec);
        self.sessions[session.index()].push_user(id);
        self.sessions[session.index()].mark_late_joined();
        self.delays
            .push_user_columns(&[def.agent_delays_ms.as_slice()])
            .expect("column validated above");
        Ok(id)
    }

    /// Whether any session gained a late joiner via
    /// [`register_user`](Self::register_user) since construction.
    pub fn has_late_joiners(&self) -> bool {
        self.sessions.iter().any(|s| s.late_joined())
    }

    /// Shared validation of one [`UserDef`]: ladder membership, override
    /// sources below `user_id_bound` (existing users plus the batch
    /// being registered), and a well-formed delay column.
    fn validate_user_def(
        &self,
        def: &UserDef,
        user_id_bound: usize,
        ordinal: usize,
    ) -> Result<(), ModelError> {
        if self.ladder.get(def.upstream).is_none() {
            return Err(ModelError::UnknownId(format!(
                "registered user #{ordinal} upstream representation {}",
                def.upstream
            )));
        }
        if self.ladder.get(def.downstream.default_repr()).is_none() {
            return Err(ModelError::UnknownId(format!(
                "registered user #{ordinal} downstream representation {}",
                def.downstream.default_repr()
            )));
        }
        for (&src, &r) in def.downstream.overrides() {
            if src.index() >= user_id_bound {
                return Err(ModelError::UnknownId(format!(
                    "registered user #{ordinal} downstream override references unknown user {src}"
                )));
            }
            if self.ladder.get(r).is_none() {
                return Err(ModelError::UnknownId(format!(
                    "registered user #{ordinal} downstream override representation {r}"
                )));
            }
        }
        if def.agent_delays_ms.len() != self.agents.len() {
            return Err(ModelError::DimensionMismatch {
                expected: self.agents.len(),
                actual: def.agent_delays_ms.len(),
            });
        }
        if !def
            .agent_delays_ms
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
        {
            return Err(ModelError::InvalidDelays(format!(
                "registered user #{ordinal} has a negative or non-finite delay"
            )));
        }
        Ok(())
    }

    /// The first `num_sessions` sessions of this instance as a
    /// standalone instance — the *seed* of an open world whose remaining
    /// sessions arrive later as [`SessionDef`]s (see
    /// [`SessionDef::of_instance`]). Downstream overrides referencing
    /// users beyond the prefix are dropped: those users are necessarily
    /// in other sessions, so the overrides were semantically inert
    /// (`r^d_{uv}` is only queried for fellow participants) and keeping
    /// them would leave dangling user ids in the seed.
    ///
    /// # Errors
    ///
    /// [`ModelError::Inconsistent`] if the prefix sessions' users are
    /// not exactly the dense user prefix `0..m` (sessions registered
    /// out of user order cannot be split).
    pub fn prefix(&self, num_sessions: usize) -> Result<Instance, ModelError> {
        if num_sessions == 0 || num_sessions > self.sessions.len() {
            return Err(ModelError::Inconsistent(format!(
                "prefix of {num_sessions} sessions out of {}",
                self.sessions.len()
            )));
        }
        let num_users: usize = self.sessions[..num_sessions].iter().map(|s| s.len()).sum();
        for s in &self.sessions[..num_sessions] {
            if s.users().iter().any(|u| u.index() >= num_users) {
                return Err(ModelError::Inconsistent(format!(
                    "session {} references users outside the dense prefix",
                    s.id()
                )));
            }
        }
        let users = self.users[..num_users]
            .iter()
            .map(|spec| {
                if spec
                    .downstream()
                    .overrides()
                    .keys()
                    .all(|src| src.index() < num_users)
                {
                    return spec.clone();
                }
                let mut downstream = DownstreamDemand::uniform(spec.downstream().default_repr());
                for (&src, &r) in spec.downstream().overrides() {
                    if src.index() < num_users {
                        downstream = downstream.with_override(src, r);
                    }
                }
                let mut rebuilt =
                    UserSpec::new(spec.id(), spec.session(), spec.upstream(), downstream);
                if let Some(site) = spec.site_index() {
                    rebuilt = rebuilt.with_site_index(site);
                }
                rebuilt
            })
            .collect();
        let nl = self.agents.len();
        let d = Matrix::tabulate(nl, nl, |l, k| self.delays.inter_agent().at(l, k));
        let h = Matrix::tabulate(nl, num_users, |l, u| self.delays.agent_user().at(l, u));
        Ok(Instance {
            ladder: self.ladder.clone(),
            agents: self.agents.clone(),
            users,
            sessions: self.sessions[..num_sessions].to_vec(),
            delays: DelayMatrices::new(d, h).expect("prefix delays stay valid"),
            transcode_latency: self.transcode_latency,
            d_max_ms: self.d_max_ms,
        })
    }
}

/// Incremental builder for [`Instance`].
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    ladder: ReprLadder,
    agents: Vec<AgentSpec>,
    users: Vec<UserSpec>,
    sessions: Vec<SessionSpec>,
    delays: Option<DelayMatrices>,
    transcode_latency: TranscodeLatencyModel,
    d_max_ms: f64,
}

impl InstanceBuilder {
    /// Starts a builder over the given representation ladder.
    pub fn new(ladder: ReprLadder) -> Self {
        Self {
            ladder,
            agents: Vec::new(),
            users: Vec::new(),
            sessions: Vec::new(),
            delays: None,
            transcode_latency: TranscodeLatencyModel::paper_default(),
            d_max_ms: DEFAULT_D_MAX_MS,
        }
    }

    /// Adds an agent, returning its id.
    pub fn add_agent(&mut self, spec: AgentSpec) -> AgentId {
        let id = AgentId::from(self.agents.len());
        self.agents.push(spec);
        id
    }

    /// Adds an empty session, returning its id. Users join via
    /// [`add_user`](Self::add_user).
    pub fn add_session(&mut self) -> SessionId {
        let id = SessionId::from(self.sessions.len());
        self.sessions.push(SessionSpec::new(id, Vec::new()));
        id
    }

    /// Adds a user to `session` producing `upstream` and demanding
    /// `downstream` of everyone; returns the user id.
    ///
    /// # Panics
    ///
    /// Panics if `session` has not been added.
    pub fn add_user(&mut self, session: SessionId, upstream: ReprId, downstream: ReprId) -> UserId {
        self.add_user_with_demand(session, upstream, DownstreamDemand::uniform(downstream))
    }

    /// Adds a user with a fully customized downstream demand.
    ///
    /// # Panics
    ///
    /// Panics if `session` has not been added.
    pub fn add_user_with_demand(
        &mut self,
        session: SessionId,
        upstream: ReprId,
        downstream: DownstreamDemand,
    ) -> UserId {
        assert!(
            session.index() < self.sessions.len(),
            "session {session} not added to the builder"
        );
        let id = UserId::from(self.users.len());
        self.users
            .push(UserSpec::new(id, session, upstream, downstream));
        self.sessions[session.index()].push_user(id);
        id
    }

    /// Records the geographic site index of the most recently added user.
    pub fn set_user_site(&mut self, u: UserId, site: usize) {
        let spec = self.users[u.index()].clone().with_site_index(site);
        self.users[u.index()] = spec;
    }

    /// Sets explicit delay matrices.
    pub fn delays(&mut self, delays: DelayMatrices) -> &mut Self {
        self.delays = Some(delays);
        self
    }

    /// Tabulates delay matrices from closures over indices:
    /// `inter(l, k)` (must be symmetric in spirit; diagonal forced to 0)
    /// and `user(l, u)`.
    pub fn symmetric_delays(
        &mut self,
        mut inter: impl FnMut(usize, usize) -> f64,
        user: impl FnMut(usize, usize) -> f64,
    ) -> &mut Self {
        let nl = self.agents.len();
        let nu = self.users.len();
        let d = Matrix::tabulate(nl, nl, |l, k| if l == k { 0.0 } else { inter(l, k) });
        let h = Matrix::tabulate(nl, nu, user);
        self.delays = Some(DelayMatrices::new(d, h).expect("tabulated delays are valid"));
        self
    }

    /// Overrides the transcoding latency model.
    pub fn transcode_latency(&mut self, model: TranscodeLatencyModel) -> &mut Self {
        self.transcode_latency = model;
        self
    }

    /// Overrides `Dmax` (default: 400 ms per ITU-T G.114).
    pub fn d_max_ms(&mut self, v: f64) -> &mut Self {
        self.d_max_ms = v;
        self
    }

    /// Validates and builds the instance.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if delays are missing or mis-dimensioned, any
    /// session is empty, there are no agents/users, any referenced
    /// representation is outside the ladder, or `Dmax` is not positive.
    pub fn build(self) -> Result<Instance, ModelError> {
        if self.agents.is_empty() {
            return Err(ModelError::Inconsistent("no agents".into()));
        }
        if self.users.is_empty() {
            return Err(ModelError::Inconsistent("no users".into()));
        }
        for s in &self.sessions {
            if s.is_empty() {
                return Err(ModelError::Inconsistent(format!(
                    "session {} is empty",
                    s.id()
                )));
            }
        }
        for u in &self.users {
            if self.ladder.get(u.upstream()).is_none() {
                return Err(ModelError::UnknownId(format!(
                    "user {} upstream representation {}",
                    u.id(),
                    u.upstream()
                )));
            }
            if self.ladder.get(u.downstream().default_repr()).is_none() {
                return Err(ModelError::UnknownId(format!(
                    "user {} downstream representation {}",
                    u.id(),
                    u.downstream().default_repr()
                )));
            }
            for (&src, &r) in u.downstream().overrides() {
                if src.index() >= self.users.len() {
                    return Err(ModelError::UnknownId(format!(
                        "user {} downstream override references unknown user {src}",
                        u.id()
                    )));
                }
                if self.ladder.get(r).is_none() {
                    return Err(ModelError::UnknownId(format!(
                        "user {} downstream override representation {r}",
                        u.id()
                    )));
                }
            }
        }
        let delays = self
            .delays
            .ok_or_else(|| ModelError::Inconsistent("delay matrices not set".into()))?;
        if delays.num_agents() != self.agents.len() {
            return Err(ModelError::Inconsistent(format!(
                "delay matrices cover {} agents but instance has {}",
                delays.num_agents(),
                self.agents.len()
            )));
        }
        if delays.num_users() != self.users.len() {
            return Err(ModelError::Inconsistent(format!(
                "delay matrices cover {} users but instance has {}",
                delays.num_users(),
                self.users.len()
            )));
        }
        if self.d_max_ms.is_nan() || self.d_max_ms <= 0.0 {
            return Err(ModelError::Inconsistent(format!(
                "Dmax must be positive, got {}",
                self.d_max_ms
            )));
        }
        Ok(Instance {
            ladder: self.ladder,
            agents: self.agents,
            users: self.users,
            sessions: self.sessions,
            delays,
            transcode_latency: self.transcode_latency,
            d_max_ms: self.d_max_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_user_instance() -> Instance {
        let ladder = ReprLadder::standard_four();
        let r360 = ladder.by_name("360p").unwrap().id();
        let r720 = ladder.by_name("720p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").speed_factor(1.2).build());
        b.add_agent(AgentSpec::builder("b").speed_factor(2.4).build());
        let s = b.add_session();
        b.add_user(s, r720, r360); // u0 produces 720p, wants 360p of others
        b.add_user(s, r360, r360); // u1 produces 360p, wants 360p of others
        b.symmetric_delays(|_, _| 40.0, |l, u| 10.0 * (l + u + 1) as f64);
        b.build().unwrap()
    }

    #[test]
    fn theta_detects_transcoding_needs() {
        let inst = two_user_instance();
        let (u0, u1) = (UserId::new(0), UserId::new(1));
        // Flow u0 -> u1: u0 produces 720p, u1 wants 360p => transcode.
        assert!(inst.theta(u0, u1));
        // Flow u1 -> u0: u1 produces 360p, u0 wants 360p => no transcode.
        assert!(!inst.theta(u1, u0));
        // Self-flow never transcodes.
        assert!(!inst.theta(u0, u0));
        assert_eq!(inst.theta_sum(), 1);
    }

    #[test]
    fn sigma_scales_with_speed_factor() {
        let inst = two_user_instance();
        let r720 = inst.ladder().by_name("720p").unwrap().id();
        let r360 = inst.ladder().by_name("360p").unwrap().id();
        let fast = inst.sigma_ms(AgentId::new(0), r720, r360);
        let slow = inst.sigma_ms(AgentId::new(1), r720, r360);
        assert!(slow > fast);
        assert!((slow / fast - 2.0).abs() < 1e-9); // speed factors 1.2 vs 2.4
    }

    #[test]
    fn participants_excludes_self() {
        let inst = two_user_instance();
        let others: Vec<_> = inst.participants(UserId::new(0)).collect();
        assert_eq!(others, vec![UserId::new(1)]);
    }

    #[test]
    fn build_rejects_empty_session() {
        let ladder = ReprLadder::standard_four();
        let mut b = InstanceBuilder::new(ladder.clone());
        b.add_agent(AgentSpec::builder("a").build());
        let _empty = b.add_session();
        let s = b.add_session();
        b.add_user(s, ladder.lowest(), ladder.lowest());
        b.symmetric_delays(|_, _| 1.0, |_, _| 1.0);
        assert!(matches!(b.build(), Err(ModelError::Inconsistent(_))));
    }

    #[test]
    fn build_rejects_missing_delays() {
        let ladder = ReprLadder::standard_four();
        let mut b = InstanceBuilder::new(ladder.clone());
        b.add_agent(AgentSpec::builder("a").build());
        let s = b.add_session();
        b.add_user(s, ladder.lowest(), ladder.lowest());
        assert!(b.build().is_err());
    }

    #[test]
    fn build_rejects_wrong_delay_dimensions() {
        let ladder = ReprLadder::standard_four();
        let mut b = InstanceBuilder::new(ladder.clone());
        b.add_agent(AgentSpec::builder("a").build());
        let s = b.add_session();
        b.add_user(s, ladder.lowest(), ladder.lowest());
        b.add_user(s, ladder.lowest(), ladder.lowest());
        // Only one user column.
        let d = Matrix::filled(1, 1, 0.0);
        let h = Matrix::filled(1, 1, 5.0);
        b.delays(DelayMatrices::new(d, h).unwrap());
        assert!(matches!(b.build(), Err(ModelError::Inconsistent(_))));
    }

    #[test]
    fn build_rejects_nonpositive_dmax() {
        let ladder = ReprLadder::standard_four();
        let r = ladder.lowest();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        let s = b.add_session();
        b.add_user(s, r, r);
        b.symmetric_delays(|_, _| 1.0, |_, _| 1.0);
        b.d_max_ms(0.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn with_uniform_capacity_replaces_all() {
        let inst = two_user_instance();
        let capped = inst.with_uniform_capacity(Capacity::new(100.0, 200.0, 3));
        for a in capped.agents() {
            assert_eq!(a.capacity().upload_mbps, 100.0);
            assert_eq!(a.capacity().download_mbps, 200.0);
            assert_eq!(a.capacity().transcode_slots, 3);
        }
        // Speed factors preserved.
        assert_eq!(capped.agent(AgentId::new(1)).speed_factor(), 2.4);
    }

    #[test]
    fn with_d_max_overrides_bound() {
        let inst = two_user_instance().with_d_max_ms(250.0);
        assert_eq!(inst.d_max_ms(), 250.0);
    }

    #[test]
    #[should_panic(expected = "not added")]
    fn add_user_to_unknown_session_panics() {
        let ladder = ReprLadder::standard_four();
        let r = ladder.lowest();
        let mut b = InstanceBuilder::new(ladder);
        b.add_user(SessionId::new(0), r, r);
    }

    fn two_user_def(inst: &Instance) -> SessionDef {
        let r360 = inst.ladder().by_name("360p").unwrap().id();
        let r720 = inst.ladder().by_name("720p").unwrap().id();
        SessionDef {
            users: vec![
                UserDef {
                    upstream: r720,
                    downstream: DownstreamDemand::uniform(r360),
                    agent_delays_ms: vec![7.0, 9.0],
                    site_index: Some(3),
                },
                UserDef {
                    upstream: r360,
                    downstream: DownstreamDemand::uniform(r360),
                    agent_delays_ms: vec![11.0, 13.0],
                    site_index: None,
                },
            ],
        }
    }

    #[test]
    fn register_session_grows_append_only() {
        let mut inst = two_user_instance();
        let before_users = inst.num_users();
        let before_theta = inst.theta_sum();
        let h_old = inst.h_ms(AgentId::new(1), UserId::new(1));
        let def = two_user_def(&inst);
        let s = inst.register_session(&def).expect("registers");
        assert_eq!(s, SessionId::new(1));
        assert_eq!(inst.num_sessions(), 2);
        assert_eq!(inst.num_users(), before_users + 2);
        // Existing entries are untouched (bitwise).
        assert_eq!(
            inst.h_ms(AgentId::new(1), UserId::new(1)).to_bits(),
            h_old.to_bits()
        );
        // New users landed with their delay columns and session links.
        let u2 = UserId::new(2);
        assert_eq!(inst.user(u2).session(), s);
        assert_eq!(inst.h_ms(AgentId::new(0), u2), 7.0);
        assert_eq!(inst.h_ms(AgentId::new(1), UserId::new(3)), 13.0);
        assert_eq!(inst.user(u2).site_index(), Some(3));
        // The new conference needs one transcode (720p→360p), like s0.
        assert_eq!(inst.theta_sum(), before_theta + 1);
        assert!(inst.theta(u2, UserId::new(3)));
        // Cross-session pairs never transcode.
        assert!(!inst.theta(UserId::new(0), u2));
    }

    #[test]
    fn register_session_is_atomic_on_error() {
        let mut inst = two_user_instance();
        let mut def = two_user_def(&inst);
        def.users[1].agent_delays_ms = vec![1.0]; // wrong length
        let before = inst.clone();
        assert!(inst.register_session(&def).is_err());
        assert_eq!(inst, before);
        def.users[1].agent_delays_ms = vec![1.0, f64::NAN];
        assert!(inst.register_session(&def).is_err());
        assert_eq!(inst, before);
        let empty = SessionDef { users: Vec::new() };
        assert!(inst.register_session(&empty).is_err());
        assert_eq!(inst, before);
    }

    #[test]
    fn register_user_joins_existing_session() {
        let mut inst = two_user_instance();
        let r360 = inst.ladder().by_name("360p").unwrap().id();
        let u = inst
            .register_user(
                SessionId::new(0),
                &UserDef {
                    upstream: r360,
                    downstream: DownstreamDemand::uniform(r360),
                    agent_delays_ms: vec![2.0, 4.0],
                    site_index: None,
                },
            )
            .expect("joins");
        assert_eq!(u, UserId::new(2));
        assert!(inst.session(SessionId::new(0)).contains(u));
        assert_eq!(inst.participants(u).count(), 2);
        assert!(inst
            .register_user(
                SessionId::new(9),
                &UserDef {
                    upstream: r360,
                    downstream: DownstreamDemand::uniform(r360),
                    agent_delays_ms: vec![2.0, 4.0],
                    site_index: None,
                },
            )
            .is_err());
    }

    /// Cross-session downstream overrides are legal in the builder but
    /// semantically inert (`r^d_{uv}` is only queried among fellow
    /// participants). Splitting such an instance must not dangle them:
    /// `prefix` drops overrides pointing past the split, `of_instance`
    /// drops overrides pointing outside the session, and the extracted
    /// tail still re-registers onto the seed.
    #[test]
    fn split_drops_inert_cross_session_overrides() {
        let ladder = ReprLadder::standard_four();
        let r360 = ladder.by_name("360p").unwrap().id();
        let r720 = ladder.by_name("720p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        b.add_agent(AgentSpec::builder("b").build());
        let s0 = b.add_session();
        // u0's override references u2 — a member of the *next* session.
        b.add_user_with_demand(
            s0,
            r720,
            DownstreamDemand::uniform(r360).with_override(UserId::new(2), r720),
        );
        b.add_user(s0, r360, r360);
        let s1 = b.add_session();
        b.add_user(s1, r720, r360);
        // u3's override references u0 — a member of the *previous* one.
        b.add_user_with_demand(
            s1,
            r360,
            DownstreamDemand::uniform(r360).with_override(UserId::new(0), r720),
        );
        b.symmetric_delays(|_, _| 10.0, |l, u| (l + u + 1) as f64);
        let inst = b.build().unwrap();

        let mut seed = inst.prefix(1).expect("prefix splits");
        // The dangling forward override is gone; the demand survives.
        assert!(seed
            .user(UserId::new(0))
            .downstream()
            .overrides()
            .is_empty());
        assert_eq!(
            seed.user(UserId::new(0)).downstream_from(UserId::new(1)),
            r360
        );

        let tail = SessionDef::of_instance(&inst, s1);
        // u3's backward (cross-session, inert) override is dropped too.
        assert!(tail.users[1].downstream.overrides().is_empty());
        let s = seed.register_session(&tail).expect("tail re-registers");
        assert_eq!(s, s1);
        // Semantics are unchanged: every in-session demand matches.
        for u in inst.user_ids() {
            for v in inst.participants(u) {
                assert_eq!(
                    seed.user(u).downstream_from(v),
                    inst.user(u).downstream_from(v)
                );
            }
            assert_eq!(seed.theta_sum(), inst.theta_sum());
        }
    }

    #[test]
    fn register_agent_grows_append_only() {
        let mut inst = two_user_instance();
        let h_old = inst.h_ms(AgentId::new(1), UserId::new(1));
        let d_old = inst.d_ms(AgentId::new(0), AgentId::new(1));
        let def = AgentDef {
            spec: AgentSpec::builder("c").speed_factor(1.0).build(),
            inter_agent_ms: vec![15.0, 25.0],
            user_delays_ms: vec![3.0, 6.0],
        };
        let l = inst.register_agent(&def).expect("registers");
        assert_eq!(l, AgentId::new(2));
        assert_eq!(inst.num_agents(), 3);
        // Existing entries are untouched (bitwise).
        assert_eq!(
            inst.h_ms(AgentId::new(1), UserId::new(1)).to_bits(),
            h_old.to_bits()
        );
        assert_eq!(
            inst.d_ms(AgentId::new(0), AgentId::new(1)).to_bits(),
            d_old.to_bits()
        );
        // New entries landed symmetrically with a zero diagonal.
        assert_eq!(inst.d_ms(l, AgentId::new(0)), 15.0);
        assert_eq!(inst.d_ms(AgentId::new(1), l), 25.0);
        assert_eq!(inst.d_ms(l, l), 0.0);
        assert_eq!(inst.h_ms(l, UserId::new(1)), 6.0);
        assert_eq!(inst.agent(l).name(), "c");
    }

    #[test]
    fn register_agent_is_atomic_on_error() {
        let mut inst = two_user_instance();
        let before = inst.clone();
        let bad_d = AgentDef {
            spec: AgentSpec::builder("c").build(),
            inter_agent_ms: vec![15.0],
            user_delays_ms: vec![3.0, 6.0],
        };
        assert!(inst.register_agent(&bad_d).is_err());
        assert_eq!(inst, before);
        let bad_h = AgentDef {
            spec: AgentSpec::builder("c").build(),
            inter_agent_ms: vec![15.0, 25.0],
            user_delays_ms: vec![3.0],
        };
        assert!(inst.register_agent(&bad_h).is_err());
        assert_eq!(inst, before);
    }

    #[test]
    fn extracted_agent_defs_rebuild_the_instance_exactly() {
        let mut inst = two_user_instance();
        let def = AgentDef {
            spec: AgentSpec::builder("c").speed_factor(1.5).build(),
            inter_agent_ms: vec![15.0, 25.0],
            user_delays_ms: vec![3.0, 6.0],
        };
        inst.register_agent(&def).unwrap();
        // Split back at the two-agent seed and re-register the tail.
        let mut seed = inst.agent_prefix(2).expect("agent prefix");
        assert_eq!(seed.num_agents(), 2);
        assert_eq!(seed.num_users(), inst.num_users());
        let tail = AgentDef::of_instance(&inst, AgentId::new(2));
        let l = seed.register_agent(&tail).unwrap();
        assert_eq!(l, AgentId::new(2));
        assert_eq!(seed, inst);
    }

    #[test]
    fn extracted_defs_rebuild_the_instance_exactly() {
        let mut inst = two_user_instance();
        let def = two_user_def(&inst);
        inst.register_session(&def).unwrap();
        // Split back at the seed and re-register the extracted tail.
        let mut seed = inst.prefix(1).expect("dense prefix");
        assert_eq!(seed.num_users(), 2);
        let tail = SessionDef::of_instance(&inst, SessionId::new(1));
        seed.register_session(&tail).unwrap();
        assert_eq!(seed, inst);
    }
}
