//! Strongly-typed identifiers for the entities of the conferencing model.
//!
//! All identifiers are dense indices (`0..n`) into the corresponding
//! vectors of an [`Instance`](crate::Instance), which keeps every hot-path
//! lookup an array access while the newtypes prevent mixing, say, a user
//! index with an agent index.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a dense index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the dense index as `usize`, suitable for vector indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            pub const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(u32::try_from(v).expect("index exceeds u32::MAX"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// Identifier of a conferencing user (`u ∈ U`).
    UserId,
    "u"
);
dense_id!(
    /// Identifier of a cloud agent (`l ∈ L`), i.e. a VM leased in a cloud site.
    AgentId,
    "a"
);
dense_id!(
    /// Identifier of a conferencing session (`s ∈ S`).
    SessionId,
    "s"
);
dense_id!(
    /// Identifier of a video representation (`r ∈ R`).
    ReprId,
    "r"
);

/// Convenience iterator over the first `n` identifiers of a dense id type.
pub fn id_range<T: From<u32>>(n: usize) -> impl Iterator<Item = T> {
    (0..u32::try_from(n).expect("index exceeds u32::MAX")).map(T::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        let u = UserId::new(7);
        assert_eq!(u.index(), 7);
        assert_eq!(u.as_u32(), 7);
        assert_eq!(UserId::from(7usize), u);
        assert_eq!(UserId::from(7u32), u);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(UserId::new(3).to_string(), "u3");
        assert_eq!(AgentId::new(0).to_string(), "a0");
        assert_eq!(SessionId::new(12).to_string(), "s12");
        assert_eq!(ReprId::new(2).to_string(), "r2");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(AgentId::new(1) < AgentId::new(2));
        let mut v = vec![UserId::new(2), UserId::new(0), UserId::new(1)];
        v.sort();
        assert_eq!(v, vec![UserId::new(0), UserId::new(1), UserId::new(2)]);
    }

    #[test]
    fn id_range_yields_dense_ids() {
        let ids: Vec<AgentId> = id_range(3).collect();
        assert_eq!(ids, vec![AgentId::new(0), AgentId::new(1), AgentId::new(2)]);
    }
}
