//! Video representations and the bitrate ladder.
//!
//! A *representation* is a specific configuration of format, encoding
//! bitrate and spatial resolution of a stream (Sec. II of the paper),
//! e.g. `(720p, 5 Mbps)`. The set `R` of representations in use is
//! modeled as an ordered [`ReprLadder`].

use crate::{ids::ReprId, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A specific stream configuration: resolution plus encoding bitrate.
///
/// Representations are ordered by quality within a [`ReprLadder`];
/// `κ(r)` — the bitrate of representation `r` — is exposed as
/// [`Representation::bitrate_mbps`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Representation {
    id: ReprId,
    name: String,
    height: u32,
    bitrate_kbps: u32,
}

impl Representation {
    /// Creates a representation. `id` must match its position in the ladder.
    pub fn new(id: ReprId, name: impl Into<String>, height: u32, bitrate_kbps: u32) -> Self {
        Self {
            id,
            name: name.into(),
            height,
            bitrate_kbps,
        }
    }

    /// Identifier of this representation within its ladder.
    pub fn id(&self) -> ReprId {
        self.id
    }

    /// Human-readable name, e.g. `"720p"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vertical resolution in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Encoding bitrate in kbit/s.
    pub fn bitrate_kbps(&self) -> u32 {
        self.bitrate_kbps
    }

    /// `κ(r)`: encoding bitrate in Mbit/s, the unit used by all capacity
    /// and traffic computations.
    pub fn bitrate_mbps(&self) -> f64 {
        f64::from(self.bitrate_kbps) / 1000.0
    }
}

impl fmt::Display for Representation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} kbps)", self.name, self.bitrate_kbps)
    }
}

/// The ordered set `R` of representations, ascending in quality.
///
/// The ladder owns the `κ(·)` bitrate table and provides lookups by id and
/// by name. The paper's evaluation uses the YouTube-style four-step ladder
/// available as [`ReprLadder::standard_four`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReprLadder {
    reprs: Vec<Representation>,
}

impl ReprLadder {
    /// Builds a ladder from `(name, height, bitrate_kbps)` steps ordered
    /// ascending in quality.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidLadder`] if the ladder is empty, has
    /// duplicate names, or bitrates are not strictly increasing.
    pub fn from_steps<I, S>(steps: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = (S, u32, u32)>,
        S: Into<String>,
    {
        let reprs: Vec<Representation> = steps
            .into_iter()
            .enumerate()
            .map(|(i, (name, height, kbps))| {
                Representation::new(ReprId::from(i), name, height, kbps)
            })
            .collect();
        if reprs.is_empty() {
            return Err(ModelError::InvalidLadder("ladder must not be empty".into()));
        }
        for w in reprs.windows(2) {
            if w[1].bitrate_kbps <= w[0].bitrate_kbps {
                return Err(ModelError::InvalidLadder(format!(
                    "bitrates must be strictly increasing: {} !< {}",
                    w[0], w[1]
                )));
            }
        }
        for (i, a) in reprs.iter().enumerate() {
            if reprs[..i].iter().any(|b| b.name == a.name) {
                return Err(ModelError::InvalidLadder(format!(
                    "duplicate name {}",
                    a.name
                )));
            }
        }
        Ok(Self { reprs })
    }

    /// The four-step ladder used in the paper's large-scale experiments:
    /// 360p/1 Mbps, 480p/2.5 Mbps, 720p/5 Mbps, 1080p/8 Mbps.
    pub fn standard_four() -> Self {
        Self::from_steps([
            ("360p", 360, 1_000),
            ("480p", 480, 2_500),
            ("720p", 720, 5_000),
            ("1080p", 1080, 8_000),
        ])
        .expect("standard ladder is valid")
    }

    /// A two-step ladder (240p/360p) matching the prototype experiments,
    /// which capture "video frames of device cameras in two representations".
    pub fn prototype_two() -> Self {
        Self::from_steps([("240p", 240, 440), ("360p", 360, 1_000)])
            .expect("prototype ladder is valid")
    }

    /// Number of representations `R`.
    pub fn len(&self) -> usize {
        self.reprs.len()
    }

    /// Whether the ladder has no representations (never true for a built ladder).
    pub fn is_empty(&self) -> bool {
        self.reprs.is_empty()
    }

    /// Looks a representation up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this ladder.
    pub fn repr(&self, id: ReprId) -> &Representation {
        &self.reprs[id.index()]
    }

    /// Checked lookup by id.
    pub fn get(&self, id: ReprId) -> Option<&Representation> {
        self.reprs.get(id.index())
    }

    /// Looks a representation up by name, e.g. `"720p"`.
    pub fn by_name(&self, name: &str) -> Option<&Representation> {
        self.reprs.iter().find(|r| r.name == name)
    }

    /// `κ(r)`: bitrate of `r` in Mbit/s.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this ladder.
    pub fn kappa(&self, id: ReprId) -> f64 {
        self.repr(id).bitrate_mbps()
    }

    /// Iterates over representations in ascending quality order.
    pub fn iter(&self) -> std::slice::Iter<'_, Representation> {
        self.reprs.iter()
    }

    /// All representation ids in ascending quality order.
    pub fn ids(&self) -> impl Iterator<Item = ReprId> + '_ {
        (0..self.reprs.len()).map(ReprId::from)
    }

    /// Returns the id of the highest-quality representation.
    pub fn highest(&self) -> ReprId {
        ReprId::from(self.reprs.len() - 1)
    }

    /// Returns the id of the lowest-quality representation.
    pub fn lowest(&self) -> ReprId {
        ReprId::from(0usize)
    }
}

impl<'a> IntoIterator for &'a ReprLadder {
    type Item = &'a Representation;
    type IntoIter = std::slice::Iter<'a, Representation>;

    fn into_iter(self) -> Self::IntoIter {
        self.reprs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_four_matches_paper() {
        let l = ReprLadder::standard_four();
        assert_eq!(l.len(), 4);
        assert_eq!(l.by_name("720p").unwrap().bitrate_kbps(), 5_000);
        assert!((l.kappa(l.by_name("1080p").unwrap().id()) - 8.0).abs() < 1e-12);
        assert_eq!(l.lowest(), l.by_name("360p").unwrap().id());
        assert_eq!(l.highest(), l.by_name("1080p").unwrap().id());
    }

    #[test]
    fn ladder_rejects_non_increasing_bitrates() {
        let err = ReprLadder::from_steps([("a", 360, 1000), ("b", 480, 1000)]);
        assert!(matches!(err, Err(ModelError::InvalidLadder(_))));
        let err = ReprLadder::from_steps([("a", 360, 2000), ("b", 480, 1000)]);
        assert!(matches!(err, Err(ModelError::InvalidLadder(_))));
    }

    #[test]
    fn ladder_rejects_empty_and_duplicates() {
        let empty: [(&str, u32, u32); 0] = [];
        assert!(ReprLadder::from_steps(empty).is_err());
        assert!(ReprLadder::from_steps([("a", 360, 1000), ("a", 480, 2000)]).is_err());
    }

    #[test]
    fn kappa_converts_to_mbps() {
        let l = ReprLadder::prototype_two();
        let r240 = l.by_name("240p").unwrap();
        assert!((r240.bitrate_mbps() - 0.44).abs() < 1e-12);
        assert_eq!(l.kappa(r240.id()), r240.bitrate_mbps());
    }

    #[test]
    fn ids_are_positional() {
        let l = ReprLadder::standard_four();
        for (i, r) in l.iter().enumerate() {
            assert_eq!(r.id().index(), i);
            assert_eq!(l.repr(r.id()).name(), r.name());
        }
        let ids: Vec<_> = l.ids().collect();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn display_formats() {
        let l = ReprLadder::standard_four();
        assert_eq!(l.repr(ReprId::new(2)).to_string(), "720p (5000 kbps)");
    }
}
