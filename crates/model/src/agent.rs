//! Cloud agents: VMs leased from geo-distributed cloud sites.
//!
//! Each agent `l ∈ L` is described by the quadruple
//! `{u_l, d_l, t_l, σ_l(·)}` — upload capacity, download capacity,
//! transcoding capacity (concurrent tasks) and transcoding latency
//! (Sec. II). The latency function is shared across agents via
//! [`TranscodeLatencyModel`](crate::TranscodeLatencyModel) scaled by the
//! per-agent [`speed_factor`](AgentSpec::speed_factor): more powerful
//! agents transcode faster.

use serde::{Deserialize, Serialize};

/// Resource capacities of one agent: the `{u_l, d_l, t_l}` triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capacity {
    /// Upload capacity `u_l` in Mbit/s.
    pub upload_mbps: f64,
    /// Download capacity `d_l` in Mbit/s.
    pub download_mbps: f64,
    /// Transcoding capacity `t_l`: number of concurrent transcoding tasks.
    pub transcode_slots: u32,
}

impl Capacity {
    /// Effectively unconstrained capacity, used by experiments that state
    /// "we set the capacity of agents to be large enough".
    pub const UNLIMITED: Capacity = Capacity {
        upload_mbps: f64::INFINITY,
        download_mbps: f64::INFINITY,
        transcode_slots: u32::MAX,
    };

    /// Creates a capacity triple.
    pub fn new(upload_mbps: f64, download_mbps: f64, transcode_slots: u32) -> Self {
        Self {
            upload_mbps,
            download_mbps,
            transcode_slots,
        }
    }

    /// Whether all three components are non-negative (infinite allowed).
    pub fn is_valid(&self) -> bool {
        self.upload_mbps >= 0.0 && self.download_mbps >= 0.0
    }
}

impl Default for Capacity {
    fn default() -> Self {
        Capacity::UNLIMITED
    }
}

/// Static description of one cloud agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentSpec {
    name: String,
    capacity: Capacity,
    speed_factor: f64,
    price_per_mbps: f64,
    price_per_task: f64,
}

impl AgentSpec {
    /// Starts building an agent with the given site name
    /// (e.g. `"ec2-tokyo"`). Defaults: unlimited capacity, speed factor 1.0,
    /// unit prices.
    pub fn builder(name: impl Into<String>) -> AgentBuilder {
        AgentBuilder {
            spec: AgentSpec {
                name: name.into(),
                capacity: Capacity::UNLIMITED,
                speed_factor: 1.0,
                price_per_mbps: 1.0,
                price_per_task: 1.0,
            },
        }
    }

    /// Site name of the agent.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resource capacities `{u_l, d_l, t_l}`.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Transcoding-speed multiplier applied to the shared latency model:
    /// 1.0 is the reference machine, larger is slower.
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Unit price of inter-agent ingress bandwidth at this agent
    /// (feeds the convex bandwidth cost `g_l`).
    pub fn price_per_mbps(&self) -> f64 {
        self.price_per_mbps
    }

    /// Unit price of one concurrent transcoding task at this agent
    /// (feeds the convex transcoding cost `h_l`).
    pub fn price_per_task(&self) -> f64 {
        self.price_per_task
    }
}

/// Builder for [`AgentSpec`] (non-consuming terminal not needed; cheap clone).
#[derive(Debug, Clone)]
pub struct AgentBuilder {
    spec: AgentSpec,
}

impl AgentBuilder {
    /// Sets the upload capacity `u_l` in Mbit/s.
    pub fn upload_mbps(mut self, v: f64) -> Self {
        self.spec.capacity.upload_mbps = v;
        self
    }

    /// Sets the download capacity `d_l` in Mbit/s.
    pub fn download_mbps(mut self, v: f64) -> Self {
        self.spec.capacity.download_mbps = v;
        self
    }

    /// Sets the transcoding capacity `t_l` in concurrent tasks.
    pub fn transcode_slots(mut self, v: u32) -> Self {
        self.spec.capacity.transcode_slots = v;
        self
    }

    /// Sets the whole capacity triple at once.
    pub fn capacity(mut self, c: Capacity) -> Self {
        self.spec.capacity = c;
        self
    }

    /// Sets the transcoding-speed multiplier (1.0 = reference, larger = slower).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not strictly positive.
    pub fn speed_factor(mut self, v: f64) -> Self {
        assert!(v > 0.0, "speed factor must be positive, got {v}");
        self.spec.speed_factor = v;
        self
    }

    /// Sets the unit price of inter-agent ingress bandwidth.
    pub fn price_per_mbps(mut self, v: f64) -> Self {
        self.spec.price_per_mbps = v;
        self
    }

    /// Sets the unit price of a transcoding task.
    pub fn price_per_task(mut self, v: f64) -> Self {
        self.spec.price_per_task = v;
        self
    }

    /// Finishes building the agent.
    pub fn build(self) -> AgentSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let a = AgentSpec::builder("tokyo")
            .upload_mbps(800.0)
            .download_mbps(600.0)
            .transcode_slots(40)
            .speed_factor(1.5)
            .price_per_mbps(0.02)
            .price_per_task(0.5)
            .build();
        assert_eq!(a.name(), "tokyo");
        assert_eq!(a.capacity().upload_mbps, 800.0);
        assert_eq!(a.capacity().download_mbps, 600.0);
        assert_eq!(a.capacity().transcode_slots, 40);
        assert_eq!(a.speed_factor(), 1.5);
        assert_eq!(a.price_per_mbps(), 0.02);
        assert_eq!(a.price_per_task(), 0.5);
    }

    #[test]
    fn defaults_are_unlimited_unit_price() {
        let a = AgentSpec::builder("x").build();
        assert!(a.capacity().upload_mbps.is_infinite());
        assert!(a.capacity().download_mbps.is_infinite());
        assert_eq!(a.capacity().transcode_slots, u32::MAX);
        assert_eq!(a.speed_factor(), 1.0);
        assert_eq!(a.price_per_mbps(), 1.0);
    }

    #[test]
    #[should_panic(expected = "speed factor must be positive")]
    fn zero_speed_factor_panics() {
        let _ = AgentSpec::builder("x").speed_factor(0.0);
    }

    #[test]
    fn capacity_validity() {
        assert!(Capacity::UNLIMITED.is_valid());
        assert!(Capacity::new(0.0, 0.0, 0).is_valid());
        assert!(!Capacity::new(-1.0, 0.0, 0).is_valid());
    }
}
