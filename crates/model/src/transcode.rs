//! Transcoding latency model `σ_l(r1, r2)`.
//!
//! The paper requires `σ_l` to be "an increasing function of the bit-rates
//! of both the input (r1) and output (r2) representations", with measured
//! prototype values in `[30, 60]` ms depending on agent processing power.
//! We model the reference latency as an affine function of the two bitrates
//! and scale it by the per-agent speed factor:
//!
//! ```text
//! σ_l(r1, r2) = speed_factor_l × (base + c_in·κ(r1) + c_out·κ(r2))
//! ```

use serde::{Deserialize, Serialize};

/// Affine-in-bitrate transcoding latency model shared by all agents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TranscodeLatencyModel {
    base_ms: f64,
    per_input_mbps_ms: f64,
    per_output_mbps_ms: f64,
}

impl TranscodeLatencyModel {
    /// Creates a latency model.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or non-finite.
    pub fn new(base_ms: f64, per_input_mbps_ms: f64, per_output_mbps_ms: f64) -> Self {
        assert!(
            base_ms.is_finite() && base_ms >= 0.0,
            "base latency must be finite and non-negative"
        );
        assert!(
            per_input_mbps_ms.is_finite() && per_input_mbps_ms >= 0.0,
            "input coefficient must be finite and non-negative"
        );
        assert!(
            per_output_mbps_ms.is_finite() && per_output_mbps_ms >= 0.0,
            "output coefficient must be finite and non-negative"
        );
        Self {
            base_ms,
            per_input_mbps_ms,
            per_output_mbps_ms,
        }
    }

    /// Calibrated so a reference agent transcoding 720p (5 Mbps) down to
    /// 480p (2.5 Mbps) takes 25 ms; with the paper's speed factors in
    /// `[1.2, 2.4]` this lands in the measured `[30, 60]` ms band.
    pub fn paper_default() -> Self {
        Self::new(10.0, 2.0, 2.0)
    }

    /// Fixed-latency model (useful in tests): `σ = c` regardless of bitrates.
    pub fn constant(latency_ms: f64) -> Self {
        Self::new(latency_ms, 0.0, 0.0)
    }

    /// Reference (speed factor 1.0) latency for transcoding a stream of
    /// `input_mbps` into `output_mbps`.
    pub fn reference_latency_ms(&self, input_mbps: f64, output_mbps: f64) -> f64 {
        self.base_ms + self.per_input_mbps_ms * input_mbps + self.per_output_mbps_ms * output_mbps
    }

    /// `σ_l(r1, r2)` for an agent with the given speed factor.
    pub fn latency_ms(&self, speed_factor: f64, input_mbps: f64, output_mbps: f64) -> f64 {
        speed_factor * self.reference_latency_ms(input_mbps, output_mbps)
    }

    /// Base latency coefficient in ms.
    pub fn base_ms(&self) -> f64 {
        self.base_ms
    }

    /// Latency per input Mbit/s, in ms.
    pub fn per_input_mbps_ms(&self) -> f64 {
        self.per_input_mbps_ms
    }

    /// Latency per output Mbit/s, in ms.
    pub fn per_output_mbps_ms(&self) -> f64 {
        self.per_output_mbps_ms
    }
}

impl Default for TranscodeLatencyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_calibration() {
        let m = TranscodeLatencyModel::paper_default();
        // 720p (5 Mbps) -> 480p (2.5 Mbps) on the reference agent: 25 ms.
        assert!((m.reference_latency_ms(5.0, 2.5) - 25.0).abs() < 1e-12);
        // Speed factors 1.2 and 2.4 span the paper's [30, 60] ms band.
        assert!((m.latency_ms(1.2, 5.0, 2.5) - 30.0).abs() < 1e-9);
        assert!((m.latency_ms(2.4, 5.0, 2.5) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn increasing_in_both_bitrates() {
        let m = TranscodeLatencyModel::paper_default();
        let base = m.reference_latency_ms(2.0, 1.0);
        assert!(m.reference_latency_ms(3.0, 1.0) > base);
        assert!(m.reference_latency_ms(2.0, 2.0) > base);
    }

    #[test]
    fn constant_model_ignores_bitrates() {
        let m = TranscodeLatencyModel::constant(42.0);
        assert_eq!(m.latency_ms(1.0, 0.5, 8.0), 42.0);
        assert_eq!(m.latency_ms(1.0, 8.0, 0.5), 42.0);
        assert_eq!(m.latency_ms(2.0, 1.0, 1.0), 84.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_coefficient_panics() {
        let _ = TranscodeLatencyModel::new(10.0, -1.0, 0.0);
    }
}
