//! Conferencing sessions: groups of users that exchange streams.

use crate::{SessionId, UserId};
use serde::{Deserialize, Serialize};

/// Static description of one conferencing session `s` with its user set
/// `U(s)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSpec {
    id: SessionId,
    users: Vec<UserId>,
    /// Whether a user joined this session *after* construction via
    /// `Instance::register_user` (a late joiner). Derived layers that
    /// cache per-session structure (task tables, demand caches) use
    /// this to refuse extension over a session they no longer cover.
    late_joined: bool,
}

impl SessionSpec {
    /// Creates a session with the given members.
    pub fn new(id: SessionId, users: Vec<UserId>) -> Self {
        Self {
            id,
            users,
            late_joined: false,
        }
    }

    /// Whether a late joiner was registered into this session after
    /// construction (see `Instance::register_user`).
    pub fn late_joined(&self) -> bool {
        self.late_joined
    }

    pub(crate) fn mark_late_joined(&mut self) {
        self.late_joined = true;
    }

    /// Identifier of this session.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// `U(s)`: the users of this session.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Number of participants `|U(s)|`.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the session has no members (invalid in a built instance).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// `P(u)`: the other participants of the session, excluding `u`.
    pub fn participants_except(&self, u: UserId) -> impl Iterator<Item = UserId> + '_ {
        self.users.iter().copied().filter(move |v| *v != u)
    }

    /// Whether `u` is a member of this session.
    pub fn contains(&self, u: UserId) -> bool {
        self.users.contains(&u)
    }

    /// All ordered pairs `(u, v)` with `u ≠ v`, i.e. every directed flow
    /// within the session.
    pub fn flows(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        self.users.iter().flat_map(move |&u| {
            self.users
                .iter()
                .filter(move |&&v| v != u)
                .map(move |&v| (u, v))
        })
    }

    pub(crate) fn push_user(&mut self, u: UserId) {
        self.users.push(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SessionSpec {
        SessionSpec::new(
            SessionId::new(0),
            vec![UserId::new(0), UserId::new(1), UserId::new(2)],
        )
    }

    #[test]
    fn participants_except_excludes_self() {
        let s = session();
        let others: Vec<_> = s.participants_except(UserId::new(1)).collect();
        assert_eq!(others, vec![UserId::new(0), UserId::new(2)]);
    }

    #[test]
    fn flows_enumerates_all_ordered_pairs() {
        let s = session();
        let flows: Vec<_> = s.flows().collect();
        assert_eq!(flows.len(), 6); // 3 users × 2 destinations
        assert!(flows.contains(&(UserId::new(0), UserId::new(2))));
        assert!(flows.contains(&(UserId::new(2), UserId::new(0))));
        assert!(!flows.contains(&(UserId::new(1), UserId::new(1))));
    }

    #[test]
    fn membership_and_len() {
        let s = session();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(UserId::new(2)));
        assert!(!s.contains(UserId::new(3)));
    }
}
