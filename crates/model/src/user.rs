//! Conferencing users and their representation demands.
//!
//! Each user `u` produces its stream in an *upstream* representation
//! `r^u_u` and demands a *downstream* representation `r^d_{uv}` of the
//! stream from each other participant `v` (Sec. II). Demands are stored
//! as a session-wide default plus per-source overrides, which covers both
//! the paper's homogeneous experiments ("80% of users demand 720p") and
//! fully heterogeneous device mixes.

use crate::{ids::ReprId, SessionId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Downstream demand of one user: the representation it wants of each
/// other participant's stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DownstreamDemand {
    default: ReprId,
    overrides: BTreeMap<UserId, ReprId>,
}

impl DownstreamDemand {
    /// Demand the same representation from every participant.
    pub fn uniform(repr: ReprId) -> Self {
        Self {
            default: repr,
            overrides: BTreeMap::new(),
        }
    }

    /// Adds a per-source override: demand `repr` specifically from `source`.
    pub fn with_override(mut self, source: UserId, repr: ReprId) -> Self {
        self.overrides.insert(source, repr);
        self
    }

    /// `r^d_{uv}`: the representation this user demands of `source`'s stream.
    pub fn from_source(&self, source: UserId) -> ReprId {
        self.overrides.get(&source).copied().unwrap_or(self.default)
    }

    /// The default demanded representation.
    pub fn default_repr(&self) -> ReprId {
        self.default
    }

    /// Per-source overrides.
    pub fn overrides(&self) -> &BTreeMap<UserId, ReprId> {
        &self.overrides
    }
}

/// Static description of one conferencing user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserSpec {
    id: UserId,
    session: SessionId,
    upstream: ReprId,
    downstream: DownstreamDemand,
    /// Index of the user's location in the site catalog that generated the
    /// delay matrices (informational; delay lookups go through `H`).
    site_index: Option<usize>,
}

impl UserSpec {
    /// Creates a user producing `upstream` and demanding `downstream`.
    pub fn new(
        id: UserId,
        session: SessionId,
        upstream: ReprId,
        downstream: DownstreamDemand,
    ) -> Self {
        Self {
            id,
            session,
            upstream,
            downstream,
            site_index: None,
        }
    }

    /// Attaches the index of the geographic site this user was placed at.
    pub fn with_site_index(mut self, site: usize) -> Self {
        self.site_index = Some(site);
        self
    }

    /// Identifier of this user.
    pub fn id(&self) -> UserId {
        self.id
    }

    /// `s(u)`: the session this user belongs to.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// `r^u_u`: the representation this user produces.
    pub fn upstream(&self) -> ReprId {
        self.upstream
    }

    /// `r^d_{uv}`: the representation this user demands of `source`'s stream.
    pub fn downstream_from(&self, source: UserId) -> ReprId {
        self.downstream.from_source(source)
    }

    /// The full downstream demand description.
    pub fn downstream(&self) -> &DownstreamDemand {
        &self.downstream
    }

    /// Geographic site index, if recorded by the workload generator.
    pub fn site_index(&self) -> Option<usize> {
        self.site_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_demand_applies_to_all_sources() {
        let d = DownstreamDemand::uniform(ReprId::new(2));
        assert_eq!(d.from_source(UserId::new(0)), ReprId::new(2));
        assert_eq!(d.from_source(UserId::new(99)), ReprId::new(2));
        assert_eq!(d.default_repr(), ReprId::new(2));
    }

    #[test]
    fn overrides_take_precedence() {
        let d =
            DownstreamDemand::uniform(ReprId::new(2)).with_override(UserId::new(5), ReprId::new(0));
        assert_eq!(d.from_source(UserId::new(5)), ReprId::new(0));
        assert_eq!(d.from_source(UserId::new(6)), ReprId::new(2));
        assert_eq!(d.overrides().len(), 1);
    }

    #[test]
    fn user_spec_accessors() {
        let u = UserSpec::new(
            UserId::new(3),
            SessionId::new(1),
            ReprId::new(2),
            DownstreamDemand::uniform(ReprId::new(1)),
        )
        .with_site_index(17);
        assert_eq!(u.id(), UserId::new(3));
        assert_eq!(u.session(), SessionId::new(1));
        assert_eq!(u.upstream(), ReprId::new(2));
        assert_eq!(u.downstream_from(UserId::new(0)), ReprId::new(1));
        assert_eq!(u.site_index(), Some(17));
    }
}
