//! Domain model for cloud-assisted video conferencing.
//!
//! This crate defines the *problem data* of the ICDCS 2015 paper
//! "Cost-Effective Low-Delay Cloud Video Conferencing": conferencing
//! sessions and their users, video representations (format/bitrate
//! ladder), heterogeneous cloud agents, inter-agent and agent-to-user
//! delay matrices, and the transcoding-latency model `σ_l(r1, r2)`.
//!
//! Everything here is plain data with validation; the optimization
//! problem built on top of it (assignment variables, constraints,
//! objective) lives in `vc-core`.
//!
//! # Example
//!
//! ```
//! use vc_model::{InstanceBuilder, ReprLadder, AgentSpec, TranscodeLatencyModel};
//!
//! let ladder = ReprLadder::standard_four();
//! let r360 = ladder.by_name("360p").unwrap().id();
//! let r720 = ladder.by_name("720p").unwrap().id();
//!
//! let mut b = InstanceBuilder::new(ladder);
//! let a0 = b.add_agent(AgentSpec::builder("tokyo").upload_mbps(500.0).build());
//! let a1 = b.add_agent(AgentSpec::builder("oregon").build());
//! let s = b.add_session();
//! b.add_user(s, r720, r360);
//! b.add_user(s, r720, r720);
//! b.symmetric_delays(|_, _| 50.0, |_, _| 10.0);
//! let instance = b.build().unwrap();
//! assert_eq!(instance.num_users(), 2);
//! assert_eq!(instance.num_agents(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod delay;
mod error;
mod ids;
mod instance;
mod repr;
mod session;
mod transcode;
mod user;

pub use agent::{AgentBuilder, AgentSpec, Capacity};
pub use delay::{DelayMatrices, Matrix};
pub use error::ModelError;
pub use ids::{id_range, AgentId, ReprId, SessionId, UserId};
pub use instance::{AgentDef, Instance, InstanceBuilder, SessionDef, UserDef};
pub use repr::{ReprLadder, Representation};
pub use session::SessionSpec;
pub use transcode::TranscodeLatencyModel;
pub use user::{DownstreamDemand, UserSpec};

/// Maximum acceptable end-to-end conferencing delay in milliseconds,
/// per ITU-T Recommendation G.114 (the paper's `Dmax`).
pub const DEFAULT_D_MAX_MS: f64 = 400.0;
