//! Error type for model construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating an [`Instance`](crate::Instance).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The representation ladder is malformed (empty, duplicate names,
    /// or non-increasing bitrates).
    InvalidLadder(String),
    /// A matrix was created with the wrong number of elements.
    DimensionMismatch {
        /// Expected element count (`rows × cols`).
        expected: usize,
        /// Actual element count supplied.
        actual: usize,
    },
    /// Delay matrices are malformed (negative entries, non-square `D`,
    /// non-zero diagonal, or inconsistent agent counts).
    InvalidDelays(String),
    /// An entity references an id that does not exist in the instance.
    UnknownId(String),
    /// Instance-level consistency violation (empty session, user/session
    /// mapping mismatch, non-positive `Dmax`, ...).
    Inconsistent(String),
    /// Append-only extension of a derived structure (task table, demand
    /// cache, fleet universe) was attempted over an instance in which a
    /// session it already covers gained a late joiner
    /// (`Instance::register_user`). Extension only scans *new*
    /// sessions, so it would silently miss the late joiner's flows —
    /// rebuild the derived structure from scratch instead.
    LateJoinExtension {
        /// The first already-covered session that was mutated.
        session: crate::SessionId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidLadder(msg) => write!(f, "invalid representation ladder: {msg}"),
            ModelError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "matrix dimension mismatch: expected {expected} elements, got {actual}"
                )
            }
            ModelError::InvalidDelays(msg) => write!(f, "invalid delay matrices: {msg}"),
            ModelError::UnknownId(msg) => write!(f, "unknown identifier: {msg}"),
            ModelError::Inconsistent(msg) => write!(f, "inconsistent instance: {msg}"),
            ModelError::LateJoinExtension { session } => write!(
                f,
                "append-only extension refused: covered session {session} gained a late \
                 joiner (rebuild the derived structure instead of extending it)"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::InvalidLadder("x".into());
        assert!(e.to_string().starts_with("invalid representation ladder"));
        let e = ModelError::DimensionMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
