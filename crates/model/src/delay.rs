//! Delay matrices: inter-agent (`D`, `L×L`) and agent-to-user (`H`, `L×U`).
//!
//! The paper assumes the provider "obtains agent-to-user and inter-agent
//! delays through active measurements"; here they are plain matrices of
//! one-way propagation delays in milliseconds, produced either by the
//! synthetic geography model in `vc-net` or hand-entered measurement data
//! (e.g. the Fig. 2 scenario).

use crate::{AgentId, ModelError, UserId};
use serde::{Deserialize, Serialize};

/// Dense row-major `rows×cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ModelError> {
        if data.len() != rows * cols {
            return Err(ModelError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix by tabulating `f(row, col)`.
    pub fn tabulate(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of one row.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Minimum over all entries (NaN-free input assumed).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum over all entries (NaN-free input assumed).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Whether all entries are finite and non-negative.
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Appends `columns.len()` new columns in one restride pass:
    /// `columns[j][r]` becomes the value at `(r, old_cols + j)`.
    /// Existing entries keep their values (and, semantically, their
    /// indices) — the open-world growth primitive.
    ///
    /// # Panics
    ///
    /// Panics if any column's length differs from the row count.
    pub fn push_columns(&mut self, columns: &[&[f64]]) {
        if columns.is_empty() {
            return;
        }
        for col in columns {
            assert_eq!(col.len(), self.rows, "column length must equal row count");
        }
        let new_cols = self.cols + columns.len();
        let mut data = Vec::with_capacity(self.rows * new_cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
            data.extend(columns.iter().map(|col| col[r]));
        }
        self.data = data;
        self.cols = new_cols;
    }
}

/// The pair of delay matrices the optimizer consumes.
///
/// `inter_agent` is `D = [D_lk]` (`L×L`, one-way ms, zero diagonal);
/// `agent_user` is `H = [H_lu]` (`L×U`, one-way ms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayMatrices {
    inter_agent: Matrix,
    agent_user: Matrix,
}

impl DelayMatrices {
    /// Creates and validates the matrix pair.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDelays`] if `D` is not square with a zero
    /// diagonal, if the row counts disagree, or if any entry is negative or
    /// non-finite.
    pub fn new(inter_agent: Matrix, agent_user: Matrix) -> Result<Self, ModelError> {
        if inter_agent.rows() != inter_agent.cols() {
            return Err(ModelError::InvalidDelays(format!(
                "inter-agent matrix must be square, got {}×{}",
                inter_agent.rows(),
                inter_agent.cols()
            )));
        }
        if inter_agent.rows() != agent_user.rows() {
            return Err(ModelError::InvalidDelays(format!(
                "matrix agent counts disagree: D has {}, H has {}",
                inter_agent.rows(),
                agent_user.rows()
            )));
        }
        if !inter_agent.is_nonnegative() || !agent_user.is_nonnegative() {
            return Err(ModelError::InvalidDelays(
                "delays must be finite and non-negative".into(),
            ));
        }
        for l in 0..inter_agent.rows() {
            if inter_agent.at(l, l) != 0.0 {
                return Err(ModelError::InvalidDelays(format!(
                    "inter-agent diagonal must be zero, D[{l}][{l}] = {}",
                    inter_agent.at(l, l)
                )));
            }
        }
        Ok(Self {
            inter_agent,
            agent_user,
        })
    }

    /// Number of agents `L` covered by the matrices.
    pub fn num_agents(&self) -> usize {
        self.inter_agent.rows()
    }

    /// Number of users `U` covered by the matrices.
    pub fn num_users(&self) -> usize {
        self.agent_user.cols()
    }

    /// `D_lk`: one-way delay between agents `l` and `k` in ms.
    #[inline]
    pub fn inter_agent_ms(&self, l: AgentId, k: AgentId) -> f64 {
        self.inter_agent.at(l.index(), k.index())
    }

    /// `H_lu`: one-way delay between agent `l` and user `u` in ms.
    #[inline]
    pub fn agent_user_ms(&self, l: AgentId, u: UserId) -> f64 {
        self.agent_user.at(l.index(), u.index())
    }

    /// The raw inter-agent matrix `D`.
    pub fn inter_agent(&self) -> &Matrix {
        &self.inter_agent
    }

    /// The raw agent-to-user matrix `H`.
    pub fn agent_user(&self) -> &Matrix {
        &self.agent_user
    }

    /// Agents sorted by proximity to user `u` (nearest first), the primitive
    /// behind both the Nrst baseline and AgRank's potential-agent lists.
    pub fn agents_by_proximity(&self, u: UserId) -> Vec<AgentId> {
        let mut agents: Vec<AgentId> = (0..self.num_agents()).map(AgentId::from).collect();
        agents.sort_by(|a, b| {
            self.agent_user_ms(*a, u)
                .partial_cmp(&self.agent_user_ms(*b, u))
                .expect("delays are non-NaN")
                .then(a.cmp(b))
        });
        agents
    }

    /// The nearest agent to user `u`.
    ///
    /// # Panics
    ///
    /// Panics if there are no agents.
    pub fn nearest_agent(&self, u: UserId) -> AgentId {
        self.agents_by_proximity(u)[0]
    }

    /// Appends one `H` column per new user (each `columns[j]` holds the
    /// one-way agent-to-user delays in ms, agent order). `D` is
    /// untouched: the agent pool is fixed.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidDelays`] if any column has the wrong length
    /// or a negative/non-finite entry; the matrices are unchanged on
    /// error.
    pub fn push_user_columns(&mut self, columns: &[&[f64]]) -> Result<(), ModelError> {
        for col in columns {
            if col.len() != self.num_agents() {
                return Err(ModelError::InvalidDelays(format!(
                    "new user column covers {} agents, matrices have {}",
                    col.len(),
                    self.num_agents()
                )));
            }
            if !col.iter().all(|v| v.is_finite() && *v >= 0.0) {
                return Err(ModelError::InvalidDelays(
                    "new user delays must be finite and non-negative".into(),
                ));
            }
        }
        self.agent_user.push_columns(columns);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> DelayMatrices {
        // D: 2 agents; H: 2 agents × 3 users.
        let d = Matrix::from_rows(2, 2, vec![0.0, 50.0, 50.0, 0.0]).unwrap();
        let h = Matrix::from_rows(2, 3, vec![10.0, 20.0, 30.0, 25.0, 15.0, 5.0]).unwrap();
        DelayMatrices::new(d, h).unwrap()
    }

    #[test]
    fn matrix_indexing_round_trips() {
        let mut m = Matrix::filled(2, 3, 0.0);
        m.set(1, 2, 7.5);
        assert_eq!(m.at(1, 2), 7.5);
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.5]);
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 7.5);
    }

    #[test]
    fn from_rows_checks_dimensions() {
        assert!(Matrix::from_rows(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_rows(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn tabulate_fills_by_function() {
        let m = Matrix::tabulate(3, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.at(2, 1), 21.0);
    }

    #[test]
    fn delay_matrices_accessors() {
        let d = simple();
        assert_eq!(d.num_agents(), 2);
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.inter_agent_ms(AgentId::new(0), AgentId::new(1)), 50.0);
        assert_eq!(d.agent_user_ms(AgentId::new(1), UserId::new(2)), 5.0);
    }

    #[test]
    fn rejects_nonzero_diagonal() {
        let d = Matrix::from_rows(2, 2, vec![1.0, 50.0, 50.0, 0.0]).unwrap();
        let h = Matrix::filled(2, 1, 0.0);
        assert!(matches!(
            DelayMatrices::new(d, h),
            Err(ModelError::InvalidDelays(_))
        ));
    }

    #[test]
    fn rejects_negative_delay() {
        let d = Matrix::from_rows(2, 2, vec![0.0, -3.0, 50.0, 0.0]).unwrap();
        let h = Matrix::filled(2, 1, 0.0);
        assert!(DelayMatrices::new(d, h).is_err());
    }

    #[test]
    fn rejects_disagreeing_agent_counts() {
        let d = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let h = Matrix::filled(3, 1, 0.0);
        assert!(DelayMatrices::new(d, h).is_err());
    }

    #[test]
    fn rejects_non_square_inter_agent() {
        let d = Matrix::filled(2, 3, 0.0);
        let h = Matrix::filled(2, 1, 0.0);
        assert!(DelayMatrices::new(d, h).is_err());
    }

    #[test]
    fn proximity_ordering() {
        let d = simple();
        // User 2: agent 1 is at 5 ms, agent 0 at 30 ms.
        assert_eq!(
            d.agents_by_proximity(UserId::new(2)),
            vec![AgentId::new(1), AgentId::new(0)]
        );
        assert_eq!(d.nearest_agent(UserId::new(0)), AgentId::new(0));
    }

    #[test]
    fn proximity_tie_breaks_by_id() {
        let d = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let h = Matrix::from_rows(2, 1, vec![10.0, 10.0]).unwrap();
        let dm = DelayMatrices::new(d, h).unwrap();
        assert_eq!(dm.nearest_agent(UserId::new(0)), AgentId::new(0));
    }
}
