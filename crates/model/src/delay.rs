//! Delay matrices: inter-agent (`D`, `L×L`) and agent-to-user (`H`, `L×U`).
//!
//! The paper assumes the provider "obtains agent-to-user and inter-agent
//! delays through active measurements"; here they are plain matrices of
//! one-way propagation delays in milliseconds, produced either by the
//! synthetic geography model in `vc-net` or hand-entered measurement data
//! (e.g. the Fig. 2 scenario).

use crate::{AgentId, ModelError, UserId};
use serde::{Deserialize, Serialize};

/// Dense row-major `rows×cols` matrix of `f64`.
///
/// Rows are stored with a physical stride of `col_cap ≥ cols` columns:
/// [`push_columns`](Self::push_columns) fills the spare capacity in
/// place and doubles it on overflow, so appending a column is `O(rows)`
/// amortized instead of a full `O(rows×cols)` restride — the primitive
/// behind sublinear open-world growth. Padding cells are never part of
/// the matrix: equality, extrema, and validation see logical cells only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Physical row stride (`≥ cols`); `data.len() == rows * col_cap`.
    col_cap: usize,
    data: Vec<f64>,
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        // Compare logical cells only — two equal matrices may carry
        // different spare column capacity.
        self.rows == other.rows
            && self.cols == other.cols
            && (0..self.rows).all(|r| self.row(r) == other.row(r))
    }
}

impl Matrix {
    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            col_cap: cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ModelError> {
        if data.len() != rows * cols {
            return Err(ModelError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self {
            rows,
            cols,
            col_cap: cols,
            data,
        })
    }

    /// Creates a matrix by tabulating `f(row, col)`.
    pub fn tabulate(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self {
            rows,
            cols,
            col_cap: cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.col_cap + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.col_cap + col] = value;
    }

    /// Borrow of one row.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.col_cap..row * self.col_cap + self.cols]
    }

    /// Minimum over all entries (NaN-free input assumed).
    pub fn min(&self) -> f64 {
        (0..self.rows)
            .flat_map(|r| self.row(r))
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum over all entries (NaN-free input assumed).
    pub fn max(&self) -> f64 {
        (0..self.rows)
            .flat_map(|r| self.row(r))
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Whether all entries are finite and non-negative.
    pub fn is_nonnegative(&self) -> bool {
        (0..self.rows)
            .flat_map(|r| self.row(r))
            .all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Appends `columns.len()` new columns: `columns[j][r]` becomes the
    /// value at `(r, old_cols + j)`. Existing entries keep their values
    /// (and, semantically, their indices) — the open-world growth
    /// primitive. Columns land in the spare per-row capacity when it
    /// suffices; otherwise capacity at least doubles and the matrix
    /// restrides once, so appending is `O(rows)` amortized per column.
    ///
    /// # Panics
    ///
    /// Panics if any column's length differs from the row count.
    pub fn push_columns(&mut self, columns: &[&[f64]]) {
        if columns.is_empty() {
            return;
        }
        for col in columns {
            assert_eq!(col.len(), self.rows, "column length must equal row count");
        }
        let new_cols = self.cols + columns.len();
        if new_cols > self.col_cap {
            let new_cap = new_cols.max(self.col_cap * 2).max(4);
            let mut data = vec![0.0; self.rows * new_cap];
            for r in 0..self.rows {
                data[r * new_cap..r * new_cap + self.cols]
                    .copy_from_slice(&self.data[r * self.col_cap..r * self.col_cap + self.cols]);
            }
            self.data = data;
            self.col_cap = new_cap;
        }
        for r in 0..self.rows {
            for (j, col) in columns.iter().enumerate() {
                self.data[r * self.col_cap + self.cols + j] = col[r];
            }
        }
        self.cols = new_cols;
    }

    /// Appends one row (`row.len()` must equal the column count) in
    /// `O(col_cap)` — the agent-axis twin of
    /// [`push_columns`](Self::push_columns).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length must equal column count");
        let start = self.rows * self.col_cap;
        self.data.resize(start + self.col_cap, 0.0);
        self.data[start..start + self.cols].copy_from_slice(row);
        self.rows += 1;
    }
}

/// The pair of delay matrices the optimizer consumes.
///
/// `inter_agent` is `D = [D_lk]` (`L×L`, one-way ms, zero diagonal);
/// `agent_user` is `H = [H_lu]` (`L×U`, one-way ms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayMatrices {
    inter_agent: Matrix,
    agent_user: Matrix,
}

impl DelayMatrices {
    /// Creates and validates the matrix pair.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDelays`] if `D` is not square with a zero
    /// diagonal, if the row counts disagree, or if any entry is negative or
    /// non-finite.
    pub fn new(inter_agent: Matrix, agent_user: Matrix) -> Result<Self, ModelError> {
        if inter_agent.rows() != inter_agent.cols() {
            return Err(ModelError::InvalidDelays(format!(
                "inter-agent matrix must be square, got {}×{}",
                inter_agent.rows(),
                inter_agent.cols()
            )));
        }
        if inter_agent.rows() != agent_user.rows() {
            return Err(ModelError::InvalidDelays(format!(
                "matrix agent counts disagree: D has {}, H has {}",
                inter_agent.rows(),
                agent_user.rows()
            )));
        }
        if !inter_agent.is_nonnegative() || !agent_user.is_nonnegative() {
            return Err(ModelError::InvalidDelays(
                "delays must be finite and non-negative".into(),
            ));
        }
        for l in 0..inter_agent.rows() {
            if inter_agent.at(l, l) != 0.0 {
                return Err(ModelError::InvalidDelays(format!(
                    "inter-agent diagonal must be zero, D[{l}][{l}] = {}",
                    inter_agent.at(l, l)
                )));
            }
        }
        Ok(Self {
            inter_agent,
            agent_user,
        })
    }

    /// Number of agents `L` covered by the matrices.
    pub fn num_agents(&self) -> usize {
        self.inter_agent.rows()
    }

    /// Number of users `U` covered by the matrices.
    pub fn num_users(&self) -> usize {
        self.agent_user.cols()
    }

    /// `D_lk`: one-way delay between agents `l` and `k` in ms.
    #[inline]
    pub fn inter_agent_ms(&self, l: AgentId, k: AgentId) -> f64 {
        self.inter_agent.at(l.index(), k.index())
    }

    /// `H_lu`: one-way delay between agent `l` and user `u` in ms.
    #[inline]
    pub fn agent_user_ms(&self, l: AgentId, u: UserId) -> f64 {
        self.agent_user.at(l.index(), u.index())
    }

    /// The raw inter-agent matrix `D`.
    pub fn inter_agent(&self) -> &Matrix {
        &self.inter_agent
    }

    /// The raw agent-to-user matrix `H`.
    pub fn agent_user(&self) -> &Matrix {
        &self.agent_user
    }

    /// Agents sorted by proximity to user `u` (nearest first), the primitive
    /// behind both the Nrst baseline and AgRank's potential-agent lists.
    pub fn agents_by_proximity(&self, u: UserId) -> Vec<AgentId> {
        let mut agents: Vec<AgentId> = (0..self.num_agents()).map(AgentId::from).collect();
        agents.sort_by(|a, b| {
            self.agent_user_ms(*a, u)
                .partial_cmp(&self.agent_user_ms(*b, u))
                .expect("delays are non-NaN")
                .then(a.cmp(b))
        });
        agents
    }

    /// The nearest agent to user `u`.
    ///
    /// # Panics
    ///
    /// Panics if there are no agents.
    pub fn nearest_agent(&self, u: UserId) -> AgentId {
        self.agents_by_proximity(u)[0]
    }

    /// Appends one agent to both matrices: `D` gains a symmetric row
    /// and column built from `inter_ms` (one-way ms to each *existing*
    /// agent, agent order; the new diagonal entry is zero) and `H`
    /// gains a row of `user_ms` (one-way ms to each existing user, user
    /// order). Existing entries keep their values and indices — the
    /// agent-axis open-world growth primitive.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidDelays`] if either slice has the wrong
    /// length or a negative/non-finite entry; the matrices are
    /// unchanged on error.
    pub fn push_agent(&mut self, inter_ms: &[f64], user_ms: &[f64]) -> Result<(), ModelError> {
        if inter_ms.len() != self.num_agents() {
            return Err(ModelError::InvalidDelays(format!(
                "new agent's inter-agent delays cover {} agents, matrices have {}",
                inter_ms.len(),
                self.num_agents()
            )));
        }
        if user_ms.len() != self.num_users() {
            return Err(ModelError::InvalidDelays(format!(
                "new agent's user delays cover {} users, matrices have {}",
                user_ms.len(),
                self.num_users()
            )));
        }
        if !inter_ms
            .iter()
            .chain(user_ms.iter())
            .all(|v| v.is_finite() && *v >= 0.0)
        {
            return Err(ModelError::InvalidDelays(
                "new agent delays must be finite and non-negative".into(),
            ));
        }
        self.inter_agent.push_columns(&[inter_ms]);
        let mut inter_row = inter_ms.to_vec();
        inter_row.push(0.0); // zero self-delay diagonal
        self.inter_agent.push_row(&inter_row);
        self.agent_user.push_row(user_ms);
        Ok(())
    }

    /// Appends one `H` column per new user (each `columns[j]` holds the
    /// one-way agent-to-user delays in ms, agent order). `D` is
    /// untouched — grow the agent pool via
    /// [`push_agent`](Self::push_agent).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidDelays`] if any column has the wrong length
    /// or a negative/non-finite entry; the matrices are unchanged on
    /// error.
    pub fn push_user_columns(&mut self, columns: &[&[f64]]) -> Result<(), ModelError> {
        for col in columns {
            if col.len() != self.num_agents() {
                return Err(ModelError::InvalidDelays(format!(
                    "new user column covers {} agents, matrices have {}",
                    col.len(),
                    self.num_agents()
                )));
            }
            if !col.iter().all(|v| v.is_finite() && *v >= 0.0) {
                return Err(ModelError::InvalidDelays(
                    "new user delays must be finite and non-negative".into(),
                ));
            }
        }
        self.agent_user.push_columns(columns);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> DelayMatrices {
        // D: 2 agents; H: 2 agents × 3 users.
        let d = Matrix::from_rows(2, 2, vec![0.0, 50.0, 50.0, 0.0]).unwrap();
        let h = Matrix::from_rows(2, 3, vec![10.0, 20.0, 30.0, 25.0, 15.0, 5.0]).unwrap();
        DelayMatrices::new(d, h).unwrap()
    }

    #[test]
    fn matrix_indexing_round_trips() {
        let mut m = Matrix::filled(2, 3, 0.0);
        m.set(1, 2, 7.5);
        assert_eq!(m.at(1, 2), 7.5);
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.5]);
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 7.5);
    }

    #[test]
    fn from_rows_checks_dimensions() {
        assert!(Matrix::from_rows(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_rows(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn tabulate_fills_by_function() {
        let m = Matrix::tabulate(3, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.at(2, 1), 21.0);
    }

    #[test]
    fn delay_matrices_accessors() {
        let d = simple();
        assert_eq!(d.num_agents(), 2);
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.inter_agent_ms(AgentId::new(0), AgentId::new(1)), 50.0);
        assert_eq!(d.agent_user_ms(AgentId::new(1), UserId::new(2)), 5.0);
    }

    #[test]
    fn rejects_nonzero_diagonal() {
        let d = Matrix::from_rows(2, 2, vec![1.0, 50.0, 50.0, 0.0]).unwrap();
        let h = Matrix::filled(2, 1, 0.0);
        assert!(matches!(
            DelayMatrices::new(d, h),
            Err(ModelError::InvalidDelays(_))
        ));
    }

    #[test]
    fn rejects_negative_delay() {
        let d = Matrix::from_rows(2, 2, vec![0.0, -3.0, 50.0, 0.0]).unwrap();
        let h = Matrix::filled(2, 1, 0.0);
        assert!(DelayMatrices::new(d, h).is_err());
    }

    #[test]
    fn rejects_disagreeing_agent_counts() {
        let d = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let h = Matrix::filled(3, 1, 0.0);
        assert!(DelayMatrices::new(d, h).is_err());
    }

    #[test]
    fn rejects_non_square_inter_agent() {
        let d = Matrix::filled(2, 3, 0.0);
        let h = Matrix::filled(2, 1, 0.0);
        assert!(DelayMatrices::new(d, h).is_err());
    }

    #[test]
    fn proximity_ordering() {
        let d = simple();
        // User 2: agent 1 is at 5 ms, agent 0 at 30 ms.
        assert_eq!(
            d.agents_by_proximity(UserId::new(2)),
            vec![AgentId::new(1), AgentId::new(0)]
        );
        assert_eq!(d.nearest_agent(UserId::new(0)), AgentId::new(0));
    }

    #[test]
    fn push_columns_matches_full_rebuild_through_capacity_growth() {
        let mut grown = Matrix::filled(3, 1, 1.0);
        for j in 0..9usize {
            let col: Vec<f64> = (0..3).map(|r| (r * 10 + j) as f64).collect();
            grown.push_columns(&[&col]);
        }
        let rebuilt = Matrix::tabulate(3, 10, |r, c| {
            if c == 0 {
                1.0
            } else {
                (r * 10 + (c - 1)) as f64
            }
        });
        assert_eq!(grown, rebuilt);
        assert_eq!(grown.row(1), rebuilt.row(1));
        assert_eq!(grown.max(), rebuilt.max());
    }

    #[test]
    fn push_row_appends_in_place() {
        let mut m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        m.push_row(&[7.0, 8.0, 9.0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[7.0, 8.0, 9.0]);
        assert_eq!(m.at(0, 1), 2.0);
    }

    #[test]
    fn equality_ignores_spare_capacity() {
        let mut grown = Matrix::filled(2, 2, 0.5);
        let col = [0.25, 0.75];
        grown.push_columns(&[&col]);
        let flat = Matrix::from_rows(2, 3, vec![0.5, 0.5, 0.25, 0.5, 0.5, 0.75]).unwrap();
        assert_eq!(grown, flat);
        assert_eq!(flat, grown);
    }

    #[test]
    fn push_agent_extends_both_matrices() {
        let mut d = simple();
        d.push_agent(&[40.0, 60.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d.num_agents(), 3);
        assert_eq!(d.num_users(), 3);
        let l2 = AgentId::new(2);
        assert_eq!(d.inter_agent_ms(AgentId::new(0), l2), 40.0);
        assert_eq!(d.inter_agent_ms(l2, AgentId::new(1)), 60.0);
        assert_eq!(d.inter_agent_ms(l2, l2), 0.0);
        assert_eq!(d.agent_user_ms(l2, UserId::new(1)), 2.0);
        // Old entries untouched.
        assert_eq!(d.inter_agent_ms(AgentId::new(0), AgentId::new(1)), 50.0);
        // Still a valid matrix pair (square, zero diagonal, symmetric).
        DelayMatrices::new(d.inter_agent().clone(), d.agent_user().clone()).unwrap();
    }

    #[test]
    fn push_agent_is_atomic_on_error() {
        let mut d = simple();
        let before = d.clone();
        assert!(d.push_agent(&[40.0], &[1.0, 2.0, 3.0]).is_err()); // wrong D len
        assert!(d.push_agent(&[40.0, 60.0], &[1.0]).is_err()); // wrong H len
        assert!(d.push_agent(&[40.0, -1.0], &[1.0, 2.0, 3.0]).is_err()); // negative
        assert_eq!(d, before);
    }

    #[test]
    fn proximity_tie_breaks_by_id() {
        let d = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let h = Matrix::from_rows(2, 1, vec![10.0, 10.0]).unwrap();
        let dm = DelayMatrices::new(d, h).unwrap();
        assert_eq!(dm.nearest_agent(UserId::new(0)), AgentId::new(0));
    }
}
