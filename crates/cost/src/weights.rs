//! Objective weights `(α1, α2, α3)` and the paper's three configurations.
//!
//! The paper evaluates three weightings (Table II): *delay only*
//! (`α2 = 0`), *balanced* (`α1 = α2`) and *traffic only* (`α1 = 0`).
//! Because our delay unit (ms) and traffic unit (Mbps) differ in
//! magnitude, the balanced preset scales traffic by 8 cost-units/Mbps —
//! chosen so a 1 Mbps traffic saving is worth an 8 ms mean-delay
//! increase, which reproduces the paper's qualitative trade-off (large
//! traffic cuts at roughly unchanged delay) — and prices a transcoding
//! task at 2 units. Raw constructors allow arbitrary sweeps.

use serde::{Deserialize, Serialize};

/// Non-negative weights of the three objective terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    alpha_delay: f64,
    alpha_traffic: f64,
    alpha_transcode: f64,
}

impl ObjectiveWeights {
    /// Creates weights `(α1, α2, α3)` for (delay, traffic, transcoding).
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn new(alpha_delay: f64, alpha_traffic: f64, alpha_transcode: f64) -> Self {
        for (name, v) in [
            ("alpha_delay", alpha_delay),
            ("alpha_traffic", alpha_traffic),
            ("alpha_transcode", alpha_transcode),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and ≥ 0, got {v}"
            );
        }
        Self {
            alpha_delay,
            alpha_traffic,
            alpha_transcode,
        }
    }

    /// `α2 = 0`: optimize conferencing delay only.
    pub fn delay_only() -> Self {
        Self::new(1.0, 0.0, 0.0)
    }

    /// `α1 = α2`: the balanced configuration (see module docs for the
    /// unit calibration).
    pub fn balanced() -> Self {
        Self::new(1.0, 8.0, 2.0)
    }

    /// `α1 = 0`: optimize operational cost (traffic + transcoding) only.
    pub fn traffic_only() -> Self {
        Self::new(0.0, 8.0, 2.0)
    }

    /// Weight `α1` of the delay cost.
    pub fn alpha_delay(&self) -> f64 {
        self.alpha_delay
    }

    /// Weight `α2` of the bandwidth cost.
    pub fn alpha_traffic(&self) -> f64 {
        self.alpha_traffic
    }

    /// Weight `α3` of the transcoding cost.
    pub fn alpha_transcode(&self) -> f64 {
        self.alpha_transcode
    }

    /// Combines the three cost terms into the session objective
    /// `α1·F + α2·G + α3·H`.
    #[inline]
    pub fn combine(&self, delay_cost: f64, traffic_cost: f64, transcode_cost: f64) -> f64 {
        self.alpha_delay * delay_cost
            + self.alpha_traffic * traffic_cost
            + self.alpha_transcode * transcode_cost
    }
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        Self::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_configurations() {
        assert_eq!(ObjectiveWeights::delay_only().alpha_traffic(), 0.0);
        assert!(ObjectiveWeights::delay_only().alpha_delay() > 0.0);
        assert_eq!(ObjectiveWeights::traffic_only().alpha_delay(), 0.0);
        assert!(ObjectiveWeights::traffic_only().alpha_traffic() > 0.0);
        let b = ObjectiveWeights::balanced();
        assert!(b.alpha_delay() > 0.0 && b.alpha_traffic() > 0.0);
    }

    #[test]
    fn combine_is_weighted_sum() {
        let w = ObjectiveWeights::new(2.0, 3.0, 4.0);
        assert_eq!(w.combine(10.0, 5.0, 1.0), 20.0 + 15.0 + 4.0);
    }

    #[test]
    fn combine_with_zero_weight_ignores_term() {
        let w = ObjectiveWeights::delay_only();
        assert_eq!(w.combine(100.0, 999.0, 999.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn negative_weight_panics() {
        let _ = ObjectiveWeights::new(-1.0, 0.0, 0.0);
    }
}
