//! Delay cost `F(d_s)` over a session's per-user worst receive delays.

use serde::{Deserialize, Serialize};

/// Convex increasing delay cost over the vector `d_s = [d_u]` of per-user
/// worst receive delays (ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DelayCost {
    /// `F(d_s) = (Σ_u d_u)/|U(s)|` — the paper's example choice.
    #[default]
    Mean,
    /// `F(d_s) = max_u d_u` — worst-participant experience.
    Max,
}

impl DelayCost {
    /// Evaluates the delay cost on a session's per-user delays.
    ///
    /// Returns 0 for an empty slice (a departed session contributes no
    /// delay cost).
    pub fn cost(&self, per_user_delay_ms: &[f64]) -> f64 {
        if per_user_delay_ms.is_empty() {
            return 0.0;
        }
        match self {
            DelayCost::Mean => {
                per_user_delay_ms.iter().sum::<f64>() / per_user_delay_ms.len() as f64
            }
            DelayCost::Max => per_user_delay_ms
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_matches_paper_example() {
        let d = [100.0, 200.0, 300.0];
        assert!((DelayCost::Mean.cost(&d) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn max_takes_worst_user() {
        let d = [100.0, 350.0, 220.0];
        assert_eq!(DelayCost::Max.cost(&d), 350.0);
    }

    #[test]
    fn empty_session_costs_nothing() {
        assert_eq!(DelayCost::Mean.cost(&[]), 0.0);
        assert_eq!(DelayCost::Max.cost(&[]), 0.0);
    }

    #[test]
    fn monotone_in_each_coordinate() {
        let base = [120.0, 180.0];
        let worse = [130.0, 180.0];
        for f in [DelayCost::Mean, DelayCost::Max] {
            assert!(f.cost(&worse) >= f.cost(&base));
        }
    }
}
