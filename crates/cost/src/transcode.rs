//! Convex transcoding cost shapes `h_l(·)`.

use serde::{Deserialize, Serialize};

/// Shape of a convex transcoding cost function evaluated on the number of
/// concurrent transcoding tasks `y` at an agent. The per-agent unit price
/// is applied multiplicatively by the caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TranscodeCost {
    /// `h(y) = y` — each task costs one price unit.
    Linear,
    /// `h(y) = a·y + b·y²` — load-sensitive pricing (`a, b ≥ 0`).
    Quadratic {
        /// Linear coefficient `a`.
        linear: f64,
        /// Quadratic coefficient `b`.
        quadratic: f64,
    },
}

impl TranscodeCost {
    /// Unit-slope linear cost.
    pub fn linear() -> Self {
        TranscodeCost::Linear
    }

    /// Creates a validated quadratic cost.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative or non-finite.
    pub fn quadratic(linear: f64, quadratic: f64) -> Self {
        assert!(
            linear.is_finite() && linear >= 0.0,
            "linear coefficient invalid"
        );
        assert!(
            quadratic.is_finite() && quadratic >= 0.0,
            "quadratic coefficient invalid"
        );
        TranscodeCost::Quadratic { linear, quadratic }
    }

    /// Evaluates the cost shape at task count `y ≥ 0`.
    pub fn cost(&self, y: f64) -> f64 {
        debug_assert!(y >= -1e-9, "task count must be non-negative, got {y}");
        let y = y.max(0.0);
        match self {
            TranscodeCost::Linear => y,
            TranscodeCost::Quadratic { linear, quadratic } => linear * y + quadratic * y * y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_counts_tasks() {
        assert_eq!(TranscodeCost::linear().cost(3.0), 3.0);
        assert_eq!(TranscodeCost::linear().cost(0.0), 0.0);
    }

    #[test]
    fn quadratic_penalizes_load() {
        let h = TranscodeCost::quadratic(1.0, 1.0);
        assert_eq!(h.cost(3.0), 3.0 + 9.0);
        // Convexity: marginal cost of task 4 exceeds that of task 1.
        assert!(h.cost(4.0) - h.cost(3.0) > h.cost(1.0) - h.cost(0.0));
    }

    #[test]
    #[should_panic(expected = "quadratic coefficient invalid")]
    fn negative_coefficient_panics() {
        let _ = TranscodeCost::quadratic(1.0, -0.1);
    }
}
