//! Pricing substrate: the cost functions of the UAP objective.
//!
//! The paper's objective is `Σ_s α1·F(d_s) + α2·G(x_s) + α3·H(y_s)` where
//!
//! * `F` is a convex increasing *delay cost* over the per-user worst
//!   receive delays `d_u` (the paper's example: their mean);
//! * `G(x_s) = Σ_l g_l(x_ls)` prices the inter-agent ingress traffic at
//!   each agent with a convex increasing `g_l`;
//! * `H(y_s) = Σ_l h_l(y_ls)` prices concurrent transcoding tasks with a
//!   convex `h_l`.
//!
//! Per-agent unit prices come from
//! [`AgentSpec`](vc_model::AgentSpec)`::price_per_mbps/price_per_task`;
//! the *shapes* (linear, quadratic, piecewise-linear) are defined here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod delay;
mod transcode;
mod weights;

pub use bandwidth::BandwidthCost;
pub use delay::DelayCost;
pub use transcode::TranscodeCost;
pub use weights::ObjectiveWeights;

use serde::{Deserialize, Serialize};

/// Complete cost model: shapes of `g_l`, `h_l` and `F` plus the α weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Shape of the per-agent bandwidth cost `g_l` (scaled by the agent's
    /// `price_per_mbps`).
    pub bandwidth: BandwidthCost,
    /// Shape of the per-agent transcoding cost `h_l` (scaled by the agent's
    /// `price_per_task`).
    pub transcode: TranscodeCost,
    /// The delay cost `F` over a session's per-user delays.
    pub delay: DelayCost,
    /// Objective weights `(α1, α2, α3)`.
    pub weights: ObjectiveWeights,
}

impl CostModel {
    /// The paper's reporting setup: linear traffic cost (so `G` in cost
    /// units equals inter-agent Mbps), linear transcoding cost, mean-delay
    /// `F`, balanced weights.
    pub fn paper_default() -> Self {
        Self {
            bandwidth: BandwidthCost::linear(),
            transcode: TranscodeCost::linear(),
            delay: DelayCost::Mean,
            weights: ObjectiveWeights::balanced(),
        }
    }

    /// Replaces the weights, keeping the cost shapes.
    pub fn with_weights(mut self, weights: ObjectiveWeights) -> Self {
        self.weights = weights;
        self
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let m = CostModel::paper_default();
        assert_eq!(m.delay, DelayCost::Mean);
        // Unit slope: cost in "dollars" equals Mbps.
        assert!((m.bandwidth.cost(7.5) - 7.5).abs() < 1e-12);
        assert!((m.transcode.cost(3.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn with_weights_overrides() {
        let m = CostModel::paper_default().with_weights(ObjectiveWeights::delay_only());
        assert_eq!(m.weights.alpha_traffic(), 0.0);
        assert!(m.weights.alpha_delay() > 0.0);
    }
}
