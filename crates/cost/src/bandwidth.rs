//! Convex increasing bandwidth cost shapes `g_l(·)`.

use serde::{Deserialize, Serialize};

/// Shape of a convex, increasing bandwidth cost function evaluated on
/// inter-agent ingress traffic `x` (Mbit/s). The per-agent unit price is
/// applied multiplicatively by the caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BandwidthCost {
    /// `g(x) = x` — cost units equal Mbps, the paper's reporting choice.
    Linear,
    /// `g(x) = a·x + b·x²` with `a, b ≥ 0` — congestion-sensitive pricing.
    Quadratic {
        /// Linear coefficient `a`.
        linear: f64,
        /// Quadratic coefficient `b`.
        quadratic: f64,
    },
    /// Piecewise-linear convex: slope `slopes[i]` applies on
    /// `[knots[i], knots[i+1])` where `knots[0] = 0` is implicit and the
    /// last slope extends to infinity. Slopes must be non-decreasing
    /// (convexity) and non-negative (monotonicity). Mirrors tiered
    /// cloud-egress price sheets.
    PiecewiseLinear {
        /// Interior knots (strictly increasing, all positive).
        knots: Vec<f64>,
        /// One more slope than knots.
        slopes: Vec<f64>,
    },
}

impl BandwidthCost {
    /// Unit-slope linear cost.
    pub fn linear() -> Self {
        BandwidthCost::Linear
    }

    /// Creates a validated quadratic cost.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative or non-finite.
    pub fn quadratic(linear: f64, quadratic: f64) -> Self {
        assert!(
            linear.is_finite() && linear >= 0.0,
            "linear coefficient invalid"
        );
        assert!(
            quadratic.is_finite() && quadratic >= 0.0,
            "quadratic coefficient invalid"
        );
        BandwidthCost::Quadratic { linear, quadratic }
    }

    /// Creates a validated piecewise-linear convex cost.
    ///
    /// # Panics
    ///
    /// Panics if `slopes.len() != knots.len() + 1`, knots are not strictly
    /// increasing positives, or slopes are negative or decreasing.
    pub fn piecewise(knots: Vec<f64>, slopes: Vec<f64>) -> Self {
        assert_eq!(
            slopes.len(),
            knots.len() + 1,
            "need one more slope than knots"
        );
        assert!(
            knots.windows(2).all(|w| w[0] < w[1]) && knots.iter().all(|k| *k > 0.0),
            "knots must be strictly increasing positives"
        );
        assert!(
            slopes.iter().all(|s| *s >= 0.0),
            "slopes must be non-negative (increasing cost)"
        );
        assert!(
            slopes.windows(2).all(|w| w[0] <= w[1]),
            "slopes must be non-decreasing (convexity)"
        );
        BandwidthCost::PiecewiseLinear { knots, slopes }
    }

    /// Evaluates the cost shape at traffic `x ≥ 0` Mbps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is negative.
    pub fn cost(&self, x: f64) -> f64 {
        debug_assert!(x >= -1e-9, "traffic must be non-negative, got {x}");
        let x = x.max(0.0);
        match self {
            BandwidthCost::Linear => x,
            BandwidthCost::Quadratic { linear, quadratic } => linear * x + quadratic * x * x,
            BandwidthCost::PiecewiseLinear { knots, slopes } => {
                let mut cost = 0.0;
                let mut prev = 0.0;
                for (i, &k) in knots.iter().enumerate() {
                    if x <= k {
                        return cost + slopes[i] * (x - prev);
                    }
                    cost += slopes[i] * (k - prev);
                    prev = k;
                }
                cost + slopes[knots.len()] * (x - prev)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_identity() {
        let g = BandwidthCost::linear();
        assert_eq!(g.cost(0.0), 0.0);
        assert_eq!(g.cost(12.5), 12.5);
    }

    #[test]
    fn quadratic_evaluates() {
        let g = BandwidthCost::quadratic(2.0, 0.5);
        assert!((g.cost(4.0) - (8.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn piecewise_accumulates_segments() {
        // slope 1 on [0,10), slope 2 on [10,20), slope 4 beyond.
        let g = BandwidthCost::piecewise(vec![10.0, 20.0], vec![1.0, 2.0, 4.0]);
        assert_eq!(g.cost(5.0), 5.0);
        assert_eq!(g.cost(10.0), 10.0);
        assert_eq!(g.cost(15.0), 10.0 + 10.0);
        assert_eq!(g.cost(25.0), 10.0 + 20.0 + 20.0);
    }

    #[test]
    fn shapes_are_convex_and_increasing() {
        let shapes = [
            BandwidthCost::linear(),
            BandwidthCost::quadratic(1.0, 0.3),
            BandwidthCost::piecewise(vec![5.0], vec![1.0, 3.0]),
        ];
        for g in &shapes {
            let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
            for w in xs.windows(3) {
                let (a, b, c) = (g.cost(w[0]), g.cost(w[1]), g.cost(w[2]));
                assert!(b <= c + 1e-12, "not increasing");
                // Midpoint convexity: g(mid) ≤ (g(lo)+g(hi))/2.
                assert!(b <= (a + c) / 2.0 + 1e-9, "not convex");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_slopes_panic() {
        let _ = BandwidthCost::piecewise(vec![5.0], vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "one more slope")]
    fn wrong_slope_count_panics() {
        let _ = BandwidthCost::piecewise(vec![5.0], vec![1.0]);
    }
}
