//! Fiber-propagation latency model and delay-matrix construction.
//!
//! One-way delay between two points is modeled as
//!
//! ```text
//! one_way_ms = distance_km / 200 (speed of light in fiber, km/ms)
//!              × route_inflation
//!              + access_base_ms
//! ```
//!
//! Route inflation accounts for non-geodesic fiber paths and routing
//! detours (typically 1.3–2.0 in measurement studies); the access base
//! models last-mile and processing overheads. The defaults are calibrated
//! so the model lands near the measured Fig. 2 edge values (e.g.
//! HK→TO ≈ 27 ms, TO→OR ≈ 67 ms).

use crate::geo::GeoPoint;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vc_model::{DelayMatrices, Matrix, ModelError};

/// Speed of light in optical fiber, in km per millisecond (≈ ⅔·c).
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// Deterministic one-way latency model between geographic points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    route_inflation: f64,
    access_base_ms: f64,
}

impl LatencyModel {
    /// Creates a model with the given route inflation (≥ 1) and access
    /// base (≥ 0 ms).
    ///
    /// # Panics
    ///
    /// Panics if `route_inflation < 1` or `access_base_ms < 0`.
    pub fn new(route_inflation: f64, access_base_ms: f64) -> Self {
        assert!(route_inflation >= 1.0, "route inflation must be ≥ 1");
        assert!(access_base_ms >= 0.0, "access base must be ≥ 0");
        Self {
            route_inflation,
            access_base_ms,
        }
    }

    /// Route inflation factor.
    pub fn route_inflation(&self) -> f64 {
        self.route_inflation
    }

    /// Access base in milliseconds.
    pub fn access_base_ms(&self) -> f64 {
        self.access_base_ms
    }

    /// One-way propagation delay between two points in ms.
    pub fn one_way_ms(&self, a: GeoPoint, b: GeoPoint) -> f64 {
        a.distance_km(b) / FIBER_KM_PER_MS * self.route_inflation + self.access_base_ms
    }

    /// Round-trip time between two points in ms.
    pub fn rtt_ms(&self, a: GeoPoint, b: GeoPoint) -> f64 {
        2.0 * self.one_way_ms(a, b)
    }

    /// One-way delay with multiplicative jitter drawn uniformly from
    /// `[1−jitter_frac, 1+jitter_frac]`.
    pub fn one_way_jittered_ms<R: Rng + ?Sized>(
        &self,
        a: GeoPoint,
        b: GeoPoint,
        jitter_frac: f64,
        rng: &mut R,
    ) -> f64 {
        let jitter = 1.0 + jitter_frac * (2.0 * rng.gen::<f64>() - 1.0);
        self.one_way_ms(a, b) * jitter.max(0.0)
    }
}

impl Default for LatencyModel {
    /// Calibrated against the Fig. 2 measured edges: inflation 1.55,
    /// access base 4 ms.
    fn default() -> Self {
        Self::new(1.55, 4.0)
    }
}

/// Builds the `D`/`H` delay-matrix pair from agent and user locations.
///
/// Inter-agent delays are symmetric; per-pair jitter (if any) is applied
/// once per unordered pair. A `jitter_frac` of 0 yields the deterministic
/// model.
///
/// # Errors
///
/// Propagates [`ModelError::InvalidDelays`] if the generated values are
/// invalid (cannot happen for finite coordinates).
pub fn build_delay_matrices<R: Rng + ?Sized>(
    model: &LatencyModel,
    agents: &[GeoPoint],
    users: &[GeoPoint],
    jitter_frac: f64,
    rng: &mut R,
) -> Result<DelayMatrices, ModelError> {
    let nl = agents.len();
    let nu = users.len();
    let mut d = Matrix::filled(nl, nl, 0.0);
    for l in 0..nl {
        for k in (l + 1)..nl {
            let v = if jitter_frac > 0.0 {
                model.one_way_jittered_ms(agents[l], agents[k], jitter_frac, rng)
            } else {
                model.one_way_ms(agents[l], agents[k])
            };
            d.set(l, k, v);
            d.set(k, l, v);
        }
    }
    let mut h = Matrix::filled(nl, nu, 0.0);
    for (l, &agent) in agents.iter().enumerate() {
        for (u, &user) in users.iter().enumerate() {
            let v = if jitter_frac > 0.0 {
                model.one_way_jittered_ms(agent, user, jitter_frac, rng)
            } else {
                model.one_way_ms(agent, user)
            };
            h.set(l, u, v);
        }
    }
    DelayMatrices::new(d, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::{ec2_region, metro};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn calibration_against_fig2_edges() {
        let m = LatencyModel::default();
        let hk = metro("hong-kong").unwrap().point();
        let to = ec2_region("ec2-tokyo").unwrap().point();
        let sg = ec2_region("ec2-singapore").unwrap().point();
        let or = ec2_region("ec2-oregon").unwrap().point();
        // Paper: HK→TO 27 ms, HK→SG 20 ms, TO→OR 67 ms, SG→OR 117 ms.
        let hk_to = m.one_way_ms(hk, to);
        let hk_sg = m.one_way_ms(hk, sg);
        let to_or = m.one_way_ms(to, or);
        let sg_or = m.one_way_ms(sg, or);
        assert!((20.0..35.0).contains(&hk_to), "hk-to {hk_to}");
        assert!((15.0..30.0).contains(&hk_sg), "hk-sg {hk_sg}");
        assert!((55.0..80.0).contains(&to_or), "to-or {to_or}");
        assert!((90.0..135.0).contains(&sg_or), "sg-or {sg_or}");
        // Relative order matches the paper's measurements.
        assert!(hk_sg < hk_to);
        assert!(to_or < sg_or);
    }

    #[test]
    fn rtt_is_twice_one_way() {
        let m = LatencyModel::default();
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(10.0, 10.0);
        assert!((m.rtt_ms(a, b) - 2.0 * m.one_way_ms(a, b)).abs() < 1e-12);
    }

    #[test]
    fn matrices_are_valid_and_symmetric() {
        let m = LatencyModel::default();
        let agents: Vec<GeoPoint> = crate::sites::ec2_seven()
            .iter()
            .map(|s| s.point())
            .collect();
        let users: Vec<GeoPoint> = ["hong-kong", "london", "seattle"]
            .iter()
            .map(|n| metro(n).unwrap().point())
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let dm = build_delay_matrices(&m, &agents, &users, 0.1, &mut rng).unwrap();
        assert_eq!(dm.num_agents(), 7);
        assert_eq!(dm.num_users(), 3);
        for l in 0..7 {
            for k in 0..7 {
                let lk = dm.inter_agent().at(l, k);
                let kl = dm.inter_agent().at(k, l);
                assert!((lk - kl).abs() < 1e-12, "asymmetric at {l},{k}");
            }
            assert_eq!(dm.inter_agent().at(l, l), 0.0);
        }
    }

    #[test]
    fn jitter_zero_is_deterministic() {
        let m = LatencyModel::default();
        let agents = vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(20.0, 20.0)];
        let users = vec![GeoPoint::new(10.0, 10.0)];
        let a =
            build_delay_matrices(&m, &agents, &users, 0.0, &mut StdRng::seed_from_u64(1)).unwrap();
        let b =
            build_delay_matrices(&m, &agents, &users, 0.0, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "route inflation")]
    fn inflation_below_one_panics() {
        let _ = LatencyModel::new(0.9, 0.0);
    }
}
