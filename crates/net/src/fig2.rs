//! The motivating scenario of Fig. 2, with the paper's measured latencies.
//!
//! Four users on PlanetLab nodes — 1 \[CA\], 2 \[BR\], 3 \[JP\], 4 \[HK\] —
//! and four EC2 agents: Oregon (OR), Tokyo (TO), Singapore (SG) and
//! São Paulo (SP). The paper prints the measured one-way edge latencies
//! 45, 67, 117, 81, 181, 150 ms between agents and the user edges
//! 27 ms (HK→TO) and 20 ms (HK→SG), and argues:
//!
//! * the *nearest* policy sends user 4 to SG (20 < 27 ms), but TO is the
//!   better agent — `27 + 67` beats `20 + 117` toward user 1, and user 3
//!   is already on TO so inter-agent traffic shrinks;
//! * yet SG is *computationally* stronger, so a transcoding task on
//!   user 4's stream may still belong on SG.
//!
//! The inter-agent values the text pins down are `TO–OR = 67` and
//! `SG–OR = 117`; the remaining four printed values are assigned to the
//! remaining edges by geographic plausibility: `TO–SG = 45`,
//! `OR–SP = 81`, `TO–SP = 150`, `SG–SP = 181`.

use vc_model::{
    AgentId, AgentSpec, DelayMatrices, DownstreamDemand, Instance, InstanceBuilder, Matrix,
    ReprLadder, UserId,
};

/// Oregon agent.
pub const OR: AgentId = AgentId::new(0);
/// Tokyo agent.
pub const TO: AgentId = AgentId::new(1);
/// Singapore agent.
pub const SG: AgentId = AgentId::new(2);
/// São Paulo agent.
pub const SP: AgentId = AgentId::new(3);

/// User 1, a PlanetLab node in California.
pub const USER_CA: UserId = UserId::new(0);
/// User 2, a PlanetLab node in Brazil.
pub const USER_BR: UserId = UserId::new(1);
/// User 3, a PlanetLab node in Japan.
pub const USER_JP: UserId = UserId::new(2);
/// User 4, a PlanetLab node in Hong Kong.
pub const USER_HK: UserId = UserId::new(3);

/// One-way inter-agent delays (ms), rows/cols ordered OR, TO, SG, SP.
pub fn inter_agent_delays() -> Matrix {
    Matrix::from_rows(
        4,
        4,
        vec![
            0.0, 67.0, 117.0, 81.0, //
            67.0, 0.0, 45.0, 150.0, //
            117.0, 45.0, 0.0, 181.0, //
            81.0, 150.0, 181.0, 0.0,
        ],
    )
    .expect("4×4 matrix")
}

/// One-way agent-to-user delays (ms), rows OR, TO, SG, SP × users CA, BR, JP, HK.
/// The HK column's 27 (TO) and 20 (SG) are the values printed in the figure;
/// the rest are filled in consistently with the geography.
pub fn agent_user_delays() -> Matrix {
    Matrix::from_rows(
        4,
        4,
        vec![
            15.0, 95.0, 60.0, 80.0, //
            55.0, 140.0, 8.0, 27.0, //
            90.0, 190.0, 40.0, 20.0, //
            95.0, 25.0, 160.0, 170.0,
        ],
    )
    .expect("4×4 matrix")
}

/// Builds the Fig. 2 scenario as a complete [`Instance`].
///
/// One session of four users; everyone produces and demands 720p, except
/// user 1 \[CA\], who demands 480p of user 4's stream — yielding exactly one
/// transcoding task (on user 4's upstream), matching the figure's story
/// about choosing a transcoding agent for user 4.
///
/// The Singapore agent is the computationally strongest (speed factor
/// 1.2); Tokyo is the weakest (2.0), as the "larger diamonds" in the
/// figure indicate.
pub fn instance() -> Instance {
    let ladder = ReprLadder::standard_four();
    let r480 = ladder.by_name("480p").expect("ladder has 480p").id();
    let r720 = ladder.by_name("720p").expect("ladder has 720p").id();

    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(AgentSpec::builder("ec2-oregon").speed_factor(1.6).build());
    b.add_agent(AgentSpec::builder("ec2-tokyo").speed_factor(2.0).build());
    b.add_agent(
        AgentSpec::builder("ec2-singapore")
            .speed_factor(1.2)
            .build(),
    );
    b.add_agent(
        AgentSpec::builder("ec2-sao-paulo")
            .speed_factor(1.4)
            .build(),
    );

    let s = b.add_session();
    // User 1 [CA] wants 480p of user 4 [HK]'s 720p stream: one transcode task.
    b.add_user_with_demand(
        s,
        r720,
        DownstreamDemand::uniform(r720).with_override(USER_HK, r480),
    );
    b.add_user(s, r720, r720); // user 2 [BR]
    b.add_user(s, r720, r720); // user 3 [JP]
    b.add_user(s, r720, r720); // user 4 [HK]

    b.delays(
        DelayMatrices::new(inter_agent_delays(), agent_user_delays())
            .expect("fig2 matrices are valid"),
    );
    b.build().expect("fig2 instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_agent_for_user4_is_singapore() {
        let inst = instance();
        assert_eq!(inst.delays().nearest_agent(USER_HK), SG);
        // And the figure's printed values survive round-tripping.
        assert_eq!(inst.h_ms(TO, USER_HK), 27.0);
        assert_eq!(inst.h_ms(SG, USER_HK), 20.0);
        assert_eq!(inst.d_ms(TO, OR), 67.0);
        assert_eq!(inst.d_ms(SG, OR), 117.0);
    }

    #[test]
    fn paper_delay_argument_holds() {
        // Delay of flow user4 -> user1 via TO is at least 27 + 67,
        // via SG at least 20 + 117 (the paper's inequality).
        let inst = instance();
        let via_to = inst.h_ms(TO, USER_HK) + inst.d_ms(TO, OR);
        let via_sg = inst.h_ms(SG, USER_HK) + inst.d_ms(SG, OR);
        assert!(via_to < via_sg, "{via_to} !< {via_sg}");
    }

    #[test]
    fn exactly_one_transcoding_task() {
        let inst = instance();
        assert_eq!(inst.theta_sum(), 1);
        assert!(inst.theta(USER_HK, USER_CA));
        assert!(!inst.theta(USER_CA, USER_HK));
    }

    #[test]
    fn singapore_transcodes_fastest() {
        let inst = instance();
        let ladder = inst.ladder();
        let r720 = ladder.by_name("720p").unwrap().id();
        let r480 = ladder.by_name("480p").unwrap().id();
        let sg = inst.sigma_ms(SG, r720, r480);
        for a in [OR, TO, SP] {
            assert!(sg < inst.sigma_ms(a, r720, r480));
        }
    }

    #[test]
    fn matrices_are_symmetric() {
        let d = inter_agent_delays();
        for l in 0..4 {
            for k in 0..4 {
                assert_eq!(d.at(l, k), d.at(k, l));
            }
        }
    }

    #[test]
    fn nearest_agents_match_geography() {
        let inst = instance();
        assert_eq!(inst.delays().nearest_agent(USER_CA), OR);
        assert_eq!(inst.delays().nearest_agent(USER_BR), SP);
        assert_eq!(inst.delays().nearest_agent(USER_JP), TO);
    }
}
