//! Measurement-noise models for delay matrices.
//!
//! RTT measurements of `D` and `H` are imperfect; [`DelayJitter`] models
//! that with multiplicative uniform noise. (The *objective-value* noise
//! model of Theorem 1 lives in `vc-markov::perturb`, next to the theory
//! that consumes it.)

use rand::Rng;
use serde::{Deserialize, Serialize};
use vc_model::{DelayMatrices, Matrix};

/// Multiplicative uniform measurement noise for delay matrices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayJitter {
    frac: f64,
}

impl DelayJitter {
    /// Noise amplitude as a fraction: each entry is scaled by a factor drawn
    /// uniformly from `[1−frac, 1+frac]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ frac < 1`.
    pub fn new(frac: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "noise fraction must be in [0, 1)"
        );
        Self { frac }
    }

    /// Noise amplitude.
    pub fn frac(&self) -> f64 {
        self.frac
    }

    /// Returns a perturbed copy of the delay matrices (inter-agent matrix
    /// stays symmetric with a zero diagonal).
    pub fn perturb<R: Rng + ?Sized>(&self, delays: &DelayMatrices, rng: &mut R) -> DelayMatrices {
        let nl = delays.num_agents();
        let nu = delays.num_users();
        let mut d = Matrix::filled(nl, nl, 0.0);
        for l in 0..nl {
            for k in (l + 1)..nl {
                let factor = 1.0 + self.frac * (2.0 * rng.gen::<f64>() - 1.0);
                let v = delays.inter_agent().at(l, k) * factor;
                d.set(l, k, v);
                d.set(k, l, v);
            }
        }
        let mut h = Matrix::filled(nl, nu, 0.0);
        for l in 0..nl {
            for u in 0..nu {
                let factor = 1.0 + self.frac * (2.0 * rng.gen::<f64>() - 1.0);
                h.set(l, u, delays.agent_user().at(l, u) * factor);
            }
        }
        DelayMatrices::new(d, h).expect("perturbed delays remain valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn matrices() -> DelayMatrices {
        let d = Matrix::from_rows(2, 2, vec![0.0, 100.0, 100.0, 0.0]).unwrap();
        let h = Matrix::from_rows(2, 2, vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        DelayMatrices::new(d, h).unwrap()
    }

    #[test]
    fn jitter_preserves_matrix_invariants() {
        let dm = matrices();
        let jitter = DelayJitter::new(0.2);
        let mut rng = StdRng::seed_from_u64(5);
        let p = jitter.perturb(&dm, &mut rng);
        assert_eq!(p.inter_agent().at(0, 0), 0.0);
        let v01 = p.inter_agent().at(0, 1);
        assert_eq!(v01, p.inter_agent().at(1, 0));
        assert!((80.0..=120.0).contains(&v01), "jittered {v01}");
    }

    #[test]
    fn zero_jitter_is_identity() {
        let dm = matrices();
        let jitter = DelayJitter::new(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(jitter.perturb(&dm, &mut rng), dm);
    }

    #[test]
    fn jitter_bounds_hold_over_many_draws() {
        let dm = matrices();
        let jitter = DelayJitter::new(0.1);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let p = jitter.perturb(&dm, &mut rng);
            for u in 0..2 {
                for l in 0..2 {
                    let orig = dm.agent_user().at(l, u);
                    let new = p.agent_user().at(l, u);
                    assert!(new >= orig * 0.9 - 1e-12 && new <= orig * 1.1 + 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn out_of_range_fraction_panics() {
        let _ = DelayJitter::new(1.0);
    }
}
