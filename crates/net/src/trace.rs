//! Synthetic RTT measurement traces.
//!
//! The paper's Internet-scale experiments use RTTs "measured for 5 weeks
//! at a granularity of one ping per second". We synthesize statistically
//! similar streams: a mean-reverting AR(1) process around the
//! geography-derived base delay, plus occasional congestion spikes with
//! exponential decay.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the AR(1)-plus-spikes trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Mean-reversion coefficient ρ ∈ [0, 1): higher is smoother.
    pub ar_coeff: f64,
    /// Standard deviation of the AR(1) innovations, as a fraction of the base delay.
    pub noise_frac: f64,
    /// Per-sample probability of a congestion spike.
    pub spike_prob: f64,
    /// Spike magnitude as a multiple of the base delay.
    pub spike_scale: f64,
    /// Per-sample exponential decay of an active spike.
    pub spike_decay: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            ar_coeff: 0.95,
            noise_frac: 0.03,
            spike_prob: 0.002,
            spike_scale: 0.8,
            spike_decay: 0.7,
        }
    }
}

/// A stateful generator of one-way-delay samples for a single node pair.
#[derive(Debug, Clone)]
pub struct RttTrace {
    base_ms: f64,
    config: TraceConfig,
    deviation: f64,
    spike: f64,
}

impl RttTrace {
    /// Creates a trace fluctuating around `base_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `base_ms` is negative or `ar_coeff` outside `[0, 1)`.
    pub fn new(base_ms: f64, config: TraceConfig) -> Self {
        assert!(base_ms >= 0.0, "base delay must be non-negative");
        assert!(
            (0.0..1.0).contains(&config.ar_coeff),
            "AR coefficient must be in [0, 1)"
        );
        Self {
            base_ms,
            config,
            deviation: 0.0,
            spike: 0.0,
        }
    }

    /// The base (long-run mean) delay in ms.
    pub fn base_ms(&self) -> f64 {
        self.base_ms
    }

    /// Draws the next sample (ms). Samples are serially correlated.
    pub fn next_sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        // Gaussian innovation via Box–Muller (rand_distr is not available offline).
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen::<f64>();
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.deviation =
            self.config.ar_coeff * self.deviation + self.config.noise_frac * self.base_ms * gauss;
        if rng.gen::<f64>() < self.config.spike_prob {
            self.spike += self.config.spike_scale * self.base_ms * rng.gen::<f64>();
        }
        self.spike *= self.config.spike_decay;
        (self.base_ms + self.deviation + self.spike).max(0.0)
    }

    /// Generates `n` consecutive samples.
    pub fn generate<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.next_sample(rng)).collect()
    }
}

/// Time-varying delay matrices: one [`RttTrace`] per matrix entry,
/// advanced in lockstep — the "one ping per second" measurement stream
/// the paper's trace-driven experiments consume, synthesized.
#[derive(Debug, Clone)]
pub struct DelayTraceSet {
    base: vc_model::DelayMatrices,
    inter_traces: Vec<RttTrace>, // upper triangle, row-major
    user_traces: Vec<RttTrace>,  // full L×U, row-major
}

impl DelayTraceSet {
    /// Creates a trace set fluctuating around `base` delays.
    pub fn new(base: vc_model::DelayMatrices, config: TraceConfig) -> Self {
        let nl = base.num_agents();
        let nu = base.num_users();
        let mut inter_traces = Vec::new();
        for l in 0..nl {
            for k in (l + 1)..nl {
                inter_traces.push(RttTrace::new(base.inter_agent().at(l, k), config));
            }
        }
        let mut user_traces = Vec::with_capacity(nl * nu);
        for l in 0..nl {
            for u in 0..nu {
                user_traces.push(RttTrace::new(base.agent_user().at(l, u), config));
            }
        }
        Self {
            base,
            inter_traces,
            user_traces,
        }
    }

    /// The long-run mean matrices.
    pub fn base(&self) -> &vc_model::DelayMatrices {
        &self.base
    }

    /// Advances every trace by one sample period and returns the measured
    /// matrices (inter-agent kept symmetric, diagonal zero).
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> vc_model::DelayMatrices {
        let nl = self.base.num_agents();
        let nu = self.base.num_users();
        let mut d = vc_model::Matrix::filled(nl, nl, 0.0);
        let mut idx = 0;
        for l in 0..nl {
            for k in (l + 1)..nl {
                let v = self.inter_traces[idx].next_sample(rng);
                d.set(l, k, v);
                d.set(k, l, v);
                idx += 1;
            }
        }
        let mut h = vc_model::Matrix::filled(nl, nu, 0.0);
        for l in 0..nl {
            for u in 0..nu {
                h.set(l, u, self.user_traces[l * nu + u].next_sample(rng));
            }
        }
        vc_model::DelayMatrices::new(d, h).expect("traced delays remain valid")
    }
}

/// Summary statistics of a trace, for calibration tests and reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Arithmetic mean in ms.
    pub mean_ms: f64,
    /// Standard deviation in ms.
    pub std_ms: f64,
    /// Minimum sample in ms.
    pub min_ms: f64,
    /// Maximum sample in ms.
    pub max_ms: f64,
}

/// Computes summary statistics of a sample slice.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn trace_stats(samples: &[f64]) -> TraceStats {
    assert!(!samples.is_empty(), "cannot summarize an empty trace");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    TraceStats {
        mean_ms: mean,
        std_ms: var.sqrt(),
        min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
        max_ms: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn trace_hovers_around_base() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut t = RttTrace::new(80.0, TraceConfig::default());
        let samples = t.generate(20_000, &mut rng);
        let stats = trace_stats(&samples);
        assert!(
            (stats.mean_ms - 80.0).abs() < 8.0,
            "mean drifted: {}",
            stats.mean_ms
        );
        assert!(stats.min_ms >= 0.0);
    }

    #[test]
    fn spikes_produce_heavy_upper_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = TraceConfig {
            spike_prob: 0.05,
            spike_scale: 2.0,
            ..TraceConfig::default()
        };
        let mut t = RttTrace::new(50.0, config);
        let samples = t.generate(10_000, &mut rng);
        let stats = trace_stats(&samples);
        assert!(
            stats.max_ms > 75.0,
            "expected spikes above 1.5× base, max {}",
            stats.max_ms
        );
    }

    #[test]
    fn samples_are_serially_correlated() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = RttTrace::new(100.0, TraceConfig::default());
        let xs = t.generate(5_000, &mut rng);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let num: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let den: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
        let lag1 = num / den;
        assert!(
            lag1 > 0.7,
            "expected strong lag-1 autocorrelation, got {lag1}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = RttTrace::new(60.0, TraceConfig::default());
        let mut b = RttTrace::new(60.0, TraceConfig::default());
        let xs = a.generate(100, &mut StdRng::seed_from_u64(5));
        let ys = b.generate(100, &mut StdRng::seed_from_u64(5));
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn stats_of_empty_panics() {
        let _ = trace_stats(&[]);
    }

    #[test]
    fn delay_trace_set_preserves_matrix_invariants() {
        use vc_model::{DelayMatrices, Matrix};
        let d = Matrix::from_rows(
            3,
            3,
            vec![0.0, 60.0, 90.0, 60.0, 0.0, 40.0, 90.0, 40.0, 0.0],
        )
        .unwrap();
        let h = Matrix::from_rows(3, 2, vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        let base = DelayMatrices::new(d, h).unwrap();
        let mut set = DelayTraceSet::new(base, TraceConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let m = set.advance(&mut rng);
            assert_eq!(m.num_agents(), 3);
            for l in 0..3 {
                assert_eq!(m.inter_agent().at(l, l), 0.0);
                for k in 0..3 {
                    assert_eq!(m.inter_agent().at(l, k), m.inter_agent().at(k, l));
                    assert!(m.inter_agent().at(l, k) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn delay_traces_average_to_base() {
        use vc_model::{DelayMatrices, Matrix};
        let d = Matrix::from_rows(2, 2, vec![0.0, 80.0, 80.0, 0.0]).unwrap();
        let h = Matrix::from_rows(2, 1, vec![25.0, 35.0]).unwrap();
        let base = DelayMatrices::new(d, h).unwrap();
        let mut set = DelayTraceSet::new(base, TraceConfig::default());
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let mut sum_inter = 0.0;
        let mut sum_user = 0.0;
        for _ in 0..n {
            let m = set.advance(&mut rng);
            sum_inter += m.inter_agent().at(0, 1);
            sum_user += m.agent_user().at(0, 0);
        }
        let mean_inter = sum_inter / n as f64;
        let mean_user = sum_user / n as f64;
        assert!((mean_inter - 80.0).abs() < 8.0, "inter mean {mean_inter}");
        assert!((mean_user - 25.0).abs() < 3.0, "user mean {mean_user}");
    }
}
