//! Great-circle geometry over WGS-84-ish spherical Earth.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the globe (degrees latitude/longitude).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point from degrees latitude (−90..90) and longitude (−180..180).
    ///
    /// # Panics
    ///
    /// Panics if coordinates are outside their valid ranges or non-finite.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!(
            lat_deg.is_finite() && (-90.0..=90.0).contains(&lat_deg),
            "latitude out of range: {lat_deg}"
        );
        assert!(
            lon_deg.is_finite() && (-180.0..=180.0).contains(&lon_deg),
            "longitude out of range: {lon_deg}"
        );
        Self { lat_deg, lon_deg }
    }

    /// Latitude in degrees.
    pub fn lat_deg(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees.
    pub fn lon_deg(&self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOKYO: (f64, f64) = (35.6762, 139.6503);
    const SINGAPORE: (f64, f64) = (1.3521, 103.8198);
    const LONDON: (f64, f64) = (51.5074, -0.1278);
    const NEW_YORK: (f64, f64) = (40.7128, -74.0060);

    fn p(c: (f64, f64)) -> GeoPoint {
        GeoPoint::new(c.0, c.1)
    }

    #[test]
    fn distance_to_self_is_zero() {
        let t = p(TOKYO);
        assert!(t.distance_km(t).abs() < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = p(TOKYO);
        let b = p(SINGAPORE);
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
    }

    #[test]
    fn known_city_distances() {
        // Tokyo–Singapore ≈ 5,320 km; London–New York ≈ 5,570 km.
        let ts = p(TOKYO).distance_km(p(SINGAPORE));
        assert!((5200.0..5450.0).contains(&ts), "tokyo-singapore {ts}");
        let ln = p(LONDON).distance_km(p(NEW_YORK));
        assert!((5450.0..5700.0).contains(&ln), "london-new-york {ln}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((a.distance_km(b) - half).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn invalid_latitude_panics() {
        let _ = GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude out of range")]
    fn invalid_longitude_panics() {
        let _ = GeoPoint::new(0.0, 200.0);
    }
}
