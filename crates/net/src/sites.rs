//! Catalogs of real-world sites: EC2 regions (agents) and PlanetLab-style
//! metros (users).
//!
//! The paper places agents in 6–7 EC2 regions and users on 256 PlanetLab
//! nodes. PlanetLab's node population was concentrated at universities in
//! North America and Europe with a long tail in Asia, Oceania and South
//! America; [`SiteSampler`] reproduces that mix.

use crate::geo::GeoPoint;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Coarse world region of a site, used to weight user sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// United States and Canada.
    NorthAmerica,
    /// Central and South America.
    SouthAmerica,
    /// Europe (including the UK).
    Europe,
    /// East, South-East and South Asia, Middle East.
    Asia,
    /// Australia and New Zealand.
    Oceania,
}

/// A named geographic site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    name: &'static str,
    point: GeoPoint,
    region: Region,
}

impl Site {
    fn new(name: &'static str, lat: f64, lon: f64, region: Region) -> Self {
        Self {
            name,
            point: GeoPoint::new(lat, lon),
            region,
        }
    }

    /// Site name, e.g. `"ec2-tokyo"` or `"hong-kong"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Geographic location.
    pub fn point(&self) -> GeoPoint {
        self.point
    }

    /// World region.
    pub fn region(&self) -> Region {
        self.region
    }
}

/// The nine 2015-era EC2 regions, usable as cloud agent sites.
pub fn ec2_regions() -> &'static [Site] {
    static REGIONS: OnceLock<Vec<Site>> = OnceLock::new();
    REGIONS.get_or_init(|| {
        vec![
            Site::new("ec2-virginia", 38.95, -77.45, Region::NorthAmerica),
            Site::new("ec2-oregon", 45.84, -119.70, Region::NorthAmerica),
            Site::new("ec2-california", 37.35, -121.95, Region::NorthAmerica),
            Site::new("ec2-ireland", 53.33, -6.25, Region::Europe),
            Site::new("ec2-frankfurt", 50.11, 8.68, Region::Europe),
            Site::new("ec2-tokyo", 35.68, 139.69, Region::Asia),
            Site::new("ec2-singapore", 1.35, 103.82, Region::Asia),
            Site::new("ec2-sydney", -33.87, 151.21, Region::Oceania),
            Site::new("ec2-sao-paulo", -23.55, -46.63, Region::SouthAmerica),
        ]
    })
}

/// Looks an EC2 region up by name (`"ec2-tokyo"`, ...).
pub fn ec2_region(name: &str) -> Option<&'static Site> {
    ec2_regions().iter().find(|s| s.name == name)
}

/// The seven EC2 regions used by the paper's Internet-scale experiments.
pub fn ec2_seven() -> Vec<&'static Site> {
    [
        "ec2-virginia",
        "ec2-oregon",
        "ec2-ireland",
        "ec2-frankfurt",
        "ec2-tokyo",
        "ec2-singapore",
        "ec2-sao-paulo",
    ]
    .iter()
    .map(|n| ec2_region(n).expect("region exists"))
    .collect()
}

/// PlanetLab-style metro areas where conferencing users live.
pub fn planetlab_metros() -> &'static [Site] {
    static METROS: OnceLock<Vec<Site>> = OnceLock::new();
    METROS.get_or_init(|| {
        use Region::*;
        vec![
            // North America (PlanetLab's historical core).
            Site::new("seattle", 47.61, -122.33, NorthAmerica),
            Site::new("berkeley", 37.87, -122.27, NorthAmerica),
            Site::new("los-angeles", 34.05, -118.24, NorthAmerica),
            Site::new("salt-lake-city", 40.76, -111.89, NorthAmerica),
            Site::new("boulder", 40.01, -105.27, NorthAmerica),
            Site::new("austin", 30.27, -97.74, NorthAmerica),
            Site::new("chicago", 41.88, -87.63, NorthAmerica),
            Site::new("urbana", 40.11, -88.21, NorthAmerica),
            Site::new("madison", 43.07, -89.40, NorthAmerica),
            Site::new("pittsburgh", 40.44, -79.99, NorthAmerica),
            Site::new("princeton", 40.34, -74.66, NorthAmerica),
            Site::new("cambridge-ma", 42.37, -71.11, NorthAmerica),
            Site::new("new-york", 40.71, -74.01, NorthAmerica),
            Site::new("washington-dc", 38.91, -77.04, NorthAmerica),
            Site::new("atlanta", 33.75, -84.39, NorthAmerica),
            Site::new("gainesville", 29.65, -82.32, NorthAmerica),
            Site::new("toronto", 43.65, -79.38, NorthAmerica),
            Site::new("vancouver", 49.28, -123.12, NorthAmerica),
            // Europe.
            Site::new("london", 51.51, -0.13, Europe),
            Site::new("cambridge-uk", 52.21, 0.12, Europe),
            Site::new("lancaster", 54.05, -2.80, Europe),
            Site::new("dublin", 53.35, -6.26, Europe),
            Site::new("paris", 48.86, 2.35, Europe),
            Site::new("amsterdam", 52.37, 4.90, Europe),
            Site::new("ghent", 51.05, 3.73, Europe),
            Site::new("berlin", 52.52, 13.41, Europe),
            Site::new("munich", 48.14, 11.58, Europe),
            Site::new("zurich", 47.38, 8.54, Europe),
            Site::new("milan", 45.46, 9.19, Europe),
            Site::new("madrid", 40.42, -3.70, Europe),
            Site::new("lisbon", 38.72, -9.14, Europe),
            Site::new("stockholm", 59.33, 18.07, Europe),
            Site::new("helsinki", 60.17, 24.94, Europe),
            Site::new("warsaw", 52.23, 21.01, Europe),
            Site::new("prague", 50.08, 14.44, Europe),
            Site::new("vienna", 48.21, 16.37, Europe),
            // Asia & Middle East.
            Site::new("tokyo", 35.68, 139.69, Asia),
            Site::new("osaka", 34.69, 135.50, Asia),
            Site::new("seoul", 37.57, 126.98, Asia),
            Site::new("beijing", 39.90, 116.41, Asia),
            Site::new("shanghai", 31.23, 121.47, Asia),
            Site::new("hong-kong", 22.32, 114.17, Asia),
            Site::new("taipei", 25.03, 121.57, Asia),
            Site::new("singapore", 1.35, 103.82, Asia),
            Site::new("bangalore", 12.97, 77.59, Asia),
            Site::new("tel-aviv", 32.09, 34.78, Asia),
            // Oceania.
            Site::new("sydney", -33.87, 151.21, Oceania),
            Site::new("melbourne", -37.81, 144.96, Oceania),
            Site::new("auckland", -36.85, 174.76, Oceania),
            // South America.
            Site::new("sao-paulo", -23.55, -46.63, SouthAmerica),
            Site::new("rio-de-janeiro", -22.91, -43.17, SouthAmerica),
            Site::new("buenos-aires", -34.60, -58.38, SouthAmerica),
            Site::new("santiago", -33.45, -70.67, SouthAmerica),
        ]
    })
}

/// Looks a metro up by name.
pub fn metro(name: &str) -> Option<&'static Site> {
    planetlab_metros().iter().find(|s| s.name == name)
}

/// Weighted sampler of user sites matching PlanetLab's regional node mix.
#[derive(Debug, Clone)]
pub struct SiteSampler {
    weights: Vec<(Region, f64)>,
}

impl SiteSampler {
    /// PlanetLab-like mix: 45% North America, 35% Europe, 14% Asia,
    /// 3% Oceania, 3% South America.
    pub fn planetlab_mix() -> Self {
        Self {
            weights: vec![
                (Region::NorthAmerica, 0.45),
                (Region::Europe, 0.35),
                (Region::Asia, 0.14),
                (Region::Oceania, 0.03),
                (Region::SouthAmerica, 0.03),
            ],
        }
    }

    /// Uniform mix across regions.
    pub fn uniform_mix() -> Self {
        Self {
            weights: vec![
                (Region::NorthAmerica, 0.2),
                (Region::Europe, 0.2),
                (Region::Asia, 0.2),
                (Region::Oceania, 0.2),
                (Region::SouthAmerica, 0.2),
            ],
        }
    }

    /// Samples one metro according to the regional weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static Site {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        let mut chosen = self.weights[0].0;
        for (region, w) in &self.weights {
            if x < *w {
                chosen = *region;
                break;
            }
            x -= w;
        }
        let candidates: Vec<&'static Site> = planetlab_metros()
            .iter()
            .filter(|s| s.region == chosen)
            .collect();
        candidates[rng.gen_range(0..candidates.len())]
    }

    /// Samples `n` metros (with repetition, as several PlanetLab nodes share
    /// a metro).
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<&'static Site> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn catalogs_have_expected_shape() {
        assert_eq!(ec2_regions().len(), 9);
        assert_eq!(ec2_seven().len(), 7);
        assert!(planetlab_metros().len() >= 40);
        assert!(ec2_region("ec2-tokyo").is_some());
        assert!(ec2_region("ec2-mars").is_none());
        assert!(metro("hong-kong").is_some());
    }

    #[test]
    fn site_names_are_unique() {
        let mut names: Vec<_> = planetlab_metros().iter().map(|s| s.name()).collect();
        names.extend(ec2_regions().iter().map(|s| s.name()));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn sampler_respects_regional_mix() {
        let mut rng = StdRng::seed_from_u64(42);
        let sampler = SiteSampler::planetlab_mix();
        let sites = sampler.sample_many(4000, &mut rng);
        let na = sites
            .iter()
            .filter(|s| s.region() == Region::NorthAmerica)
            .count() as f64
            / 4000.0;
        let eu = sites
            .iter()
            .filter(|s| s.region() == Region::Europe)
            .count() as f64
            / 4000.0;
        assert!((na - 0.45).abs() < 0.05, "north america share {na}");
        assert!((eu - 0.35).abs() < 0.05, "europe share {eu}");
    }

    #[test]
    fn sampler_is_deterministic_under_seed() {
        let sampler = SiteSampler::planetlab_mix();
        let a: Vec<_> = sampler
            .sample_many(50, &mut StdRng::seed_from_u64(7))
            .iter()
            .map(|s| s.name())
            .collect();
        let b: Vec<_> = sampler
            .sample_many(50, &mut StdRng::seed_from_u64(7))
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(a, b);
    }
}
