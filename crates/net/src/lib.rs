//! Network latency substrate.
//!
//! The paper's evaluation consumes two latency data sets: inter-agent and
//! agent-to-user one-way delays measured on Amazon EC2 and PlanetLab
//! (references 3 and 22 in the paper — 5 weeks of RTTs at one ping per
//! second).
//! Those proprietary traces are not redistributable, so this crate
//! synthesizes an equivalent substrate:
//!
//! * [`geo`] — great-circle geometry over real coordinates;
//! * [`sites`] — catalogs of real EC2 regions and PlanetLab-style metros;
//! * [`latency`] — a fiber-propagation RTT model (distance / ⅔·c ×
//!   route-inflation + access base), calibrated against the measured edge
//!   values the paper prints in Fig. 2;
//! * [`trace`] — AR(1) time-series of RTT samples with congestion spikes,
//!   mimicking the "one ping per second" measurement streams;
//! * [`noise`] — delay-measurement noise (the objective-value noise model
//!   of Theorem 1 lives in `vc-markov::perturb`);
//! * [`fig2`] — the hand-measured Fig. 2 scenario as printed in the paper.
//!
//! # Example
//!
//! ```
//! use vc_net::{geo::GeoPoint, latency::LatencyModel};
//!
//! let tokyo = GeoPoint::new(35.68, 139.69);
//! let singapore = GeoPoint::new(1.35, 103.82);
//! let model = LatencyModel::default();
//! let one_way = model.one_way_ms(tokyo, singapore);
//! assert!(one_way > 20.0 && one_way < 70.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig2;
pub mod geo;
pub mod latency;
pub mod noise;
pub mod sites;
pub mod trace;
