//! `vc-chaos` — the deterministic fault plane.
//!
//! The fleet only earns its cost/delay numbers if it survives the
//! cloud it runs on: agents flap, disks error, fsyncs stall. This
//! crate injects exactly those failures, **deterministically**:
//!
//! * [`FaultPlan`] — a seeded schedule of agent crash/flap/recover
//!   storms. Every draw comes from a generator seeded from
//!   `(seed, epoch, draw)` — the same reconstructible-randomness
//!   discipline as the orchestrator's WAIT timers — so a plan is a
//!   pure function of its config: journalable, replayable, and
//!   bitwise-identical between a crashed-and-recovered run and its
//!   uncrashed twin.
//! * [`FaultyVfs`] — a [`vc_persist::Vfs`] wrapping the real
//!   filesystem that injects storage faults at **exact byte offsets**:
//!   `fsync` errors ([`StorageFaultKind::FsyncErr`]), short/torn
//!   writes ([`StorageFaultKind::TornWrite`]), and `ENOSPC`
//!   ([`StorageFaultKind::NoSpace`]). The journal under it retries,
//!   then degrades instead of panicking (see
//!   [`vc_persist::journal::Durability`]).
//!
//! Neither half knows about the fleet: the plan emits raw agent
//! indices and virtual times, and the driver (an experiment, a test,
//! an example) maps them onto `fail_agent`/`restore_agent` calls. That
//! keeps the crate at the bottom of the dependency stack — it is the
//! *persistence* layer's fault model, reused by everything above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vc_persist::vfs::{FaultFile, RealVfs, Vfs};

/// RNG stream selector for fault-plan draws (the orchestrator's WAIT
/// and HOP streams are 0 and 1; re-admission backoff is 2).
const STREAM_FAULT: u64 = 3;

/// The deterministic per-draw generator behind every plan decision:
/// everything identifying the draw is mixed into the seed, so the
/// stream is reconstructible from `(seed, epoch, draw)` alone — no
/// long-lived RNG whose hidden state a crash would lose.
pub fn fault_rng(seed: u64, epoch: u64, draw: u64) -> StdRng {
    let mut x = seed;
    x ^= 0xd1b5_4a32_d192_ed03u64.wrapping_mul(epoch.wrapping_add(1));
    x ^= 0x94d0_49bb_1331_11ebu64.wrapping_mul(draw.wrapping_add(1));
    x ^= 0xbf58_476d_1ce4_e5b9u64.wrapping_mul(STREAM_FAULT.wrapping_add(1));
    StdRng::seed_from_u64(x)
}

/// What a scheduled fault does to the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash the agent (driver maps to `Fleet::fail_agent`).
    FailAgent(u32),
    /// Bring the agent back (driver maps to `Fleet::restore_agent`).
    RestoreAgent(u32),
}

/// One scheduled fault at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time of the fault, µs.
    pub t_us: u64,
    /// The storm epoch that drew this event.
    pub epoch: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters of an agent crash/flap/recover storm.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Seed of every draw.
    pub seed: u64,
    /// Candidate victim agents (raw dense indices).
    pub agents: Vec<u32>,
    /// Virtual start of the storm (s).
    pub start_s: f64,
    /// Epoch length (s): each epoch crashes one victim and restores it
    /// before the epoch ends.
    pub period_s: f64,
    /// Number of epochs.
    pub epochs: u64,
}

/// A seeded, replay-exact schedule of agent faults, sorted by time.
///
/// Each epoch `e` draws (victim, crash offset, downtime) from
/// [`fault_rng`]`(seed, e, draw)` with one draw index per decision;
/// the same `(seed, config)` always yields the same storm. Repeated
/// victims across epochs are what makes a storm a *flap*.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self { events: Vec::new() }
    }

    /// Builds a crash/flap/recover storm from `cfg`.
    pub fn storm(cfg: &StormConfig) -> Self {
        let mut events = Vec::with_capacity(cfg.epochs as usize * 2);
        if cfg.agents.is_empty() {
            return Self { events };
        }
        let period_us = (cfg.period_s.max(1e-6) * 1e6) as u64;
        let start_us = (cfg.start_s.max(0.0) * 1e6) as u64;
        for epoch in 0..cfg.epochs {
            // Draw 0: victim; draw 1: crash offset inside the epoch's
            // first half; draw 2: downtime within the second half, so
            // restore always lands before the next epoch begins.
            let victim = cfg.agents[fault_rng(cfg.seed, epoch, 0).gen_range(0..cfg.agents.len())];
            let crash_frac: f64 = fault_rng(cfg.seed, epoch, 1).gen_range(0.0..0.5);
            let down_frac: f64 = fault_rng(cfg.seed, epoch, 2).gen_range(0.1..0.45);
            let epoch_start = start_us + epoch * period_us;
            let crash_us = epoch_start + (crash_frac * period_us as f64) as u64;
            let restore_us = crash_us + (down_frac * period_us as f64) as u64;
            events.push(FaultEvent {
                t_us: crash_us,
                epoch,
                kind: FaultKind::FailAgent(victim),
            });
            events.push(FaultEvent {
                t_us: restore_us,
                epoch,
                kind: FaultKind::RestoreAgent(victim),
            });
        }
        events.sort_by_key(|e| (e.t_us, e.epoch));
        Self { events }
    }

    /// Every scheduled event, ascending by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events due in the half-open virtual window `[from_us, to_us)`.
    pub fn window(&self, from_us: u64, to_us: u64) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.t_us < from_us);
        let hi = self.events.partition_point(|e| e.t_us < to_us);
        &self.events[lo..hi]
    }

    /// Virtual time of the last scheduled event, µs (0 for an empty plan).
    pub fn end_us(&self) -> u64 {
        self.events.last().map_or(0, |e| e.t_us)
    }
}

/// How an armed storage fault misbehaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// `sync_data`/`sync_all` fails `times` consecutive calls (then the
    /// fault is spent). Error: `EIO`.
    FsyncErr {
        /// Consecutive failing sync calls.
        times: u32,
    },
    /// The write covering the armed byte offset tears: bytes up to the
    /// offset reach the file, the rest do not. Error: `EIO`.
    TornWrite,
    /// The write covering the armed byte offset is refused after the
    /// offset: a short write followed by `ENOSPC`.
    NoSpace,
}

/// One storage fault, armed at an exact byte offset of matching files.
#[derive(Debug, Clone)]
pub struct StorageFault {
    /// Substring the file path must contain (e.g. `".vcwal"` to target
    /// journals, a full file name to target one file).
    pub path_contains: String,
    /// The absolute file byte offset that arms the fault: a write
    /// crossing it tears/refuses there; a sync fault arms once the
    /// file has reached it.
    pub at_byte: u64,
    /// What goes wrong.
    pub kind: StorageFaultKind,
}

#[derive(Debug, Default)]
struct FaultLedger {
    pending: Mutex<Vec<StorageFault>>,
    fsync_errors: AtomicU64,
    write_faults: AtomicU64,
}

/// A [`Vfs`] over the real filesystem that injects the scheduled
/// [`StorageFault`]s, byte-exactly. Clone-cheap (shared schedule);
/// faults are consumed as they trigger, and the injection counters
/// tell a test exactly how many fired.
#[derive(Debug, Clone, Default)]
pub struct FaultyVfs {
    ledger: Arc<FaultLedger>,
}

impl FaultyVfs {
    /// A fault-free instance; arm faults with [`inject`](Self::inject).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms one storage fault.
    pub fn inject(&self, fault: StorageFault) {
        self.ledger
            .pending
            .lock()
            .expect("fault ledger")
            .push(fault);
    }

    /// Faults armed but not yet (fully) triggered.
    pub fn pending(&self) -> usize {
        self.ledger.pending.lock().expect("fault ledger").len()
    }

    /// Injected `fsync` failures so far.
    pub fn fsync_errors(&self) -> u64 {
        self.ledger.fsync_errors.load(Ordering::Relaxed)
    }

    /// Injected write failures (torn writes + `ENOSPC`) so far.
    pub fn write_faults(&self) -> u64 {
        self.ledger.write_faults.load(Ordering::Relaxed)
    }
}

impl Vfs for FaultyVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn FaultFile>> {
        let inner = RealVfs.create(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            path: path.to_string_lossy().into_owned(),
            offset: 0,
            ledger: Arc::clone(&self.ledger),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        RealVfs.rename(from, to)
    }
}

#[derive(Debug)]
struct FaultyFile {
    inner: Box<dyn FaultFile>,
    path: String,
    /// Bytes successfully written to the underlying file.
    offset: u64,
    ledger: Arc<FaultLedger>,
}

impl FaultyFile {
    /// Pops the first pending write fault whose armed offset falls
    /// inside `[offset, offset + len)` for this path.
    fn take_write_fault(&self, len: u64) -> Option<StorageFault> {
        let mut pending = self.ledger.pending.lock().expect("fault ledger");
        let idx = pending.iter().position(|f| {
            matches!(
                f.kind,
                StorageFaultKind::TornWrite | StorageFaultKind::NoSpace
            ) && self.path.contains(&f.path_contains)
                && f.at_byte >= self.offset
                && f.at_byte < self.offset + len
        })?;
        Some(pending.remove(idx))
    }

    /// Consumes one armed sync failure for this path, if any.
    fn take_sync_fault(&self) -> bool {
        let mut pending = self.ledger.pending.lock().expect("fault ledger");
        let idx = pending.iter().position(|f| {
            matches!(f.kind, StorageFaultKind::FsyncErr { .. })
                && self.path.contains(&f.path_contains)
                && self.offset >= f.at_byte
        });
        let Some(idx) = idx else { return false };
        if let StorageFaultKind::FsyncErr { times } = &mut pending[idx].kind {
            *times -= 1;
            if *times == 0 {
                pending.remove(idx);
            }
            true
        } else {
            false
        }
    }

    fn faulted_sync(&mut self, all: bool) -> io::Result<()> {
        if self.take_sync_fault() {
            self.ledger.fsync_errors.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::from_raw_os_error(5)); // EIO
        }
        if all {
            self.inner.sync_all()
        } else {
            self.inner.sync_data()
        }
    }
}

impl FaultFile for FaultyFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some(fault) = self.take_write_fault(buf.len() as u64) {
            // Tear byte-exactly: the prefix up to the armed offset
            // reaches the file, the rest never does.
            let keep = (fault.at_byte - self.offset) as usize;
            self.inner.write_all(&buf[..keep])?;
            self.offset += keep as u64;
            self.ledger.write_faults.fetch_add(1, Ordering::Relaxed);
            let errno = match fault.kind {
                StorageFaultKind::NoSpace => 28, // ENOSPC
                _ => 5,                          // EIO
            };
            return Err(io::Error::from_raw_os_error(errno));
        }
        self.inner.write_all(buf)?;
        self.offset += buf.len() as u64;
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.faulted_sync(false)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.faulted_sync(true)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)?;
        self.offset = self.offset.min(len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use vc_persist::journal::{read_journal, Durability, FsyncPolicy, JournalWriter, RetryPolicy};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-chaos")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn storms_are_pure_functions_of_their_seed() {
        let cfg = StormConfig {
            seed: 7,
            agents: vec![0, 1, 2, 3],
            start_s: 1.0,
            period_s: 2.0,
            epochs: 16,
        };
        let a = FaultPlan::storm(&cfg);
        let b = FaultPlan::storm(&cfg);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 32);
        let c = FaultPlan::storm(&StormConfig { seed: 8, ..cfg });
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn every_crash_restores_before_the_next_epoch() {
        let cfg = StormConfig {
            seed: 42,
            agents: vec![5, 9],
            start_s: 0.0,
            period_s: 1.0,
            epochs: 8,
        };
        let plan = FaultPlan::storm(&cfg);
        for epoch in 0..cfg.epochs {
            let evs: Vec<_> = plan.events().iter().filter(|e| e.epoch == epoch).collect();
            assert_eq!(evs.len(), 2);
            let crash = evs
                .iter()
                .find(|e| matches!(e.kind, FaultKind::FailAgent(_)))
                .expect("crash");
            let restore = evs
                .iter()
                .find(|e| matches!(e.kind, FaultKind::RestoreAgent(_)))
                .expect("restore");
            assert!(crash.t_us < restore.t_us);
            assert!(restore.t_us < (epoch + 1) * 1_000_000);
        }
    }

    #[test]
    fn window_slices_by_virtual_time() {
        let plan = FaultPlan::storm(&StormConfig {
            seed: 1,
            agents: vec![0],
            start_s: 0.0,
            period_s: 1.0,
            epochs: 4,
        });
        let all = plan.events().len();
        assert_eq!(plan.window(0, u64::MAX).len(), all);
        let split = plan.events()[all / 2].t_us;
        assert_eq!(
            plan.window(0, split).len() + plan.window(split, u64::MAX).len(),
            all
        );
    }

    #[test]
    fn fsync_fault_degrades_journal_then_heals_without_loss() {
        let dir = tmp_dir("fsync-degrade");
        let path = dir.join("j.vcwal");
        let vfs = FaultyVfs::new();
        let mut w = JournalWriter::<u64>::create_with(
            &path,
            FsyncPolicy::Always,
            0,
            &vfs,
            RetryPolicy::immediate(3),
        )
        .expect("create");
        // Armed after creation so the header sync stays clean; more
        // consecutive failures than the retry budget: degrade.
        vfs.inject(StorageFault {
            path_contains: ".vcwal".into(),
            at_byte: 8,
            kind: StorageFaultKind::FsyncErr { times: 10 },
        });
        for v in 0..5u64 {
            w.append(&v).expect("append is always accepted");
        }
        assert_eq!(w.durability(), Durability::Degraded);
        assert!(vfs.fsync_errors() >= 3);
        // The fault burns out; healing re-syncs with nothing lost.
        while vfs.pending() > 0 {
            let _ = w.try_heal();
        }
        assert!(w.try_heal());
        assert_eq!(w.durability(), Durability::Synchronous);
        let (records, tail) = read_journal::<u64>(&path).expect("read");
        assert_eq!(records.len(), 5);
        assert!(!tail.torn);
    }

    #[test]
    fn torn_write_is_cut_back_and_rewritten_on_heal() {
        let dir = tmp_dir("torn-heal");
        let path = dir.join("j.vcwal");
        let vfs = FaultyVfs::new();
        // Tear inside the third frame's bytes (header 8 + 2 frames of
        // 24 + a few bytes into the next).
        vfs.inject(StorageFault {
            path_contains: ".vcwal".into(),
            at_byte: 8 + 2 * 24 + 5,
            kind: StorageFaultKind::TornWrite,
        });
        let mut w = JournalWriter::<u64>::create_with(
            &path,
            FsyncPolicy::Manual,
            0,
            &vfs,
            RetryPolicy::immediate(1),
        )
        .expect("create");
        for v in 0..4u64 {
            w.append(&v).expect("append");
        }
        w.commit().expect("commit degrades, not errors");
        assert_eq!(w.durability(), Durability::Degraded);
        assert_eq!(vfs.write_faults(), 1);
        // Crash now: the torn tail reads as a clean (empty) prefix.
        let (records, _) = read_journal::<u64>(&path).expect("read");
        assert!(records.len() < 4);
        // Heal: truncate the tear, rewrite, sync — all four records land.
        assert!(w.try_heal());
        assert_eq!(w.durability(), Durability::Synchronous);
        let (records, tail) = read_journal::<u64>(&path).expect("read");
        assert_eq!(records.len(), 4);
        assert!(!tail.torn);
    }

    #[test]
    fn enospc_reports_the_right_errno() {
        let dir = tmp_dir("enospc");
        let path = dir.join("f.bin");
        let vfs = FaultyVfs::new();
        vfs.inject(StorageFault {
            path_contains: "f.bin".into(),
            at_byte: 3,
            kind: StorageFaultKind::NoSpace,
        });
        let mut f = vfs.create(&path).expect("create");
        let err = f.write_all(b"hello").expect_err("must refuse");
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(std::fs::read(&path).expect("read"), b"hel");
    }
}
