//! A live scrape endpoint: hand-rolled HTTP/1.0 over
//! `std::net::TcpListener` (the vendored-deps constraint rules out
//! hyper — not the design). Three routes:
//!
//! * `GET /metrics` — Prometheus text exposition
//!   ([`prometheus_text`] over the plane, plus whatever extra series
//!   the embedding process appends — fleet telemetry, typically);
//! * `GET /trace` — the lifecycle trace as Chrome-trace/Perfetto JSON
//!   ([`ObsPlane::trace_chrome_json`]);
//! * `GET /postmortem` — the last flight-recorder post-mortem, or
//!   `{"post_mortem": null}` when none has fired.
//!
//! The server is one background thread over a non-blocking accept
//! loop; requests are served synchronously (scrapes are rare and the
//! bodies are built from lock-free snapshots, so a slow scraper never
//! back-pressures the fleet). [`ObsServer`] shuts the thread down on
//! drop.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::plane::{ObsPlane, Site};

/// Extra `/metrics` series appended after the plane's own — the
/// embedding process renders its own gauges (fleet telemetry) here.
pub type ExtraMetrics = Box<dyn Fn() -> String + Send + Sync>;

/// Render the plane as Prometheus text exposition format (v0.0.4).
///
/// Always emits `vc_obs_ops_recorded` (the CI smoke test greps it);
/// site series are emitted only for sites that recorded samples.
pub fn prometheus_text(plane: &ObsPlane) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# TYPE vc_obs_ops_recorded counter\n");
    out.push_str(&format!("vc_obs_ops_recorded {}\n", plane.flight().total()));
    out.push_str("# TYPE vc_obs_trace_events counter\n");
    out.push_str(&format!("vc_obs_trace_events {}\n", plane.trace().total()));
    out.push_str("# TYPE vc_obs_freeze_read_fast counter\n");
    out.push_str(&format!(
        "vc_obs_freeze_read_fast {}\n",
        plane.freeze_read_fast()
    ));
    out.push_str("# TYPE vc_obs_swap_attempts counter\n");
    out.push_str("# TYPE vc_obs_swap_conflicts counter\n");
    for (shard, (attempts, conflicts)) in plane.swap_counters().iter().enumerate() {
        out.push_str(&format!(
            "vc_obs_swap_attempts{{shard=\"{shard}\"}} {attempts}\n"
        ));
        out.push_str(&format!(
            "vc_obs_swap_conflicts{{shard=\"{shard}\"}} {conflicts}\n"
        ));
    }
    out.push_str("# TYPE vc_obs_site_count counter\n");
    out.push_str("# TYPE vc_obs_site_ns summary\n");
    for site in Site::ALL {
        let s = plane.summary(site);
        if s.count == 0 {
            continue;
        }
        let name = site.name();
        out.push_str(&format!(
            "vc_obs_site_count{{site=\"{name}\"}} {}\n",
            s.count
        ));
        out.push_str(&format!(
            "vc_obs_site_mean_ns{{site=\"{name}\"}} {:.1}\n",
            s.mean_ns
        ));
        for (q, v) in [
            ("0.5", s.p50_ns),
            ("0.9", s.p90_ns),
            ("0.99", s.p99_ns),
            ("0.999", s.p999_ns),
        ] {
            out.push_str(&format!(
                "vc_obs_site_ns{{site=\"{name}\",quantile=\"{q}\"}} {v}\n"
            ));
        }
        out.push_str(&format!(
            "vc_obs_site_max_ns{{site=\"{name}\"}} {}\n",
            s.max_ns
        ));
    }
    out
}

/// A running scrape endpoint. Dropping it stops the accept loop and
/// joins the serving thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// start serving the plane. `extra` appends process-level series
    /// to `/metrics`.
    pub fn bind(
        addr: &str,
        plane: Arc<ObsPlane>,
        extra: Option<ExtraMetrics>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("vc-obs-serve".into())
            .spawn(move || accept_loop(listener, plane, extra, stop_flag))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    plane: Arc<ObsPlane>,
    extra: Option<ExtraMetrics>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, &plane, extra.as_deref()),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Total time one connection may spend delivering its request. The
/// per-read timeout alone is not enough: requests are served
/// synchronously on one thread, so a client trickling a byte per
/// (sub-timeout) interval would hold the endpoint hostage for as long
/// as it cares to drip — each read succeeds, the deadline never
/// triggers. The elapsed budget cuts such a connection regardless of
/// per-read progress.
const READ_DEADLINE: Duration = Duration::from_secs(2);

fn handle_conn(
    mut stream: TcpStream,
    plane: &ObsPlane,
    extra: Option<&(dyn Fn() -> String + Send + Sync)>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let started = Instant::now();
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    let mut complete = false;
    // Read until the header terminator (we only need the request line),
    // bounded by the total deadline.
    while len < buf.len() && started.elapsed() < READ_DEADLINE {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    complete = true;
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if !complete && started.elapsed() >= READ_DEADLINE {
        let _ = stream.write_all(
            b"HTTP/1.0 408 Request Timeout\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        return;
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let mut parts = request.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => {
                let mut body = prometheus_text(plane);
                if let Some(extra) = extra {
                    body.push_str(&extra());
                }
                ("200 OK", "text/plain; version=0.0.4", body)
            }
            "/trace" => ("200 OK", "application/json", plane.trace_chrome_json()),
            "/postmortem" => (
                "200 OK",
                "application/json",
                plane
                    .last_post_mortem()
                    .unwrap_or_else(|| "{\"post_mortem\": null}".to_string()),
            ),
            _ => ("404 Not Found", "text/plain", "unknown route\n".to_string()),
        }
    };
    let _ = stream.write_all(
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
}

/// Minimal HTTP/1.0 GET against a served endpoint — the example's
/// self-probe and the CI smoke test use this instead of shelling out
/// to curl. Returns `(status_code, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: vc\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::OpKind;
    use crate::trace::TraceKind;

    fn served_plane() -> (ObsServer, Arc<ObsPlane>) {
        let plane = Arc::new(ObsPlane::new(2));
        plane.record_ns(Site::Hop, 12_345);
        plane.note_op(OpKind::Hop, 1, 0);
        plane.note_trace(TraceKind::Registered, 1, 2);
        plane.note_trace(TraceKind::Admitted, 1, 99);
        let server = ObsServer::bind(
            "127.0.0.1:0",
            Arc::clone(&plane),
            Some(Box::new(|| "vc_fleet_live_sessions 7\n".to_string())),
        )
        .expect("bind");
        (server, plane)
    }

    #[test]
    fn metrics_route_serves_plane_and_extra_series() {
        let (server, _plane) = served_plane();
        let (status, body) = http_get(server.local_addr(), "/metrics").expect("get");
        assert_eq!(status, 200);
        assert!(body.contains("vc_obs_ops_recorded 1"));
        assert!(body.contains("vc_obs_trace_events 2"));
        assert!(body.contains("vc_obs_site_ns{site=\"hop\",quantile=\"0.99\"}"));
        assert!(body.contains("vc_fleet_live_sessions 7"));
    }

    #[test]
    fn trace_route_streams_perfetto_json() {
        let (server, _plane) = served_plane();
        let (status, body) = http_get(server.local_addr(), "/trace").expect("get");
        assert_eq!(status, 200);
        assert!(body.contains("\"traceEvents\""));
        assert!(body.contains("\"name\": \"admitted\""));
    }

    #[test]
    fn postmortem_route_serves_null_then_the_dump() {
        let (server, plane) = served_plane();
        let (status, body) = http_get(server.local_addr(), "/postmortem").expect("get");
        assert_eq!(status, 200);
        assert!(body.contains("\"post_mortem\": null"));
        plane.post_mortem_once("test_reason", "detail");
        let (status, body) = http_get(server.local_addr(), "/postmortem").expect("get");
        assert_eq!(status, 200);
        assert!(body.contains("\"post_mortem\": \"test_reason\""));
    }

    #[test]
    fn scrapes_stay_responsive_despite_a_stalled_client() {
        let (server, _plane) = served_plane();
        let addr = server.local_addr();
        // A slow-loris client: opens the connection and trickles header
        // bytes, never completing the request. Each per-read timeout is
        // dodged; only the total deadline cuts it.
        let stop = Arc::new(AtomicBool::new(false));
        let stop_trickle = Arc::clone(&stop);
        let loris = std::thread::spawn(move || {
            if let Ok(mut s) = TcpStream::connect(addr) {
                while !stop_trickle.load(Ordering::Relaxed) {
                    if s.write_all(b"G").is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        });
        // Let the loris get accepted first.
        std::thread::sleep(Duration::from_millis(150));
        let t0 = std::time::Instant::now();
        let (status, body) = http_get(addr, "/metrics").expect("scrape while stalled");
        assert_eq!(status, 200);
        assert!(body.contains("vc_obs_ops_recorded"));
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "total read deadline must cut the stalled connection, took {:?}",
            t0.elapsed()
        );
        stop.store(true, Ordering::Relaxed);
        loris.join().expect("loris thread");
    }

    #[test]
    fn unknown_route_is_404_and_shutdown_joins() {
        let (server, _plane) = served_plane();
        let (status, _) = http_get(server.local_addr(), "/nope").expect("get");
        assert_eq!(status, 404);
        // Drop joins the accept thread; hanging here would fail the
        // test by timeout.
        drop(server);
    }
}
