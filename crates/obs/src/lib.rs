//! `vc-obs` — a lock-free latency/contention observability plane.
//!
//! The paper's whole argument is about *delay and cost distributions*,
//! so the reproduction must be able to measure itself the same way:
//! tails, not means. This crate is hand-rolled under the vendored-deps
//! constraint (no `tracing`, no `hdrhistogram`) and provides:
//!
//! * [`hist::LatencyHist`] — log-linear histograms with a fixed
//!   ~2.6 kB footprint, mergeable, exposing p50/p90/p99/p999/max (see
//!   `crates/obs/README.md` for the bucket scheme, reproducible
//!   offline);
//! * [`plane::ObsPlane`] — per-fleet plane of striped lock-free
//!   recorders (relaxed atomic buckets, per-thread stripes, drained by
//!   the sampler), span timers gated on one relaxed load when
//!   disabled, and per-shard swap contention counters;
//! * [`flight::FlightRecorder`] — a bounded ring of the last N fleet
//!   ops that dumps a structured post-mortem on conservation
//!   violation, audit failure, or recovery divergence;
//! * [`trace::TraceRing`] — causal per-session lifecycle tracing
//!   (registered → admit → WAIT → hop → depart, global seq +
//!   per-session chain), exportable as Chrome-trace/Perfetto JSON;
//! * [`serve::ObsServer`] — a hand-rolled HTTP/1.0 scrape endpoint
//!   (`/metrics` Prometheus text, `/trace` Perfetto, `/postmortem`);
//! * [`watchdog::Watchdog`] — rolling-window SLO burn detectors that
//!   fire a post-mortem + trace dump proactively when a budget burns;
//! * a process-wide allocation-counter hook
//!   ([`register_alloc_counter`]) so the experiments binary's counting
//!   global allocator surfaces as allocs-per-op in JSON exports.
//!
//! The plane deliberately depends on nothing (the endpoint is plain
//! `std::net`), so every crate in the workspace can instrument itself
//! without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod plane;
pub mod serve;
pub mod trace;
pub mod watchdog;

pub use flight::{FlightEvent, FlightRecorder, OpKind};
pub use hist::{HistSummary, LatencyHist};
pub use plane::{
    ObsConfig, ObsPlane, SharedHist, Site, DEFAULT_FLIGHT_CAPACITY, DEFAULT_TRACE_CAPACITY,
};
pub use serve::{http_get, prometheus_text, ObsServer};
pub use trace::{TraceEvent, TraceKind, TraceRing};
pub use watchdog::{SloSpec, Watchdog, WatchdogFire};

use std::sync::OnceLock;

static ALLOC_HOOK: OnceLock<fn() -> u64> = OnceLock::new();

/// Register the process allocation counter (the experiments binary's
/// counting global allocator). First registration wins; later calls
/// are no-ops, so tests and the binary can both call this safely.
pub fn register_alloc_counter(f: fn() -> u64) {
    let _ = ALLOC_HOOK.set(f);
}

/// The current process allocation count, if a counter was registered.
pub fn allocs_now() -> Option<u64> {
    ALLOC_HOOK.get().map(|f| f())
}

#[cfg(test)]
mod tests {
    #[test]
    fn alloc_hook_roundtrips() {
        fn fake() -> u64 {
            42
        }
        super::register_alloc_counter(fake);
        assert_eq!(super::allocs_now(), Some(42));
        // Second registration is a no-op.
        fn other() -> u64 {
            7
        }
        super::register_alloc_counter(other);
        assert_eq!(super::allocs_now(), Some(42));
    }
}
