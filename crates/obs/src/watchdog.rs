//! SLO burn watchdogs: rolling-window burn-rate detectors over plane
//! snapshots that fire a flight-recorder post-mortem **plus** a
//! lifecycle trace dump *proactively* — when a budget is burning — not
//! only after a conservation/audit invariant already broke.
//!
//! Five budgets are watched, one detector each:
//!
//! * **p99 hop latency** — windowed p99 of [`Site::Hop`];
//! * **admission fraction floor** — the caller feeds the fleet's
//!   cumulative admission success rate per tick;
//! * **swap-conflict ratio** — windowed `conflicts / attempts` over
//!   the ledger shards;
//! * **journal fsync p99** — windowed p99 of [`Site::JournalFsync`];
//! * **durability degraded** — the caller feeds the journal's
//!   buffered-degraded flag per tick
//!   ([`Watchdog::observe_full`]) — a fleet riding out storage faults
//!   in memory is burning its crash-safety budget even while every
//!   latency budget looks healthy.
//!
//! "Windowed" means the delta between consecutive cumulative
//! histogram snapshots ([`LatencyHist::delta`]), so a detector sees
//! the *current* burn rate, not the lifetime average. A budget must
//! breach in at least `burn` of the last `window` observation ticks to
//! fire — a single noisy window is not an incident. The watchdog fires
//! **exactly once per incident**: a fire latches, triggers
//! [`ObsPlane::post_mortem_once`] and captures the Perfetto trace
//! export in the returned [`WatchdogFire`]; the latch re-arms only
//! after a *fully clean* window (every detector breach-free for
//! `window` consecutive ticks), so one incident produces one page no
//! matter how long it burns, and a genuinely new incident after
//! recovery pages again ([`Watchdog::fired`] stays true once any
//! incident has fired).
//!
//! The watchdog lives entirely off the hot path: one `observe` per
//! telemetry tick walks the histograms under a plain mutex. Nothing
//! here runs per hop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::hist::LatencyHist;
use crate::plane::{ObsPlane, Site};

/// The SLO budgets a [`Watchdog`] enforces, plus the burn window.
#[derive(Clone, Copy, Debug)]
pub struct SloSpec {
    /// Max windowed p99 hop latency, µs.
    pub hop_p99_us_max: f64,
    /// Min cumulative admission success fraction.
    pub admission_floor: f64,
    /// Max windowed ledger `try_swap` conflict ratio.
    pub swap_conflict_ratio_max: f64,
    /// Max windowed p99 journal fsync latency, µs.
    pub fsync_p99_us_max: f64,
    /// Rolling window length, in observation ticks.
    pub window: usize,
    /// How many breaching ticks within the window trigger a fire.
    pub burn: usize,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            hop_p99_us_max: 1_000.0,
            admission_floor: 0.25,
            swap_conflict_ratio_max: 0.5,
            fsync_p99_us_max: 50_000.0,
            window: 5,
            burn: 3,
        }
    }
}

/// A latency window with fewer samples than this is too thin to
/// quantile — the detector treats it as healthy.
const MIN_WINDOW_SAMPLES: u64 = 8;
/// A swap window with fewer attempts than this has no meaningful ratio.
const MIN_SWAP_ATTEMPTS: u64 = 16;

/// What a fired watchdog hands back: which budget burned, the observed
/// value, and the two dumps.
#[derive(Debug)]
pub struct WatchdogFire {
    /// Which budget burned (`hop_p99`, `admission_fraction`,
    /// `swap_conflict_ratio`, `fsync_p99`, `durability_degraded`).
    pub budget: &'static str,
    /// The windowed value that breached.
    pub value: f64,
    /// The budget it breached.
    pub threshold: f64,
    /// The post-mortem JSON, when this fire was the plane's first dump
    /// (`None` if an invariant break already consumed the one-shot).
    pub post_mortem: Option<String>,
    /// The Perfetto/Chrome-trace export captured at fire time.
    pub trace_json: String,
}

/// One budget's rolling breach history (ring of the last `window`
/// tick outcomes).
struct Detector {
    history: Vec<bool>,
    pos: usize,
}

impl Detector {
    fn new(window: usize) -> Self {
        Self {
            history: vec![false; window.max(1)],
            pos: 0,
        }
    }

    /// Push one tick outcome; true when ≥ `burn` of the window breached.
    fn push(&mut self, breach: bool, burn: usize) -> bool {
        self.history[self.pos] = breach;
        self.pos = (self.pos + 1) % self.history.len();
        self.history.iter().filter(|&&b| b).count() >= burn.max(1)
    }

    /// Whether the whole window is breach-free.
    fn is_clean(&self) -> bool {
        self.history.iter().all(|&b| !b)
    }
}

struct WatchState {
    hop_prev: LatencyHist,
    fsync_prev: LatencyHist,
    swap_prev: (u64, u64),
    detectors: [Detector; 5],
    /// In-incident latch: set on fire, cleared only once every
    /// detector's window is fully clean (the incident ended).
    latched: bool,
}

/// The burn watchdog. One per fleet, observed once per telemetry tick.
pub struct Watchdog {
    spec: SloSpec,
    state: Mutex<WatchState>,
    fired: AtomicBool,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("spec", &self.spec)
            .field("fired", &self.fired())
            .finish()
    }
}

impl Watchdog {
    /// A watchdog over the given budgets.
    pub fn new(spec: SloSpec) -> Self {
        let w = spec.window;
        Self {
            spec,
            state: Mutex::new(WatchState {
                hop_prev: LatencyHist::new(),
                fsync_prev: LatencyHist::new(),
                swap_prev: (0, 0),
                detectors: [
                    Detector::new(w),
                    Detector::new(w),
                    Detector::new(w),
                    Detector::new(w),
                    Detector::new(w),
                ],
                latched: false,
            }),
            fired: AtomicBool::new(false),
        }
    }

    /// The budgets this watchdog enforces.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Has this watchdog ever fired? (At most once per *incident*; a
    /// new incident after a fully clean window fires again, but this
    /// flag latches on the first fire and stays set.)
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// [`observe_full`](Self::observe_full) with a healthy durability
    /// signal — for callers that don't persist (or predate the chaos
    /// plane).
    pub fn observe(
        &self,
        plane: &ObsPlane,
        admission_success: Option<f64>,
    ) -> Option<WatchdogFire> {
        self.observe_full(plane, admission_success, false)
    }

    /// Feed one observation tick: diff the plane's cumulative
    /// histograms into the current window, update every burn detector,
    /// and fire (once per incident) when one crosses its burn
    /// threshold.
    ///
    /// `admission_success` is the fleet's cumulative admission success
    /// fraction (the caller owns fleet counters; the plane does not) —
    /// pass `None` before any admission has been attempted.
    /// `durability_degraded` is the journal's buffered-degraded flag
    /// (`Fleet::durability_degraded()` on the orchestrator side).
    pub fn observe_full(
        &self,
        plane: &ObsPlane,
        admission_success: Option<f64>,
        durability_degraded: bool,
    ) -> Option<WatchdogFire> {
        let mut st = self.state.lock().ok()?;

        let hop_now = plane.snapshot(Site::Hop);
        let hop_window = hop_now.delta(&st.hop_prev);
        let hop_p99_us = hop_window.percentile(0.99) as f64 / 1_000.0;
        let hop_breach =
            hop_window.count() >= MIN_WINDOW_SAMPLES && hop_p99_us > self.spec.hop_p99_us_max;
        st.hop_prev = hop_now;

        let fsync_now = plane.snapshot(Site::JournalFsync);
        let fsync_window = fsync_now.delta(&st.fsync_prev);
        let fsync_p99_us = fsync_window.percentile(0.99) as f64 / 1_000.0;
        let fsync_breach =
            fsync_window.count() >= MIN_WINDOW_SAMPLES && fsync_p99_us > self.spec.fsync_p99_us_max;
        st.fsync_prev = fsync_now;

        let (attempts, conflicts) = plane
            .swap_counters()
            .iter()
            .fold((0u64, 0u64), |(a, c), (sa, sc)| (a + sa, c + sc));
        let (d_attempts, d_conflicts) = (
            attempts.saturating_sub(st.swap_prev.0),
            conflicts.saturating_sub(st.swap_prev.1),
        );
        let swap_ratio = if d_attempts > 0 {
            d_conflicts as f64 / d_attempts as f64
        } else {
            0.0
        };
        let swap_breach =
            d_attempts >= MIN_SWAP_ATTEMPTS && swap_ratio > self.spec.swap_conflict_ratio_max;
        st.swap_prev = (attempts, conflicts);

        let adm = admission_success.unwrap_or(1.0);
        let adm_breach = admission_success.is_some() && adm < self.spec.admission_floor;

        let burn = self.spec.burn;
        let ticks: [(bool, &'static str, f64, f64); 5] = [
            (hop_breach, "hop_p99", hop_p99_us, self.spec.hop_p99_us_max),
            (
                adm_breach,
                "admission_fraction",
                adm,
                self.spec.admission_floor,
            ),
            (
                swap_breach,
                "swap_conflict_ratio",
                swap_ratio,
                self.spec.swap_conflict_ratio_max,
            ),
            (
                fsync_breach,
                "fsync_p99",
                fsync_p99_us,
                self.spec.fsync_p99_us_max,
            ),
            (
                durability_degraded,
                "durability_degraded",
                f64::from(u8::from(durability_degraded)),
                0.0,
            ),
        ];
        let mut tripped: Option<(&'static str, f64, f64)> = None;
        for (i, &(breach, budget, value, threshold)) in ticks.iter().enumerate() {
            // Every detector advances every tick, even after one trips —
            // the histories stay aligned and a later inspection sees
            // the full picture.
            if st.detectors[i].push(breach, burn) && tripped.is_none() {
                tripped = Some((budget, value, threshold));
            }
        }
        if tripped.is_none() {
            // The incident is over only when *every* detector's window
            // is fully clean — a still-breaching-but-below-burn tail
            // keeps the latch held, so flapping at the threshold can't
            // page repeatedly.
            if st.latched && st.detectors.iter().all(Detector::is_clean) {
                st.latched = false;
            }
            return None;
        }
        if st.latched {
            return None; // same incident — already paged
        }
        st.latched = true;
        drop(st);

        let (budget, value, threshold) = tripped?;
        self.fired.store(true, Ordering::Relaxed);
        let detail = format!(
            "{budget} burned: windowed value {value:.3} vs budget {threshold:.3} \
             ({burn}-of-{} window)",
            self.spec.window
        );
        let post_mortem = plane.post_mortem_once(&format!("slo_burn:{budget}"), &detail);
        Some(WatchdogFire {
            budget,
            value,
            threshold,
            post_mortem,
            trace_json: plane.trace_chrome_json(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_spec() -> SloSpec {
        SloSpec {
            hop_p99_us_max: 10.0,
            window: 4,
            burn: 2,
            ..SloSpec::default()
        }
    }

    fn feed_hops(plane: &ObsPlane, n: u64, ns: u64) {
        for _ in 0..n {
            plane.record_ns(Site::Hop, ns);
        }
    }

    #[test]
    fn sustained_breach_fires_exactly_once() {
        let plane = ObsPlane::new(1);
        let wd = Watchdog::new(tight_spec());
        plane.note_trace(crate::trace::TraceKind::Registered, 1, 0);
        // Two consecutive windows of 1 ms hops against a 10 µs budget.
        feed_hops(&plane, 32, 1_000_000);
        assert!(
            wd.observe(&plane, Some(0.9)).is_none(),
            "burn=2 needs 2 ticks"
        );
        feed_hops(&plane, 32, 1_000_000);
        let fire = wd.observe(&plane, Some(0.9)).expect("second breach fires");
        assert_eq!(fire.budget, "hop_p99");
        assert!(fire.value > 10.0);
        assert!(wd.fired());
        let pm = fire.post_mortem.expect("first plane dump");
        assert!(pm.contains("slo_burn:hop_p99"));
        assert!(fire.trace_json.contains("\"traceEvents\""));
        // Keep burning: still the same incident, no second page.
        feed_hops(&plane, 32, 1_000_000);
        assert!(wd.observe(&plane, Some(0.9)).is_none());
    }

    #[test]
    fn watchdog_rearms_after_clean_window() {
        let plane = ObsPlane::new(1);
        let wd = Watchdog::new(tight_spec()); // window 4, burn 2
        feed_hops(&plane, 32, 1_000_000);
        assert!(wd.observe(&plane, Some(0.9)).is_none());
        feed_hops(&plane, 32, 1_000_000);
        assert!(wd.observe(&plane, Some(0.9)).is_some(), "incident 1 pages");
        // Recovery: enough healthy ticks to flush the whole window.
        for _ in 0..6 {
            feed_hops(&plane, 32, 1_000);
            assert!(wd.observe(&plane, Some(0.9)).is_none());
        }
        // A genuinely new incident pages again.
        feed_hops(&plane, 32, 1_000_000);
        assert!(wd.observe(&plane, Some(0.9)).is_none());
        feed_hops(&plane, 32, 1_000_000);
        let fire = wd.observe(&plane, Some(0.9)).expect("incident 2 pages");
        assert_eq!(fire.budget, "hop_p99");
        // The one-shot post-mortem went to incident 1; incident 2 still
        // carries the trace dump.
        assert!(fire.post_mortem.is_none());
        assert!(fire.trace_json.contains("\"traceEvents\""));
        assert!(wd.fired(), "ever-fired flag latches across incidents");
    }

    #[test]
    fn durability_degraded_burns() {
        let plane = ObsPlane::new(1);
        let wd = Watchdog::new(SloSpec {
            window: 3,
            burn: 2,
            ..SloSpec::default()
        });
        assert!(wd.observe_full(&plane, None, true).is_none());
        let fire = wd.observe_full(&plane, None, true).expect("fires");
        assert_eq!(fire.budget, "durability_degraded");
        // Healing clears the incident after a clean window…
        for _ in 0..4 {
            assert!(wd.observe_full(&plane, None, false).is_none());
        }
        // …and a relapse pages again.
        assert!(wd.observe_full(&plane, None, true).is_none());
        assert!(wd.observe_full(&plane, None, true).is_some());
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config { cases: 64, ..Default::default() })]
        /// Exactly-once-per-incident, against an independent reference
        /// model: a fire happens iff the admission detector crosses its
        /// burn threshold while un-latched, and the latch releases only
        /// after a fully clean window.
        fn fires_exactly_once_per_incident(
            breaches in proptest::prop::collection::vec(proptest::arbitrary::any::<bool>(), 1..64),
        ) {
            const WINDOW: usize = 3;
            const BURN: usize = 2;
            let plane = ObsPlane::new(1);
            let wd = Watchdog::new(SloSpec {
                admission_floor: 0.5,
                window: WINDOW,
                burn: BURN,
                ..SloSpec::default()
            });
            let mut ring = [false; WINDOW];
            let mut pos = 0usize;
            let mut latched = false;
            let mut expected_fires = 0usize;
            let mut observed_fires = 0usize;
            for &breach in &breaches {
                let signal = if breach { 0.0 } else { 1.0 };
                let fire = wd.observe_full(&plane, Some(signal), false);
                ring[pos] = breach;
                pos = (pos + 1) % WINDOW;
                let count = ring.iter().filter(|&&b| b).count();
                if count >= BURN {
                    if !latched {
                        latched = true;
                        expected_fires += 1;
                        proptest::prop_assert!(fire.is_some(), "model fires, watchdog must too");
                    } else {
                        proptest::prop_assert!(fire.is_none(), "latched: same incident");
                    }
                } else {
                    proptest::prop_assert!(fire.is_none(), "below burn: never fires");
                    if count == 0 {
                        latched = false;
                    }
                }
                observed_fires += usize::from(fire.is_some());
            }
            proptest::prop_assert_eq!(observed_fires, expected_fires);
            proptest::prop_assert_eq!(wd.fired(), expected_fires > 0);
        }
    }

    #[test]
    fn transient_breach_does_not_fire() {
        let plane = ObsPlane::new(1);
        let wd = Watchdog::new(tight_spec());
        feed_hops(&plane, 32, 1_000_000); // one bad window…
        assert!(wd.observe(&plane, None).is_none());
        for _ in 0..6 {
            feed_hops(&plane, 32, 1_000); // …then healthy 1 µs windows
            assert!(wd.observe(&plane, None).is_none());
        }
        assert!(!wd.fired());
    }

    #[test]
    fn admission_floor_burns() {
        let plane = ObsPlane::new(1);
        let wd = Watchdog::new(SloSpec {
            admission_floor: 0.5,
            window: 3,
            burn: 2,
            ..SloSpec::default()
        });
        assert!(wd.observe(&plane, Some(0.2)).is_none());
        let fire = wd.observe(&plane, Some(0.2)).expect("fires");
        assert_eq!(fire.budget, "admission_fraction");
        assert_eq!(fire.threshold, 0.5);
    }

    #[test]
    fn thin_windows_are_healthy() {
        let plane = ObsPlane::new(1);
        let wd = Watchdog::new(SloSpec {
            hop_p99_us_max: 1.0,
            window: 2,
            burn: 1,
            ..SloSpec::default()
        });
        // 4 samples < MIN_WINDOW_SAMPLES: no quantile, no breach.
        feed_hops(&plane, 4, 1_000_000);
        assert!(wd.observe(&plane, None).is_none());
        assert!(!wd.fired());
    }

    #[test]
    fn no_admission_signal_means_no_admission_breach() {
        let plane = ObsPlane::new(1);
        let wd = Watchdog::new(SloSpec {
            admission_floor: 0.99,
            window: 2,
            burn: 1,
            ..SloSpec::default()
        });
        assert!(wd.observe(&plane, None).is_none());
        assert!(!wd.fired());
    }
}
