//! The observability plane: one [`ObsPlane`] per fleet, holding a
//! lock-free shared histogram per instrumented [`Site`], per-shard swap
//! contention counters, and the flight recorder.
//!
//! Recording is wait-free per thread: each thread hashes onto one of a
//! small set of histogram *stripes* and does relaxed `fetch_add`s on
//! that stripe's atomic buckets; the sampler drains every stripe into a
//! plain [`LatencyHist`] with [`ObsPlane::snapshot`]. When the plane is
//! disabled ([`ObsPlane::set_enabled`]) hot paths pay exactly one
//! relaxed load (the [`ObsPlane::timer`] gate returns `None`).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::flight::{FlightRecorder, OpKind};
use crate::hist::{HistSummary, LatencyHist, NUM_BUCKETS};
use crate::trace::{TraceKind, TraceRing};

/// An instrumented code site. Each gets its own shared histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// `Fleet::admit`, engine enumeration tier (span: exclusive section).
    AdmitEnumeration = 0,
    /// `Fleet::admit`, engine greedy+repair tier.
    AdmitRepair,
    /// `Fleet::admit`, engine ranked-fallback tier.
    AdmitFallback,
    /// `Fleet::admit` under `AdmissionMode::LegacyRanked`.
    AdmitLegacy,
    /// `Fleet::admit` that ended in a refusal.
    AdmitRefused,
    /// `Fleet::register_session` (open-world universe growth).
    RegisterSession,
    /// One fleet HOP (`hop_session_with`: FREEZE read + candidate scan +
    /// `hop_with_beta_scratch` weighing + ledger commit).
    Hop,
    /// One offline `hop_with_beta_scratch` (closed-world bench loop).
    HopOffline,
    /// WAIT-wakeup dispatch: scheduler pop until the hop starts
    /// (sampled 1-in-32 to stay inside the overhead budget).
    WaitDispatch,
    /// FREEZE shared-read acquisition wait — contended path only; the
    /// uncontended `try_read` fast path just counts
    /// ([`ObsPlane::freeze_read_fast`]).
    FreezeRead,
    /// FREEZE exclusive acquisition wait (recorded after release).
    FreezeWriteWait,
    /// FREEZE exclusive hold time (recorded after release).
    FreezeWriteHold,
    /// `vc-persist` journal append (encode + buffer + policy commit).
    JournalAppend,
    /// `vc-persist` journal fsync (`commit`: write + `sync_data`).
    JournalFsync,
    /// Sharded wakeup-scheduler shard-lock acquisition wait —
    /// contended path only; the uncontended `try_lock` fast path just
    /// counts into the scheduler's per-shard acquire counters.
    SchedLock,
}

/// Every site, in index order. `Site::ALL.len()` sizes the plane.
impl Site {
    /// All sites in index order.
    pub const ALL: [Site; 15] = [
        Site::AdmitEnumeration,
        Site::AdmitRepair,
        Site::AdmitFallback,
        Site::AdmitLegacy,
        Site::AdmitRefused,
        Site::RegisterSession,
        Site::Hop,
        Site::HopOffline,
        Site::WaitDispatch,
        Site::FreezeRead,
        Site::FreezeWriteWait,
        Site::FreezeWriteHold,
        Site::JournalAppend,
        Site::JournalFsync,
        Site::SchedLock,
    ];

    /// Stable snake-case name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Site::AdmitEnumeration => "admit_enumeration",
            Site::AdmitRepair => "admit_repair",
            Site::AdmitFallback => "admit_fallback",
            Site::AdmitLegacy => "admit_legacy",
            Site::AdmitRefused => "admit_refused",
            Site::RegisterSession => "register_session",
            Site::Hop => "hop",
            Site::HopOffline => "hop_offline",
            Site::WaitDispatch => "wait_dispatch",
            Site::FreezeRead => "freeze_read_wait",
            Site::FreezeWriteWait => "freeze_write_wait",
            Site::FreezeWriteHold => "freeze_write_hold",
            Site::JournalAppend => "journal_append",
            Site::JournalFsync => "journal_fsync",
            Site::SchedLock => "sched_lock_wait",
        }
    }
}

const NUM_STRIPES: usize = 4;

/// One lock-free recorder stripe: atomic buckets + aside sum/max.
struct Stripe {
    buckets: Vec<AtomicU32>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, || AtomicU32::new(0));
        Self {
            buckets,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        let idx = crate::hist::bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn drain_into(&self, out: &mut LatencyHist) {
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                out.add_bucket(idx, n);
            }
        }
        out.add_sum_max(
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        );
    }
}

/// A striped, lock-free shared histogram (per-thread recorders drained
/// by the sampler). Threads spread across [`NUM_STRIPES`] stripes so
/// concurrent recorders rarely touch the same cache lines.
pub struct SharedHist {
    stripes: Vec<Stripe>,
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % NUM_STRIPES;
}

impl SharedHist {
    fn new() -> Self {
        let mut stripes = Vec::with_capacity(NUM_STRIPES);
        stripes.resize_with(NUM_STRIPES, Stripe::new);
        Self { stripes }
    }

    /// Record one nanosecond sample on this thread's stripe.
    #[inline]
    pub fn record(&self, v: u64) {
        let stripe = MY_STRIPE.with(|s| *s);
        self.stripes[stripe].record(v);
    }

    /// Merge every stripe into one cumulative snapshot.
    pub fn snapshot(&self) -> LatencyHist {
        let mut out = LatencyHist::new();
        for stripe in &self.stripes {
            stripe.drain_into(&mut out);
        }
        out
    }
}

impl Default for SharedHist {
    fn default() -> Self {
        Self::new()
    }
}

/// Construction-time tuning for an [`ObsPlane`]: sampling rates and
/// ring capacities. [`ObsConfig::default`] reproduces the historical
/// hard-coded values (hop spans 1-in-16, WAIT dispatch 1-in-32, a
/// 256-event flight ring, a 4096-event trace ring over 4 shards).
///
/// Sampling rates are rounded up to powers of two so the hot-path
/// check stays a mask, never a division.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Sample 1-in-N hop spans ([`ObsPlane::timer_sampled`]); min 1.
    pub hop_sample_every: u64,
    /// Sample 1-in-N WAIT-dispatch spans (the worker pool reads this
    /// via [`ObsPlane::wait_sample_mask`]); min 1.
    pub wait_sample_every: u64,
    /// Flight-recorder capacity (events; rounded up to a power of two).
    pub flight_capacity: usize,
    /// Lifecycle trace-ring capacity (events across all shards).
    /// 0 constructs the plane with tracing switched off.
    pub trace_capacity: usize,
    /// Session shards of the trace ring (rounded up to a power of two).
    pub trace_shards: usize,
}

/// Default trace-ring capacity (events across all shards).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            hop_sample_every: ObsPlane::SAMPLE_EVERY,
            wait_sample_every: 32,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            trace_shards: 4,
        }
    }
}

/// The per-fleet observability plane. Cheap to share (`Arc`), enabled
/// by default; disabling reduces every probe to one relaxed load.
pub struct ObsPlane {
    enabled: AtomicBool,
    epoch: Instant,
    hists: Vec<SharedHist>,
    swap_attempts: Vec<AtomicU64>,
    swap_conflicts: Vec<AtomicU64>,
    freeze_read_fast: AtomicU64,
    flight: FlightRecorder,
    trace: TraceRing,
    /// Lifecycle tracing gate, separate from `enabled` so the overhead
    /// experiment can measure the plane with and without tracing.
    trace_on: AtomicBool,
    dumped: AtomicBool,
    /// The JSON of the post-mortem that fired (served by `/postmortem`).
    last_post_mortem: Mutex<Option<String>>,
    /// `hop_sample_every - 1` (power of two → mask).
    hop_sample_mask: u64,
    /// `wait_sample_every - 1` (power of two → mask).
    wait_sample_mask: u64,
    /// Round-robin tick for [`ObsPlane::timer_sampled`].
    sample_tick: AtomicU64,
    /// Plane-epoch µs of the last full-cost probe — the coarse
    /// timestamp [`ObsPlane::note_op_coarse`] reuses instead of
    /// reading the clock.
    last_t_us: AtomicU64,
}

impl std::fmt::Debug for ObsPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsPlane")
            .field("enabled", &self.enabled())
            .field("ops_recorded", &self.flight.total())
            .finish_non_exhaustive()
    }
}

/// Default flight-recorder capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

impl ObsPlane {
    /// A plane sized for `num_shards` ledger shards with the default
    /// configuration ([`ObsConfig::default`]).
    pub fn new(num_shards: usize) -> Self {
        Self::with_config(num_shards, ObsConfig::default())
    }

    /// A plane holding the last `flight_capacity` fleet ops (all other
    /// knobs at their defaults).
    pub fn with_flight_capacity(num_shards: usize, flight_capacity: usize) -> Self {
        Self::with_config(
            num_shards,
            ObsConfig {
                flight_capacity,
                ..ObsConfig::default()
            },
        )
    }

    /// A plane with explicit sampling rates and ring capacities.
    pub fn with_config(num_shards: usize, config: ObsConfig) -> Self {
        let num_shards = num_shards.max(1);
        let mut hists = Vec::with_capacity(Site::ALL.len());
        hists.resize_with(Site::ALL.len(), SharedHist::new);
        let mut swap_attempts = Vec::with_capacity(num_shards);
        swap_attempts.resize_with(num_shards, || AtomicU64::new(0));
        let mut swap_conflicts = Vec::with_capacity(num_shards);
        swap_conflicts.resize_with(num_shards, || AtomicU64::new(0));
        let hop_every = config.hop_sample_every.max(1).next_power_of_two();
        let wait_every = config.wait_sample_every.max(1).next_power_of_two();
        let trace_on = config.trace_capacity > 0;
        Self {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            hists,
            swap_attempts,
            swap_conflicts,
            freeze_read_fast: AtomicU64::new(0),
            flight: FlightRecorder::new(config.flight_capacity),
            trace: TraceRing::new(config.trace_shards, config.trace_capacity.max(1)),
            trace_on: AtomicBool::new(trace_on),
            dumped: AtomicBool::new(false),
            last_post_mortem: Mutex::new(None),
            hop_sample_mask: hop_every - 1,
            wait_sample_mask: wait_every - 1,
            sample_tick: AtomicU64::new(0),
            last_t_us: AtomicU64::new(0),
        }
    }

    /// Is recording on? One relaxed load.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on/off. Off, every probe is a single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Start a span: `Some(now)` when enabled, `None` when disabled.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// The default 1-in-N hop-span sampling rate
    /// ([`ObsConfig::hop_sample_every`] overrides it per plane).
    pub const SAMPLE_EVERY: u64 = 16;

    /// The configured hop-span sampling rate (1-in-N).
    pub fn hop_sample_every(&self) -> u64 {
        self.hop_sample_mask + 1
    }

    /// The configured WAIT-dispatch sampling mask (`rate - 1`; the
    /// rate is a power of two). The worker pool samples its dispatch
    /// span when `ops & mask == 0`.
    #[inline]
    pub fn wait_sample_mask(&self) -> u64 {
        self.wait_sample_mask
    }

    /// Like [`ObsPlane::timer`], but sampled 1-in-N (N =
    /// [`ObsConfig::hop_sample_every`], default
    /// [`SAMPLE_EVERY`](Self::SAMPLE_EVERY)): the very hottest paths
    /// (the fleet hop) sample their span so the steady-state cost is a
    /// fraction of a clock read per op. Percentiles from a fixed
    /// fraction of millions of hops are statistically the same; the
    /// unsampled ops still reach the flight recorder via
    /// [`ObsPlane::note_op_coarse`].
    #[inline]
    pub fn timer_sampled(&self) -> Option<Instant> {
        if !self.enabled() {
            return None;
        }
        // Racy load + store, not `fetch_add`: losing a tick to a
        // concurrent caller only shifts the sampling phase, and a plain
        // store is measurably cheaper than a locked RMW on the hop path.
        let tick = self.sample_tick.load(Ordering::Relaxed);
        self.sample_tick
            .store(tick.wrapping_add(1), Ordering::Relaxed);
        if tick & self.hop_sample_mask == 0 {
            Some(Self::clock_now())
        } else {
            None
        }
    }

    /// The clock read of the sampled 1-in-[`SAMPLE_EVERY`](Self::SAMPLE_EVERY)
    /// arm, outlined so the seven-in-eight hot path stays compact —
    /// keeping the vDSO call inline measurably bloats the caller (the
    /// codegen cost shows up in the overhead benchmark even when the
    /// arm never runs).
    #[cold]
    #[inline(never)]
    fn clock_now() -> Instant {
        Instant::now()
    }

    /// Close a sampled hot-path span: one clock read both finishes the
    /// span histogram sample and timestamps the flight event. Outlined
    /// and cold for the same reason as [`ObsPlane::clock_now`] — this
    /// runs on 1-in-[`SAMPLE_EVERY`](Self::SAMPLE_EVERY) ops, and the
    /// common path must not carry its code.
    #[cold]
    #[inline(never)]
    pub fn record_sampled(&self, site: Site, t0: Instant, kind: OpKind, a: u32, b: u32) {
        let t_end = Instant::now();
        self.record_span(site, t0, t_end);
        self.note_op_at(t_end, kind, a, b);
    }

    /// Finish a span started with [`ObsPlane::timer`].
    #[inline]
    pub fn record_since(&self, site: Site, start: Option<Instant>) {
        if let Some(t0) = start {
            self.record_ns(site, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Record a raw nanosecond sample at `site`.
    #[inline]
    pub fn record_ns(&self, site: Site, ns: u64) {
        self.hists[site as usize].record(ns);
    }

    /// Record the span between two already-taken clock readings.
    #[inline]
    pub fn record_span(&self, site: Site, t0: Instant, t1: Instant) {
        self.record_ns(site, t1.duration_since(t0).as_nanos() as u64);
    }

    /// Count one ledger `try_swap` (`conflicted` = lost the race),
    /// attributed to the counter shard `key` maps onto.
    #[inline]
    pub fn note_swap(&self, key: usize, conflicted: bool) {
        if !self.enabled() {
            return;
        }
        let n = self.swap_attempts.len();
        // Every real fleet shards by a power of two, so the mapping is
        // a mask; the modulo fallback keeps odd counts correct without
        // putting an integer division on the hop path.
        let shard = if n.is_power_of_two() {
            key & (n - 1)
        } else {
            key % n
        };
        self.swap_attempts[shard].fetch_add(1, Ordering::Relaxed);
        if conflicted {
            self.swap_conflicts[shard].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one uncontended FREEZE `try_read` success (no clock read).
    #[inline]
    pub fn note_freeze_read_fast(&self) {
        if self.enabled() {
            self.freeze_read_fast.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Uncontended FREEZE read acquisitions so far.
    pub fn freeze_read_fast(&self) -> u64 {
        self.freeze_read_fast.load(Ordering::Relaxed)
    }

    /// Per-shard `(attempts, conflicts)` swap counters.
    pub fn swap_counters(&self) -> Vec<(u64, u64)> {
        self.swap_attempts
            .iter()
            .zip(self.swap_conflicts.iter())
            .map(|(a, c)| (a.load(Ordering::Relaxed), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Cumulative snapshot of one site's histogram.
    pub fn snapshot(&self, site: Site) -> LatencyHist {
        self.hists[site as usize].snapshot()
    }

    /// Cumulative summary of one site.
    pub fn summary(&self, site: Site) -> HistSummary {
        self.snapshot(site).summary()
    }

    /// Merge several sites into one histogram (e.g. all admit tiers).
    pub fn merged(&self, sites: &[Site]) -> LatencyHist {
        let mut out = LatencyHist::new();
        for &site in sites {
            let snap = self.snapshot(site);
            out.merge(&snap);
        }
        out
    }

    /// Record one fleet op in the flight recorder (timestamped against
    /// the plane's epoch). No-op when disabled.
    #[inline]
    pub fn note_op(&self, kind: OpKind, a: u32, b: u32) {
        if !self.enabled() {
            return;
        }
        let t_us = self.epoch.elapsed().as_micros() as u64;
        self.flight.record(t_us, kind, a, b);
    }

    /// Like [`ObsPlane::note_op`] but reusing an already-taken clock
    /// reading (hot paths share one `Instant` between span + flight).
    #[inline]
    pub fn note_op_at(&self, now: Instant, kind: OpKind, a: u32, b: u32) {
        if !self.enabled() {
            return;
        }
        let t_us = now.duration_since(self.epoch).as_micros() as u64;
        self.last_t_us.store(t_us, Ordering::Relaxed);
        self.flight.record(t_us, kind, a, b);
    }

    /// Like [`ObsPlane::note_op`] but with **no clock read**: the event
    /// is stamped with the time of the last full-cost probe
    /// ([`ObsPlane::note_op_at`]). Used by ops whose span sampling
    /// ([`ObsPlane::timer_sampled`]) skipped this iteration — sequence
    /// numbers keep the ring ordered; the timestamp is diagnostic and
    /// at most a few ops stale.
    #[inline]
    pub fn note_op_coarse(&self, kind: OpKind, a: u32, b: u32) {
        if !self.enabled() {
            return;
        }
        self.flight
            .record(self.last_t_us.load(Ordering::Relaxed), kind, a, b);
    }

    /// Warm the flight-ring slot the op about to run will record into
    /// ([`FlightRecorder::warm_next`]); call at the start of a hot op
    /// so the ring's cache miss overlaps the op instead of trailing it.
    #[inline]
    pub fn warm_flight(&self) {
        if self.enabled() {
            self.flight.warm_next();
        }
    }

    /// The flight recorder (for direct dumps).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Is lifecycle tracing on? Two relaxed loads (plane gate + trace
    /// gate).
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.enabled() && self.trace_on.load(Ordering::Relaxed)
    }

    /// Toggle lifecycle tracing independently of the plane gate (the
    /// overhead experiment measures both arms on one plane shape).
    pub fn set_trace_enabled(&self, on: bool) {
        self.trace_on.store(on, Ordering::Relaxed);
    }

    /// Record one lifecycle event, reading the clock. Coarse paths
    /// (admission, registration, departure, recovery) use this; hot
    /// paths use [`ObsPlane::note_trace_coarse`].
    #[inline]
    pub fn note_trace(&self, kind: TraceKind, session: u32, payload: u64) {
        if !self.trace_enabled() {
            return;
        }
        let t_us = self.epoch.elapsed().as_micros() as u64;
        self.trace.record(t_us, kind, session, payload);
    }

    /// Record one lifecycle event reusing an already-taken clock
    /// reading (paths that just closed a span share its `Instant`).
    #[inline]
    pub fn note_trace_at(&self, now: Instant, kind: TraceKind, session: u32, payload: u64) {
        if !self.trace_enabled() {
            return;
        }
        let t_us = now.duration_since(self.epoch).as_micros() as u64;
        self.trace.record(t_us, kind, session, payload);
    }

    /// Record one lifecycle event with **no clock read**, stamped with
    /// the time of the last full-cost probe (same contract as
    /// [`ObsPlane::note_op_coarse`]): sequence numbers keep the ring
    /// causally ordered; the timestamp is diagnostic and at most a few
    /// ops stale.
    #[inline]
    pub fn note_trace_coarse(&self, kind: TraceKind, session: u32, payload: u64) {
        if !self.trace_enabled() {
            return;
        }
        self.trace.record(
            self.last_t_us.load(Ordering::Relaxed),
            kind,
            session,
            payload,
        );
    }

    /// The lifecycle trace ring (for direct dumps).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// The lifecycle trace as a Chrome-trace / Perfetto JSON document.
    pub fn trace_chrome_json(&self) -> String {
        self.trace.chrome_json()
    }

    /// Build the structured post-mortem JSON: the trigger, the flight
    /// ring, per-site summaries and contention counters.
    pub fn post_mortem(&self, reason: &str, detail: &str) -> String {
        let mut sites = Vec::with_capacity(Site::ALL.len());
        for site in Site::ALL {
            let s = self.summary(site);
            if s.count > 0 {
                sites.push(format!("\"{}\": {}", site.name(), s.to_json()));
            }
        }
        let swaps: Vec<String> = self
            .swap_counters()
            .iter()
            .map(|(a, c)| format!("{{\"attempts\": {a}, \"conflicts\": {c}}}"))
            .collect();
        format!(
            "{{\"post_mortem\": \"{}\", \"detail\": \"{}\", \"ops_recorded\": {}, \"freeze_read_fast\": {}, \"swap_shards\": [{}], \"sites\": {{{}}}, \"flight\": {}}}",
            reason,
            detail.replace('"', "'"),
            self.flight.total(),
            self.freeze_read_fast(),
            swaps.join(", "),
            sites.join(", "),
            self.flight.dump_json()
        )
    }

    /// Dump a post-mortem to stderr at most once per plane (violations
    /// tend to repeat every telemetry tick; one dump is the useful one).
    /// Returns the JSON when this call was the one that dumped.
    pub fn post_mortem_once(&self, reason: &str, detail: &str) -> Option<String> {
        if self.dumped.swap(true, Ordering::Relaxed) {
            return None;
        }
        let json = self.post_mortem(reason, detail);
        eprintln!("vc-obs post-mortem ({reason}): {json}");
        if let Ok(mut last) = self.last_post_mortem.lock() {
            *last = Some(json.clone());
        }
        Some(json)
    }

    /// The JSON of the post-mortem that fired, if any (what the scrape
    /// endpoint serves at `/postmortem`).
    pub fn last_post_mortem(&self) -> Option<String> {
        self.last_post_mortem.lock().ok().and_then(|g| g.clone())
    }

    /// Full-plane summary JSON: every non-empty site, swap counters,
    /// the fast-read count, total ops, and the process alloc counter
    /// when one is registered.
    pub fn summary_json(&self) -> String {
        let mut sites = Vec::new();
        for site in Site::ALL {
            let s = self.summary(site);
            if s.count > 0 {
                sites.push(format!("\"{}\": {}", site.name(), s.to_json()));
            }
        }
        let swaps: Vec<String> = self
            .swap_counters()
            .iter()
            .map(|(a, c)| format!("{{\"attempts\": {a}, \"conflicts\": {c}}}"))
            .collect();
        let allocs = match crate::allocs_now() {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"enabled\": {}, \"ops_recorded\": {}, \"trace_events\": {}, \"freeze_read_fast\": {}, \"allocs\": {}, \"swap_shards\": [{}], \"sites\": {{{}}}}}",
            self.enabled(),
            self.flight.total(),
            self.trace.total(),
            self.freeze_read_fast(),
            allocs,
            swaps.join(", "),
            sites.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_records_nothing() {
        let plane = ObsPlane::new(4);
        plane.set_enabled(false);
        assert!(plane.timer().is_none());
        plane.note_swap(0, true);
        plane.note_freeze_read_fast();
        plane.note_op(OpKind::Hop, 1, 2);
        plane.note_trace(TraceKind::Registered, 1, 0);
        assert_eq!(plane.swap_counters()[0], (0, 0));
        assert_eq!(plane.freeze_read_fast(), 0);
        assert_eq!(plane.flight().total(), 0);
        assert_eq!(plane.trace().total(), 0);
    }

    #[test]
    fn config_controls_sampling_rates_and_trace_gate() {
        let plane = ObsPlane::with_config(
            2,
            ObsConfig {
                hop_sample_every: 4,
                wait_sample_every: 8,
                ..ObsConfig::default()
            },
        );
        assert_eq!(plane.hop_sample_every(), 4);
        assert_eq!(plane.wait_sample_mask(), 7);
        let fired: usize = (0..16).filter(|_| plane.timer_sampled().is_some()).count();
        assert_eq!(fired, 4);
        // Non-pow2 rates round up to the next power of two.
        let odd = ObsPlane::with_config(
            1,
            ObsConfig {
                hop_sample_every: 5,
                ..ObsConfig::default()
            },
        );
        assert_eq!(odd.hop_sample_every(), 8);
        // trace_capacity 0 constructs with tracing off; the gate is
        // still toggleable at runtime.
        let silent = ObsPlane::with_config(
            1,
            ObsConfig {
                trace_capacity: 0,
                ..ObsConfig::default()
            },
        );
        assert!(!silent.trace_enabled());
        silent.note_trace(TraceKind::Registered, 1, 0);
        assert_eq!(silent.trace().total(), 0);
        silent.set_trace_enabled(true);
        silent.note_trace(TraceKind::Registered, 1, 0);
        assert_eq!(silent.trace().total(), 1);
    }

    #[test]
    fn trace_notes_flow_into_the_ring_and_export() {
        let plane = ObsPlane::new(1);
        assert!(plane.trace_enabled());
        plane.note_trace(TraceKind::Registered, 5, 3);
        let now = Instant::now();
        plane.note_op_at(now, OpKind::Admit, 5, 0);
        plane.note_trace_at(now, TraceKind::Admitted, 5, 0xABCD);
        plane.note_trace_coarse(TraceKind::HopCommitted, 5, 7);
        let events = plane.trace().dump();
        assert_eq!(events.len(), 3);
        // The coarse note reuses the full-cost probe's timestamp.
        assert_eq!(events[1].t_us, events[2].t_us);
        let chains: Vec<u32> = events.iter().map(|e| e.chain).collect();
        assert!(chains.windows(2).all(|w| w[0] < w[1]));
        assert!(plane.trace_chrome_json().contains("\"tid\": 5"));
        assert!(plane.summary_json().contains("\"trace_events\": 3"));
    }

    #[test]
    fn post_mortem_is_retrievable_after_firing() {
        let plane = ObsPlane::new(1);
        assert!(plane.last_post_mortem().is_none());
        plane.post_mortem_once("test", "detail");
        let stored = plane.last_post_mortem().expect("stored");
        assert!(stored.contains("\"post_mortem\": \"test\""));
        // A second fire is suppressed and does not overwrite.
        assert!(plane.post_mortem_once("other", "x").is_none());
        assert!(plane
            .last_post_mortem()
            .unwrap()
            .contains("\"post_mortem\": \"test\""));
    }

    #[test]
    fn spans_land_in_the_right_site() {
        let plane = ObsPlane::new(2);
        plane.record_ns(Site::Hop, 1_000);
        plane.record_ns(Site::Hop, 2_000);
        plane.record_ns(Site::JournalFsync, 5_000_000);
        assert_eq!(plane.summary(Site::Hop).count, 2);
        assert_eq!(plane.summary(Site::JournalFsync).count, 1);
        assert_eq!(plane.summary(Site::WaitDispatch).count, 0);
        let merged = plane.merged(&[Site::Hop, Site::JournalFsync]);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.max(), 5_000_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let plane = std::sync::Arc::new(ObsPlane::new(4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let plane = plane.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        plane.record_ns(Site::Hop, i % 100_000);
                        plane.note_swap((i % 4) as usize, i % 7 == 0);
                    }
                });
            }
        });
        assert_eq!(plane.snapshot(Site::Hop).count(), 40_000);
        let swaps = plane.swap_counters();
        assert_eq!(swaps.iter().map(|(a, _)| a).sum::<u64>(), 40_000);
    }

    #[test]
    fn sampled_timer_fires_at_the_sample_rate_and_coarse_notes_reuse_time() {
        let plane = ObsPlane::new(1);
        let calls = 4 * ObsPlane::SAMPLE_EVERY as usize;
        let fired: usize = (0..calls)
            .filter(|_| plane.timer_sampled().is_some())
            .count();
        assert_eq!(fired, 4);
        plane.set_enabled(false);
        assert!(plane.timer_sampled().is_none());
        plane.set_enabled(true);
        // A full-cost probe stamps the shared coarse timestamp…
        let now = Instant::now();
        plane.note_op_at(now, OpKind::Hop, 1, 2);
        // …which a coarse note then reuses without reading the clock.
        plane.note_op_coarse(OpKind::Stay, 3, 0);
        let events = plane.flight().dump();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_us, events[1].t_us);
        assert_eq!(events[1].kind, OpKind::Stay);
    }

    #[test]
    fn post_mortem_once_fires_once() {
        let plane = ObsPlane::new(1);
        plane.note_op(OpKind::Admit, 7, 0);
        let first = plane.post_mortem_once("test", "detail \"quoted\"");
        assert!(first.is_some());
        let json = first.unwrap();
        assert!(json.contains("\"post_mortem\": \"test\""));
        assert!(json.contains("\"op\": \"admit\""));
        assert!(!json.contains("\\\"quoted\\\""));
        assert!(plane.post_mortem_once("test", "again").is_none());
    }

    #[test]
    fn summary_json_is_well_formed_enough() {
        let plane = ObsPlane::new(2);
        plane.record_ns(Site::AdmitRepair, 10_000);
        let json = plane.summary_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"admit_repair\""));
        assert!(json.contains("\"swap_shards\""));
    }
}
