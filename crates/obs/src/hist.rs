//! Log-linear latency histograms.
//!
//! The bucket scheme is HDR-style log-linear (hand-rolled; the vendored-deps
//! constraint rules out `hdrhistogram`):
//!
//! * values `0..16` ns land in 16 **exact** linear buckets;
//! * every value `v >= 16` belongs to octave `o = floor(log2 v)`
//!   (`4 <= o <= 42`), and each octave is split into 16 linear
//!   sub-buckets indexed by the four bits below the leading bit:
//!   `sub = (v >> (o - 4)) & 0xF`;
//! * octaves above 42 (values beyond ~2.4 hours in ns) clamp into the
//!   last bucket.
//!
//! That gives `16 + 39 * 16 = 640` buckets of `u32` — a fixed ~2.6 kB
//! footprint — with relative quantization error bounded by `1/16`
//! (`2^-SUB_BITS`). A bucket's representative value is its midpoint, so
//! percentiles computed offline from an exported bucket dump reproduce
//! the in-process numbers exactly. Histograms merge by bucket-wise
//! saturating addition, so per-thread recorders can be drained into one
//! summary without locks.

/// Linear/exact region: values below this are their own bucket.
pub const LINEAR_CUTOFF: u64 = 16;
/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 4;
/// First octave covered by the log-linear region (`2^4 = LINEAR_CUTOFF`).
pub const FIRST_OCTAVE: u32 = 4;
/// Last octave before clamping (`2^43` ns ≈ 2.4 h — far beyond any span).
pub const LAST_OCTAVE: u32 = 42;
const SUBBUCKETS: usize = 1 << SUB_BITS;
const BUCKETS: usize =
    LINEAR_CUTOFF as usize + (LAST_OCTAVE - FIRST_OCTAVE + 1) as usize * SUBBUCKETS;

/// Total bucket count: 16 exact + 39 octaves × 16 sub-buckets = 640.
pub const NUM_BUCKETS: usize = BUCKETS;

/// Map a nanosecond value to its bucket index. Total order preserving.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let o = 63 - v.leading_zeros();
        if o > LAST_OCTAVE {
            return BUCKETS - 1;
        }
        let sub = ((v >> (o - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
        LINEAR_CUTOFF as usize + (o - FIRST_OCTAVE) as usize * SUBBUCKETS + sub
    }
}

/// The representative (midpoint) value of a bucket, in nanoseconds.
#[inline]
pub fn bucket_value(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let rel = idx - LINEAR_CUTOFF as usize;
        let o = FIRST_OCTAVE + (rel / SUBBUCKETS) as u32;
        let sub = (rel % SUBBUCKETS) as u64;
        let low = (LINEAR_CUTOFF + sub) << (o - SUB_BITS);
        let width = 1u64 << (o - SUB_BITS);
        low + width / 2
    }
}

/// A mergeable log-linear latency histogram with a fixed ~2.6 kB footprint.
///
/// Tracks exact `count`, `sum` and `max` alongside the buckets, so the
/// mean is exact and reported percentiles never exceed the observed
/// maximum.
#[derive(Clone)]
pub struct LatencyHist {
    buckets: Box<[u32; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0u32; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold `other` into `self` (bucket-wise saturating add).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Raw bucket ingestion — the shared (atomic) recorder drains through this.
    #[inline]
    pub fn add_bucket(&mut self, idx: usize, n: u32) {
        self.buckets[idx] = self.buckets[idx].saturating_add(n);
        self.count += n as u64;
    }

    /// Fold an exact (sum, max) pair in, for recorders that track them aside.
    pub fn add_sum_max(&mut self, sum: u64, max: u64) {
        self.sum = self.sum.saturating_add(sum);
        if max > self.max {
            self.max = max;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded value (ns); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (ns); 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value (ns) at quantile `q` in `[0, 1]`; 0 when empty.
    ///
    /// Walks the cumulative bucket counts to the first bucket covering
    /// rank `ceil(q * count)` and returns its midpoint representative,
    /// capped at the exact observed maximum.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n as u64;
            if cum >= target {
                return bucket_value(idx).min(self.max);
            }
        }
        self.max
    }

    /// The window between two cumulative snapshots: bucket-wise
    /// saturating subtraction of `prev` (an earlier snapshot of the
    /// same recorder) from `self`.
    ///
    /// `count` and the percentile walk are exact for the window. `sum`
    /// is the exact difference, so the window mean is exact too. `max`
    /// carries the *cumulative* maximum — an upper bound for the
    /// window, since per-window maxima are not recoverable from
    /// cumulative state. Burn-rate detectors quantile on windows, where
    /// the percentile cap at a too-large max is harmless.
    pub fn delta(&self, prev: &LatencyHist) -> LatencyHist {
        let mut out = LatencyHist::new();
        for (idx, (a, b)) in self.buckets.iter().zip(prev.buckets.iter()).enumerate() {
            let n = a.saturating_sub(*b);
            if n > 0 {
                out.add_bucket(idx, n);
            }
        }
        out.add_sum_max(self.sum.saturating_sub(prev.sum), self.max);
        out
    }

    /// The standard summary used everywhere this workspace exports latency.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.percentile(0.50),
            p90_ns: self.percentile(0.90),
            p99_ns: self.percentile(0.99),
            p999_ns: self.percentile(0.999),
            max_ns: self.max,
        }
    }
}

/// A fixed percentile summary of a [`LatencyHist`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact mean, ns.
    pub mean_ns: f64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 90th percentile, ns.
    pub p90_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
    /// Exact maximum, ns.
    pub max_ns: u64,
}

impl HistSummary {
    /// Hand-rolled JSON object (the vendored serde derive is a no-op).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
            self.count, self.mean_ns, self.p50_ns, self.p90_ns, self.p99_ns, self.p999_ns, self.max_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_is_640_and_2_6_kb() {
        assert_eq!(BUCKETS, 640);
        assert!(std::mem::size_of::<[u32; BUCKETS]>() <= 2600);
    }

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_value(v as usize), v);
        }
        // Octave 4 (16..32) is also exact: sub-bucket width is 1.
        for v in 16..32 {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < 1 << 50 {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "v={v}");
            last = idx;
            v = v * 2 + 1;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn representative_stays_in_bucket() {
        for idx in 0..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_value(idx)), idx, "idx={idx}");
        }
    }

    #[test]
    fn relative_error_is_bounded_by_one_sixteenth() {
        let mut v = 1u64;
        while v < 1 << 42 {
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 16.0, "v={v} rep={rep} err={err}");
            v = v.wrapping_mul(3).wrapping_add(7);
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(q), 0);
        }
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHist::new();
        h.record(1234);
        let rep = bucket_value(bucket_index(1234));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), rep.min(1234));
        }
        assert_eq!(h.max(), 1234);
    }

    #[test]
    fn percentiles_match_exact_ranks_in_linear_region() {
        // 100 samples of 0..10 ns (all exact buckets): percentiles are exact.
        let mut h = LatencyHist::new();
        for i in 0..100u64 {
            h.record(i % 10);
        }
        assert_eq!(h.percentile(0.5), 4);
        assert_eq!(h.percentile(0.99), 9);
        assert_eq!(h.percentile(1.0), 9);
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 9);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut both = LatencyHist::new();
        let mut v = 3u64;
        for i in 0..10_000u64 {
            v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493) % 50_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.percentile(q), both.percentile(q), "q={q}");
        }
        assert_eq!(a.summary(), both.summary());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LatencyHist::new();
        for v in [5u64, 900, 12_345, 7_000_000] {
            a.record(v);
        }
        let before = a.summary();
        a.merge(&LatencyHist::new());
        assert_eq!(a.summary(), before);
        let mut e = LatencyHist::new();
        e.merge(&a);
        assert_eq!(e.summary(), before);
    }

    #[test]
    fn delta_between_snapshots_is_the_window() {
        let mut early = LatencyHist::new();
        for v in [100u64, 200, 300] {
            early.record(v);
        }
        let mut late = early.clone();
        for v in [50_000u64, 60_000, 70_000, 80_000] {
            late.record(v);
        }
        let window = late.delta(&early);
        assert_eq!(window.count(), 4);
        // All window samples are in the 50–80 µs range; the cumulative
        // p50 would sit far lower.
        assert!(window.percentile(0.5) >= 50_000);
        let mean = window.mean();
        assert!((mean - 65_000.0).abs() < 1.0, "mean={mean}");
        // Delta against itself is empty.
        let none = late.delta(&late);
        assert_eq!(none.count(), 0);
    }

    #[test]
    fn percentile_never_exceeds_max() {
        let mut h = LatencyHist::new();
        h.record(1_000_000);
        h.record(1_000_001);
        assert!(h.percentile(1.0) <= h.max());
        assert!(h.percentile(0.999) <= h.max());
    }
}
